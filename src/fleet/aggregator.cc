#include "fleet/aggregator.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "common/timing.h"
#include "nr/dci.h"

namespace nrs {

FleetAggregator::FleetAggregator(MetricsRegistry& registry,
                                 std::uint64_t rate_window_slots)
    : registry_(&registry), rate_window_slots_(rate_window_slots),
      m_slots_total_(&registry.counter("fleet.slots")),
      m_dcis_total_(&registry.counter("fleet.dcis")),
      m_restarts_total_(&registry.counter("fleet.cell.restarts")) {}

void FleetAggregator::add_cell(std::uint32_t cell_index,
                               const CellConfig& cell) {
  std::lock_guard lock(mutex_);
  if (cells_.size() <= cell_index) {
    cells_.resize(cell_index + 1);
  }
  if (cells_[cell_index] != nullptr) {
    throw std::invalid_argument("FleetAggregator: cell " +
                                std::to_string(cell_index) +
                                " registered twice");
  }
  auto agg = std::make_unique<CellAgg>(cell, rate_window_slots_);
  MetricsNamespace ns =
      registry_->with_prefix("fleet.cell" + std::to_string(cell_index) + ".");
  agg->m_slots = &ns.counter("slots");
  agg->m_dcis = &ns.counter("dcis");
  agg->m_retx = &ns.counter("retx_dcis");
  agg->m_restarts = &ns.counter("restarts");
  agg->m_degraded = &ns.counter("degraded_slots");
  agg->m_resync = &ns.counter("resync_slots");
  agg->m_active_ues = &ns.gauge("active_ues");
  cells_[cell_index] = std::move(agg);
}

void FleetAggregator::on_cell_slot(std::uint32_t cell_index,
                                   const SlotResult& result) {
  std::lock_guard lock(mutex_);
  CellAgg& agg = *cells_.at(cell_index);
  ++agg.lifetime_slots;
  const TddPattern& tdd = agg.cell.tdd;
  agg.offered_prb_slots += static_cast<double>(agg.cell.n_prb) *
                           static_cast<double>(tdd.n_dl) /
                           static_cast<double>(tdd.period);

  std::uint64_t slot_retx = 0;
  for (const DecodedDci& dci : result.dcis) {
    ++agg.dcis;
    FleetUeTotals& ue = agg.ues[dci.rnti];
    ++ue.dcis;
    ue.last_seen_slot = agg.lifetime_slots;
    if (dci.is_retx) {
      ++slot_retx;
      ++ue.retx_dcis;
    }
    if (is_downlink(dci.dci.format)) {
      agg.used_prb_slots += static_cast<double>(dci.grant.prb_len);
      if (!dci.is_retx) {
        agg.dl_rate.add(agg.lifetime_slots, dci.grant.tbs);
        ue.dl_bits += dci.grant.tbs;
      }
    } else if (!dci.is_retx) {
      agg.ul_rate.add(agg.lifetime_slots, dci.grant.tbs);
      ue.ul_bits += dci.grant.tbs;
    }
  }
  agg.retx_dcis += slot_retx;
  if (result.degraded) {
    ++agg.degraded_slots;
    agg.m_degraded->inc();
  }
  if (result.sync_state == SyncState::kResync) {
    ++agg.resync_slots;
    agg.m_resync->inc();
  }

  agg.m_slots->inc();
  m_slots_total_->inc();
  if (!result.dcis.empty()) {
    agg.m_dcis->inc(result.dcis.size());
    m_dcis_total_->inc(result.dcis.size());
  }
  if (slot_retx > 0) {
    agg.m_retx->inc(slot_retx);
  }
}

void FleetAggregator::on_cell_restart(std::uint32_t cell_index) {
  std::lock_guard lock(mutex_);
  CellAgg& agg = *cells_.at(cell_index);
  ++agg.restarts;
  agg.m_restarts->inc();
  m_restarts_total_->inc();
}

std::uint64_t FleetAggregator::cell_slots(std::uint32_t cell_index) const {
  std::lock_guard lock(mutex_);
  return cells_.at(cell_index)->lifetime_slots;
}

std::uint32_t FleetAggregator::active_ues_locked(const CellAgg& agg) const {
  std::uint32_t active = 0;
  for (const auto& [rnti, ue] : agg.ues) {
    if (agg.lifetime_slots - ue.last_seen_slot < rate_window_slots_) {
      ++active;
    }
  }
  return active;
}

FleetRollup FleetAggregator::rollup() const {
  std::lock_guard lock(mutex_);
  FleetRollup roll;
  std::uint64_t retx_total = 0;
  for (std::uint32_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i] == nullptr) {
      continue;
    }
    const CellAgg& agg = *cells_[i];
    CellRollup c;
    c.cell_index = i;
    c.name = agg.cell.name;
    c.slots = agg.lifetime_slots;
    c.dcis = agg.dcis;
    c.restarts = agg.restarts;
    c.degraded_slots = agg.degraded_slots;
    c.resync_slots = agg.resync_slots;
    c.active_ues = active_ues_locked(agg);
    agg.m_active_ues->set(c.active_ues);
    const double slot_s = slot_duration_s(agg.cell.scs);
    c.dl_mbps = agg.dl_rate.rate_bps(agg.lifetime_slots, slot_s) / 1e6;
    c.ul_mbps = agg.ul_rate.rate_bps(agg.lifetime_slots, slot_s) / 1e6;
    c.retx_rate = agg.dcis > 0 ? static_cast<double>(agg.retx_dcis) /
                                     static_cast<double>(agg.dcis)
                               : 0.0;
    c.utilization =
        agg.offered_prb_slots > 0.0
            ? std::min(1.0, agg.used_prb_slots / agg.offered_prb_slots)
            : 0.0;
    const double dl_fraction = static_cast<double>(agg.cell.tdd.n_dl) /
                               static_cast<double>(agg.cell.tdd.period);
    c.spare_prb_rate =
        (1.0 - c.utilization) * static_cast<double>(agg.cell.n_prb) *
        dl_fraction;

    roll.slot = std::max(roll.slot, c.slots);
    roll.dcis_total += c.dcis;
    roll.restarts_total += c.restarts;
    roll.dl_mbps_total += c.dl_mbps;
    roll.ul_mbps_total += c.ul_mbps;
    retx_total += agg.retx_dcis;
    roll.cells.push_back(std::move(c));
  }
  roll.retx_rate = roll.dcis_total > 0
                       ? static_cast<double>(retx_total) /
                             static_cast<double>(roll.dcis_total)
                       : 0.0;
  roll.spare_ranking.resize(roll.cells.size());
  std::iota(roll.spare_ranking.begin(), roll.spare_ranking.end(), 0u);
  std::stable_sort(roll.spare_ranking.begin(), roll.spare_ranking.end(),
                   [&roll](std::uint32_t a, std::uint32_t b) {
                     return roll.cells[a].spare_prb_rate >
                            roll.cells[b].spare_prb_rate;
                   });
  // Rank entries name cell indices, not positions in roll.cells.
  for (std::uint32_t& r : roll.spare_ranking) {
    r = roll.cells[r].cell_index;
  }
  return roll;
}

std::map<FleetUeKey, FleetUeTotals> FleetAggregator::ue_totals() const {
  std::lock_guard lock(mutex_);
  std::map<FleetUeKey, FleetUeTotals> totals;
  for (std::uint32_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i] == nullptr) {
      continue;
    }
    for (const auto& [rnti, ue] : cells_[i]->ues) {
      totals[FleetUeKey{i, rnti}] = ue;
    }
  }
  return totals;
}

}  // namespace nrs
