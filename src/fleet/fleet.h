// Fleet orchestration: N supervised (cell config, gNB sim, NrScopePipeline)
// triples running concurrently over one shared WorkerPool — the multi-cell
// deployment the paper gestures at when a single sniffer host watches
// several carriers.  Each tick the orchestrator hands every running cell a
// "advance slots_per_tick slots" task (gNB step -> virtual radio capture ->
// pipeline push); the cell's own pipeline threads demodulate and decode,
// and a per-cell sink fans the results into the FleetAggregator.
//
// Supervision: every cell carries a heartbeat (slots delivered, wall-clock
// of last progress).  A cell whose advance task throws has crashed; a cell
// whose heartbeat goes quiet for stall_timeout_s has stalled (dark radio,
// wedged pipeline).  Either way the supervisor tears the triple down
// (pipeline.stop() drains what was accepted), waits out a bounded
// exponential backoff, and rebuilds the triple from scratch with a fresh
// deterministic seed derived from (fleet seed, cell index, incarnation) —
// so the restarted sniffer re-syncs and re-acquires C-RNTIs through the
// RACH exactly like a restarted real deployment.  A cell that exceeds
// max_restarts is declared failed and the rest of the fleet carries on.
//
// Sync loss is deliberately NOT a teardown trigger: a resyncing engine
// still delivers (empty) slots, so the stall detector stays quiet and the
// cell heals in place through the engine's kResync path, keeping its
// tracked-UE state.  Only a cell stuck in kResync past resync_deadline_s
// is escalated to the full teardown/backoff/rebuild cycle (counted in
// fleet.resync_escalations).
//
// Fault injection: each cell can carry a FaultSchedule.  Its IQ-level
// kinds (outage, sample gap, glitch, CFO) ride inside the cell's
// VirtualRadio; the feeder-level kinds are applied here while feeding —
// kTimingJump fast-forwards the gNB without telling the sniffer,
// kCellRestart rebuilds the gNB with a shifted PCI, kSib1Change rebuilds
// it with the same PCI but a flipped CORESET interleaver (every tracked
// PDCCH candidate turns to garbage until SIB1 is re-read).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/metrics.h"
#include "common/worker_pool.h"
#include "fleet/aggregator.h"
#include "gnb/gnb_sim.h"
#include "net/stream_server.h"
#include "net/wire.h"
#include "nr/cell_config.h"
#include "nrscope/pipeline.h"
#include "radio/impairments.h"
#include "radio/virtual_radio.h"

namespace nrs {

enum class FleetCellState : std::uint8_t {
  kRunning = 0,
  kBackoff = 1,   ///< torn down, waiting for the restart deadline
  kFailed = 2,    ///< exceeded max_restarts; permanently down
  kDetached = 3,  ///< removed at runtime (remove_cell); never restarted
};

const char* to_string(FleetCellState state);

/// Fault-injection verdict for one feed slot (tests and demos).
enum class FaultAction : std::uint8_t {
  kNone,  ///< feed the slot normally
  kMute,  ///< drop it before the radio: the sniffer sees a dark cell and
          ///< the supervisor's stall detector eventually fires
};

/// Called once per gNB slot on the advance task's pool thread with the
/// feed slot index *within the current incarnation* and the incarnation
/// number.  Throwing models a crash of the cell monitor.
using FleetFaultHook =
    std::function<FaultAction(std::uint64_t slot, unsigned incarnation)>;

struct FleetCellSpec {
  CellConfig cell;
  unsigned n_ues = 2;
  double ue_rate_bps = 2e6;
  double ue_snr_db = 18.0;
  double sniffer_snr_db = 28.0;
  unsigned n_demod_workers = 1;  ///< pipeline demod threads for this cell
  unsigned n_dci_threads = 1;
  std::size_t queue_depth = 64;  ///< pipeline input queue bound
  FleetFaultHook fault_hook;     ///< optional injection (tests/demos)
  /// Scripted impairments, indexed by the feed slot within the current
  /// incarnation.  IQ-level kinds are wired into the cell's VirtualRadio;
  /// feeder-level kinds (timing jump, gNB restart, SIB1 change) fire in
  /// advance_cell at their start slot.  Validated at start_cell.
  FaultSchedule faults;
  /// Per-cell seed base override.  0 (default) derives the cell's seeds
  /// from (fleet seed, cell index, incarnation); non-zero replaces the
  /// (fleet seed, cell index) part, which is what a distributed worker
  /// needs — the coordinator picks one base per *global* cell, so the same
  /// cell draws the same stream no matter which worker (and at which local
  /// index) it lands on.
  std::uint64_t seed = 0;
};

struct FleetConfig {
  std::vector<FleetCellSpec> cells;
  unsigned pool_threads = 4;  ///< shared advance pool (the scale knob)
  std::uint64_t seed = 1;     ///< fleet seed; per-cell seeds derive from it
  std::uint64_t slots_per_tick = 20;

  // Supervision policy.  The stall timeout must absorb benign scheduling
  // delay: when cells outnumber pool threads a healthy cell can sit a few
  // tick rounds without delivering, and a false stall verdict costs a full
  // teardown + re-sync.
  double stall_timeout_s = 1.0;  ///< heartbeat silence -> stall
  double backoff_initial_s = 0.02;
  double backoff_max_s = 0.5;
  double backoff_factor = 2.0;
  /// Give up on a cell after this many restarts (-1 = never).
  int max_restarts = 8;
  /// A cell that delivers this many slots in one incarnation is healthy
  /// again: its backoff resets to the initial value.
  std::uint64_t healthy_slots = 200;
  /// Sync loss heals in place (the engine's kResync path) — but a cell
  /// still resyncing after this much wall-clock is escalated to a full
  /// teardown/rebuild.  Must be long enough for the engine's grace window
  /// (resync_grace_slots) to play out at the fleet's feed rate.
  double resync_deadline_s = 3.0;

  std::uint64_t rate_window_slots = 2000;

  /// Optional: broadcast a kFleet aggregate frame on this stream server
  /// every `aggregate_period_ticks` ticks (the fan-in counterpart of the
  /// per-cell slot streams).  Not owned; must outlive the orchestrator.
  TelemetryStreamServer* stream = nullptr;
  std::uint64_t aggregate_period_ticks = 1;
};

/// Heartbeat + push-timestamp ring shared between a cell's advance task
/// (producer side) and its pipeline sink (collector thread).  Defined in
/// fleet.cc.
struct FleetFeedState;

class FleetOrchestrator {
 public:
  /// Builds and starts every cell (they begin RACHing / syncing on the
  /// first tick).  `registry` receives the fleet.* metrics: per-cell
  /// namespaces, restart counters, and the fleet.slot_latency_us
  /// push-to-delivery histogram.
  FleetOrchestrator(FleetConfig config, MetricsRegistry& registry);
  ~FleetOrchestrator();

  FleetOrchestrator(const FleetOrchestrator&) = delete;
  FleetOrchestrator& operator=(const FleetOrchestrator&) = delete;

  /// One supervision round: restart cells whose backoff expired, advance
  /// every running cell by slots_per_tick slots on the shared pool, then
  /// check heartbeats and emit the periodic aggregate frame.
  void tick();

  /// Tick until every non-failed cell has fed at least `target_slots`
  /// lifetime slots (restarts included), or every cell has failed.
  void run_until(std::uint64_t target_slots);

  /// Tear down every cell: pipelines drain their accepted slots into the
  /// aggregator and all threads join.  Idempotent; the destructor calls it.
  void stop();

  /// Builds one cell's sink — called once per (cell, incarnation), so a
  /// restarted cell gets a fresh sink from the same factory.
  using SinkFactory =
      std::function<std::shared_ptr<SlotSink>(std::uint32_t cell_index)>;

  /// Fleet-wide counterpart of NrScopePipeline::add_sink: register a named
  /// sink factory, applied to every live cell pipeline now and re-applied
  /// on every restart.  Fault isolation is per cell via the pipeline's
  /// SinkChain (same name, same error_limit semantics).  The orchestrator's
  /// own aggregator sink goes through this path too (name "fleet").
  /// Not thread-safe with tick(); call from the supervising thread.
  void add_sink(const std::string& name, SinkFactory factory,
                std::uint64_t error_limit = 1);

  /// Unregister the factory and detach the sink from every live cell.
  /// False when no factory of that name was registered.
  bool detach_sink(const std::string& name);

  /// Append and start one cell at runtime (the lease-driven grow path of a
  /// distributed worker).  `initial_incarnation` seeds the supervisor's
  /// incarnation counter, so a cell handed off from a dead worker resumes
  /// with a fresh deterministic stream instead of replaying its old one.
  /// Returns the new cell's index.  Not thread-safe with tick(); call from
  /// the supervising thread.
  std::uint32_t add_cell(FleetCellSpec spec,
                         unsigned initial_incarnation = 0);

  /// Tear the cell down (pipeline drains into the aggregator) and mark it
  /// kDetached: the supervisor never restarts it, ticks skip it, and its
  /// aggregator totals freeze in place.  Indices of other cells do not
  /// shift.  False when the index is out of range or the cell is already
  /// detached.  Not thread-safe with tick().
  bool remove_cell(std::uint32_t cell_index);

  [[nodiscard]] std::size_t n_cells() const { return cells_.size(); }
  [[nodiscard]] FleetCellState cell_state(std::uint32_t cell_index) const;
  [[nodiscard]] unsigned cell_restarts(std::uint32_t cell_index) const;
  /// Lifetime slots delivered by the cell's pipelines (across restarts).
  [[nodiscard]] std::uint64_t cell_slots(std::uint32_t cell_index) const;
  /// Cells torn down because they were stuck in kResync past the deadline.
  [[nodiscard]] std::uint64_t resync_escalations() const {
    return m_resync_escalations_->value();
  }

  [[nodiscard]] const FleetAggregator& aggregator() const {
    return aggregator_;
  }
  [[nodiscard]] FleetRollup rollup() const { return aggregator_.rollup(); }
  /// Wire-ready aggregate: rollup() plus each cell's supervision state.
  [[nodiscard]] FleetSummary summary() const;

 private:
  struct CellRunner {
    FleetCellSpec spec;
    std::uint32_t index = 0;
    FleetCellState state = FleetCellState::kBackoff;
    unsigned incarnation = 0;
    unsigned restarts = 0;
    double backoff_s = 0.0;  ///< 0 = healthy (next failure starts initial)
    std::chrono::steady_clock::time_point restart_at{};
    std::uint64_t feed_slot = 0;        ///< gNB slots this incarnation
    std::uint64_t accepted_pushes = 0;  ///< pipeline accepts, incarnation
    std::uint64_t pushed_lifetime = 0;  ///< accepts across incarnations
    std::uint64_t slots_at_start = 0;   ///< aggregator slots at (re)start
    std::uint64_t readd_ues_at = 0;  ///< feed slot to re-attach UEs (0=none)
    std::uint64_t readd_seed = 0;    ///< seed base for the re-attach
    std::unique_ptr<GnbSim> gnb;
    std::unique_ptr<VirtualRadio> radio;
    std::unique_ptr<NrScopePipeline> pipeline;
    std::shared_ptr<FleetFeedState> feed;
    Histogram* m_latency = nullptr;  ///< fleet.cell<N>.slot_latency_us
    Gauge* m_state = nullptr;        ///< fleet.cell<N>.state
  };

  void start_cell(CellRunner& runner);
  /// (Re)build the cell's gNB from runner.spec.cell; `with_ues` attaches
  /// the UE population immediately (a restarted cell defers it instead).
  void build_gnb(CellRunner& runner, std::uint64_t seed,
                 bool with_ues = true);
  /// Attach the spec's UE population to the cell's current gNB.
  void add_ues(CellRunner& runner, std::uint64_t seed);
  /// The per-tick pool task: step the gNB, consult the fault hook, capture
  /// and push slots_per_tick slots.  Exceptions propagate to tick().
  void advance_cell(CellRunner& runner);
  /// Feeder-level fault (timing jump / gNB restart / SIB1 change) firing
  /// at the current feed slot.  Runs on the advance task's pool thread.
  void apply_feeder_event(CellRunner& runner, const FaultEvent& event);
  void fail_cell(CellRunner& runner, bool crashed);
  void set_state(CellRunner& runner, FleetCellState state);

  struct SinkSpec {
    std::string name;
    SinkFactory factory;
    std::uint64_t error_limit = 1;
  };

  FleetConfig config_;
  MetricsRegistry* registry_;
  FleetAggregator aggregator_;
  WorkerPool pool_;
  std::vector<std::unique_ptr<CellRunner>> cells_;
  std::vector<SinkSpec> sink_specs_;
  std::uint64_t tick_count_ = 0;
  bool stopped_ = false;

  Histogram* m_latency_;  ///< fleet.slot_latency_us (push -> delivery)
  Counter* m_crashes_;
  Counter* m_stalls_;
  Counter* m_resync_escalations_;
};

}  // namespace nrs
