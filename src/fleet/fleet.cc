#include "fleet/fleet.h"

#include <algorithm>
#include <atomic>
#include <future>
#include <thread>
#include <utility>

#include "nrscope/slot_sink.h"
#include "ue/traffic.h"

namespace nrs {

namespace {

using Clock = std::chrono::steady_clock;

/// Feed slots between a PCI-changing gNB restart and its UE population
/// re-attaching (~0.3 s at 30 kHz SCS) — long enough for the sniffer to
/// re-lock first.
constexpr std::uint64_t kUeReattachDelaySlots = 600;

std::int64_t steady_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             Clock::now().time_since_epoch())
      .count();
}

/// SplitMix64 finalizer: cheap, well-mixed seed derivation.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Deterministic per-(cell, incarnation) seed: every restart draws a fresh
/// but reproducible stream, and no two cells ever share one.
std::uint64_t cell_seed(std::uint64_t fleet_seed, std::uint32_t cell_index,
                        unsigned incarnation) {
  return splitmix64(fleet_seed ^
                    splitmix64((static_cast<std::uint64_t>(cell_index) << 32) |
                               incarnation));
}

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream) {
  return splitmix64(base ^ splitmix64(stream));
}

}  // namespace

const char* to_string(FleetCellState state) {
  switch (state) {
    case FleetCellState::kRunning: return "running";
    case FleetCellState::kBackoff: return "backoff";
    case FleetCellState::kFailed: return "failed";
    case FleetCellState::kDetached: return "detached";
  }
  return "unknown";
}

/// Shared between one cell's advance task and its pipeline sink.  The ring
/// records the push wall-clock of each accepted slot, indexed by the
/// pipeline's slot number modulo the ring size; the sink subtracts it on
/// delivery for the push-to-delivery latency histogram.  The ring is 4x the
/// pipeline queue so an in-flight slot's entry cannot be overwritten.
struct FleetFeedState {
  explicit FleetFeedState(std::size_t ring)
      : ring_size(ring),
        push_us(std::make_unique<std::atomic<std::int64_t>[]>(ring)) {
    for (std::size_t i = 0; i < ring_size; ++i) {
      push_us[i].store(0, std::memory_order_relaxed);
    }
  }

  std::atomic<std::uint64_t> slots_delivered{0};
  std::atomic<std::int64_t> last_progress_us{0};
  // Sync health, mirrored from each delivered SlotResult so the
  // supervisor can tell "resyncing in place" from "making no progress".
  std::atomic<std::uint8_t> sync_state{0};
  /// Wall-clock when the current resync spell began; 0 = not resyncing.
  std::atomic<std::int64_t> resync_since_us{0};
  std::atomic<std::uint64_t> degraded_slots{0};
  std::size_t ring_size;
  std::unique_ptr<std::atomic<std::int64_t>[]> push_us;
};

namespace {

/// Per-cell pipeline sink: runs on that cell's collector thread.  Feeds
/// the aggregator, stamps the heartbeat, and records slot latency.
class FleetCellSink : public SlotSink {
 public:
  FleetCellSink(std::uint32_t cell_index, std::shared_ptr<FleetFeedState> feed,
                FleetAggregator* aggregator, Histogram* fleet_latency,
                Histogram* cell_latency)
      : cell_index_(cell_index), feed_(std::move(feed)),
        aggregator_(aggregator), fleet_latency_(fleet_latency),
        cell_latency_(cell_latency) {}

  void on_slot(const SlotResult& result) override {
    const std::int64_t now = steady_now_us();
    const std::int64_t pushed =
        feed_->push_us[result.slot % feed_->ring_size].load(
            std::memory_order_acquire);
    if (pushed > 0 && now >= pushed) {
      const auto latency = static_cast<double>(now - pushed);
      fleet_latency_->observe(latency);
      cell_latency_->observe(latency);
    }
    aggregator_->on_cell_slot(cell_index_, result);
    feed_->sync_state.store(static_cast<std::uint8_t>(result.sync_state),
                            std::memory_order_release);
    if (result.sync_state == SyncState::kResync) {
      // Stamp only on entry, so the supervisor measures the whole spell.
      std::int64_t expected = 0;
      feed_->resync_since_us.compare_exchange_strong(
          expected, now, std::memory_order_acq_rel);
    } else {
      feed_->resync_since_us.store(0, std::memory_order_release);
    }
    if (result.degraded) {
      feed_->degraded_slots.fetch_add(1, std::memory_order_relaxed);
    }
    feed_->slots_delivered.fetch_add(1, std::memory_order_release);
    feed_->last_progress_us.store(now, std::memory_order_release);
  }

 private:
  std::uint32_t cell_index_;
  std::shared_ptr<FleetFeedState> feed_;
  FleetAggregator* aggregator_;
  Histogram* fleet_latency_;
  Histogram* cell_latency_;
};

}  // namespace

FleetOrchestrator::FleetOrchestrator(FleetConfig config,
                                     MetricsRegistry& registry)
    : config_(std::move(config)), registry_(&registry),
      aggregator_(registry, config_.rate_window_slots),
      pool_(config_.pool_threads),
      m_latency_(&registry.histogram("fleet.slot_latency_us")),
      m_crashes_(&registry.counter("fleet.crashes")),
      m_stalls_(&registry.counter("fleet.stalls")),
      m_resync_escalations_(&registry.counter("fleet.resync_escalations")) {
  std::vector<FleetCellSpec> specs = std::move(config_.cells);
  config_.cells.clear();
  cells_.reserve(specs.size());
  for (FleetCellSpec& spec : specs) {
    add_cell(std::move(spec));
  }
}

std::uint32_t FleetOrchestrator::add_cell(FleetCellSpec spec,
                                          unsigned initial_incarnation) {
  const auto index = static_cast<std::uint32_t>(cells_.size());
  auto runner = std::make_unique<CellRunner>();
  runner->spec = std::move(spec);
  runner->index = index;
  runner->incarnation = initial_incarnation;
  aggregator_.add_cell(index, runner->spec.cell);
  MetricsNamespace ns =
      registry_->with_prefix("fleet.cell" + std::to_string(index) + ".");
  runner->m_latency = &ns.histogram("slot_latency_us");
  runner->m_state = &ns.gauge("state");
  cells_.push_back(std::move(runner));
  start_cell(*cells_.back());
  return index;
}

bool FleetOrchestrator::remove_cell(std::uint32_t cell_index) {
  if (cell_index >= cells_.size()) {
    return false;
  }
  CellRunner& runner = *cells_[cell_index];
  if (runner.state == FleetCellState::kDetached) {
    return false;
  }
  if (runner.pipeline != nullptr) {
    runner.pipeline->stop();  // drains accepted slots into the aggregator
  }
  runner.pipeline.reset();
  runner.radio.reset();
  runner.gnb.reset();
  runner.feed.reset();
  set_state(runner, FleetCellState::kDetached);
  return true;
}

FleetOrchestrator::~FleetOrchestrator() { stop(); }

void FleetOrchestrator::set_state(CellRunner& runner, FleetCellState state) {
  runner.state = state;
  runner.m_state->set(static_cast<std::int64_t>(state));
}

void FleetOrchestrator::build_gnb(CellRunner& runner, std::uint64_t seed,
                                  bool with_ues) {
  GnbConfig gnb_config;
  gnb_config.cell = runner.spec.cell;
  gnb_config.seed = seed;
  runner.gnb = std::make_unique<GnbSim>(std::move(gnb_config));
  if (with_ues) {
    add_ues(runner, seed);
  }
}

void FleetOrchestrator::add_ues(CellRunner& runner, std::uint64_t seed) {
  for (unsigned u = 0; u < runner.spec.n_ues; ++u) {
    UeConfig ue;
    ue.id = u;
    ue.channel.snr_db = runner.spec.ue_snr_db;
    ue.channel.seed = derive_seed(seed, 1000 + u);
    ue.dl_traffic = std::make_unique<CbrSource>(runner.spec.ue_rate_bps);
    ue.ul_traffic =
        std::make_unique<CbrSource>(runner.spec.ue_rate_bps * 0.25);
    ue.seed = derive_seed(seed, 2000 + u);
    runner.gnb->add_ue(std::move(ue));
  }
}

void FleetOrchestrator::start_cell(CellRunner& runner) {
  // A per-spec seed base replaces (fleet seed, cell index): leased cells
  // stay deterministic across workers regardless of local index.
  const std::uint64_t seed =
      runner.spec.seed != 0
          ? cell_seed(runner.spec.seed, 0, runner.incarnation)
          : cell_seed(config_.seed, runner.index, runner.incarnation);

  build_gnb(runner, seed);

  VirtualRadioConfig radio_config;
  radio_config.n_prb = runner.spec.cell.n_prb;
  radio_config.channel.snr_db = runner.spec.sniffer_snr_db;
  radio_config.channel.seed = derive_seed(seed, 3000);
  // IQ-level faults ride inside the radio; the feeder-level kinds in the
  // same schedule are applied by advance_cell.  A restarted incarnation
  // replays the schedule from slot 0 (feed_slot resets with it).
  radio_config.faults = runner.spec.faults;
  radio_config.fault_seed = derive_seed(seed, 4000);
  runner.radio = std::make_unique<VirtualRadio>(radio_config);

  NrScopeConfig scope;
  scope.n_prb = runner.spec.cell.n_prb;
  scope.scs = runner.spec.cell.scs;
  scope.n_dci_threads = runner.spec.n_dci_threads;
  runner.pipeline = std::make_unique<NrScopePipeline>(
      scope, runner.spec.n_demod_workers, runner.spec.queue_depth);

  const std::size_t ring =
      std::max<std::size_t>(4 * runner.spec.queue_depth, 256);
  runner.feed = std::make_shared<FleetFeedState>(ring);
  runner.feed->last_progress_us.store(steady_now_us(),
                                      std::memory_order_release);
  // The orchestrator's own aggregator/heartbeat sink rides the same named
  // SinkChain surface as user sinks; a throwing user sink can never take
  // the supervision heartbeat down with it.
  runner.pipeline->add_sink("fleet", std::make_shared<FleetCellSink>(
                                         runner.index, runner.feed,
                                         &aggregator_, m_latency_,
                                         runner.m_latency));
  for (const SinkSpec& spec : sink_specs_) {
    if (auto sink = spec.factory(runner.index)) {
      runner.pipeline->add_sink(spec.name, std::move(sink),
                                spec.error_limit);
    }
  }

  runner.feed_slot = 0;
  runner.readd_ues_at = 0;
  runner.accepted_pushes = 0;
  runner.slots_at_start = aggregator_.cell_slots(runner.index);
  set_state(runner, FleetCellState::kRunning);
}

void FleetOrchestrator::apply_feeder_event(CellRunner& runner,
                                           const FaultEvent& event) {
  switch (event.kind) {
    case FaultKind::kTimingJump: {
      // The gNB's air time runs ahead while the receiver misses it — and,
      // unlike an SDR overflow report, never learns by how much.  No
      // skip_slots() here: the sniffer's frame phase silently breaks and
      // only the sync monitor can notice (expected SSBs measure noise).
      const auto jump = static_cast<std::uint64_t>(
          std::max(1.0, event.magnitude));
      for (std::uint64_t j = 0; j < jump; ++j) {
        runner.gnb->step();
      }
      break;
    }
    case FaultKind::kCellRestart:
    case FaultKind::kSib1Change: {
      if (event.kind == FaultKind::kCellRestart) {
        // Same site, new identity: PCI moves by `magnitude` and the
        // CORESET scrambling identities move with it.
        const auto delta = std::max<std::uint16_t>(
            1, static_cast<std::uint16_t>(event.magnitude));
        runner.spec.cell.pci =
            static_cast<std::uint16_t>((runner.spec.cell.pci + delta) % 1008);
        runner.spec.cell.coreset.shift = runner.spec.cell.pci;
        runner.spec.cell.coreset.n_id = runner.spec.cell.pci;
      } else {
        // Same PCI, different SIB1: flipping the CCE interleaver moves
        // every PDCCH candidate, so tracked UEs decode garbage until the
        // sniffer's blind-decode monitor forces a SIB1 re-read.
        runner.spec.cell.coreset.interleaved =
            !runner.spec.cell.coreset.interleaved;
      }
      const std::uint64_t seed =
          derive_seed(cell_seed(config_.seed, runner.index,
                                runner.incarnation),
                      5000 + runner.feed_slot);
      const bool new_pci = event.kind == FaultKind::kCellRestart;
      build_gnb(runner, seed, /*with_ues=*/!new_pci);
      if (new_pci) {
        // Subscribers re-register over the seconds after a restart;
        // holding their RACH until the sniffer has re-locked onto the new
        // PCI keeps the attach observable (Msg2-assisted tracking has to
        // see it to learn the new C-RNTIs).
        runner.readd_ues_at = runner.feed_slot + kUeReattachDelaySlots;
        runner.readd_seed = seed;
      }
      break;
    }
    default:
      break;  // IQ-level kinds are the radio injector's business
  }
}

void FleetOrchestrator::advance_cell(CellRunner& runner) {
  for (std::uint64_t k = 0; k < config_.slots_per_tick; ++k) {
    if (const FaultEvent* event =
            runner.spec.faults.feeder_event_at(runner.feed_slot)) {
      apply_feeder_event(runner, *event);
    }
    if (runner.readd_ues_at != 0 &&
        runner.feed_slot >= runner.readd_ues_at) {
      add_ues(runner, runner.readd_seed);
      runner.readd_ues_at = 0;
    }
    const ResourceGrid& grid = runner.gnb->step();
    FaultAction action = FaultAction::kNone;
    if (runner.spec.fault_hook) {
      // May throw: that is the crash-injection path, and it surfaces to
      // tick() through the pool task's future.
      action = runner.spec.fault_hook(runner.feed_slot, runner.incarnation);
    }
    ++runner.feed_slot;
    if (action == FaultAction::kMute) {
      continue;  // dark radio: the gNB ran, the sniffer saw nothing
    }
    // Pooled feed path (hot-path memory discipline): borrow a recycled
    // sample buffer from the pipeline, capture into it, and hand it back —
    // no per-slot buffer allocation once the pool is warm.
    auto samples = runner.pipeline->acquire_samples();
    runner.radio->capture_into(grid, *samples);
    // Stamp before the push: the accepted slot's pipeline index is exactly
    // accepted_pushes, and the sink may consume it immediately.  A rejected
    // push leaves a stale stamp that the next accept simply overwrites.
    runner.feed->push_us[runner.accepted_pushes % runner.feed->ring_size]
        .store(steady_now_us(), std::memory_order_release);
    if (runner.pipeline->push_slot(std::move(samples))) {
      ++runner.accepted_pushes;
      ++runner.pushed_lifetime;
    }
  }
}

void FleetOrchestrator::fail_cell(CellRunner& runner, bool crashed) {
  (crashed ? m_crashes_ : m_stalls_)->inc();
  if (runner.pipeline != nullptr) {
    runner.pipeline->stop();  // drains accepted slots into the aggregator
  }
  runner.pipeline.reset();
  runner.radio.reset();
  runner.gnb.reset();
  runner.feed.reset();
  ++runner.restarts;
  ++runner.incarnation;
  aggregator_.on_cell_restart(runner.index);
  if (config_.max_restarts >= 0 &&
      runner.restarts > static_cast<unsigned>(config_.max_restarts)) {
    set_state(runner, FleetCellState::kFailed);
    return;
  }
  runner.backoff_s =
      runner.backoff_s <= 0.0
          ? config_.backoff_initial_s
          : std::min(config_.backoff_max_s,
                     runner.backoff_s * config_.backoff_factor);
  runner.restart_at =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(runner.backoff_s));
  set_state(runner, FleetCellState::kBackoff);
}

void FleetOrchestrator::tick() {
  const auto now = Clock::now();
  for (auto& cp : cells_) {
    if (cp->state == FleetCellState::kBackoff && now >= cp->restart_at) {
      start_cell(*cp);
    }
  }

  std::vector<std::pair<CellRunner*, std::future<void>>> inflight;
  inflight.reserve(cells_.size());
  for (auto& cp : cells_) {
    if (cp->state != FleetCellState::kRunning) {
      continue;
    }
    CellRunner* runner = cp.get();
    inflight.emplace_back(
        runner, pool_.submit([this, runner] { advance_cell(*runner); }));
  }
  for (auto& [runner, fut] : inflight) {
    try {
      fut.get();
    } catch (...) {
      fail_cell(*runner, /*crashed=*/true);
    }
  }

  const std::int64_t now_us = steady_now_us();
  const auto stall_us =
      static_cast<std::int64_t>(config_.stall_timeout_s * 1e6);
  const auto resync_deadline_us =
      static_cast<std::int64_t>(config_.resync_deadline_s * 1e6);
  for (auto& cp : cells_) {
    CellRunner& runner = *cp;
    if (runner.state != FleetCellState::kRunning) {
      continue;
    }
    if (aggregator_.cell_slots(runner.index) - runner.slots_at_start >=
        config_.healthy_slots) {
      runner.backoff_s = 0.0;  // healthy again: backoff restarts from initial
    }
    // A resyncing engine still delivers slots, so it never looks stalled;
    // in-place recovery is the preferred outcome and gets the whole
    // deadline.  Escalate to teardown only once the deadline passes.
    const std::int64_t resync_since =
        runner.feed->resync_since_us.load(std::memory_order_acquire);
    if (resync_since > 0 && now_us - resync_since > resync_deadline_us) {
      m_resync_escalations_->inc();
      fail_cell(runner, /*crashed=*/false);
      continue;  // fail_cell released runner.feed
    }
    if (now_us - runner.feed->last_progress_us.load(
                     std::memory_order_acquire) >
        stall_us) {
      fail_cell(runner, /*crashed=*/false);
    }
  }

  if (inflight.empty()) {
    // Every cell is in backoff (or failed): don't spin while waiting for
    // a restart deadline.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  ++tick_count_;
  if (config_.stream != nullptr && config_.aggregate_period_ticks > 0 &&
      tick_count_ % config_.aggregate_period_ticks == 0) {
    config_.stream->broadcast_frame(fleet_frame(summary()));
  }
}

void FleetOrchestrator::run_until(std::uint64_t target_slots) {
  while (true) {
    bool any_live = false;
    bool all_done = true;
    for (const auto& cp : cells_) {
      if (cp->state == FleetCellState::kFailed ||
          cp->state == FleetCellState::kDetached) {
        continue;
      }
      any_live = true;
      if (cp->pushed_lifetime < target_slots) {
        all_done = false;
      }
    }
    if (!any_live || all_done) {
      return;
    }
    tick();
  }
}

void FleetOrchestrator::add_sink(const std::string& name,
                                 SinkFactory factory,
                                 std::uint64_t error_limit) {
  if (!factory) {
    return;
  }
  sink_specs_.push_back(SinkSpec{name, std::move(factory), error_limit});
  const SinkSpec& spec = sink_specs_.back();
  for (auto& cp : cells_) {
    if (cp->state == FleetCellState::kRunning && cp->pipeline != nullptr) {
      if (auto sink = spec.factory(cp->index)) {
        cp->pipeline->add_sink(spec.name, std::move(sink),
                               spec.error_limit);
      }
    }
  }
}

bool FleetOrchestrator::detach_sink(const std::string& name) {
  bool found = false;
  for (auto it = sink_specs_.begin(); it != sink_specs_.end();) {
    if (it->name == name) {
      it = sink_specs_.erase(it);
      found = true;
    } else {
      ++it;
    }
  }
  if (found) {
    for (auto& cp : cells_) {
      if (cp->pipeline != nullptr) {
        cp->pipeline->detach_sink(name);
      }
    }
  }
  return found;
}

void FleetOrchestrator::stop() {
  if (stopped_) {
    return;
  }
  stopped_ = true;
  for (auto& cp : cells_) {
    if (cp->pipeline != nullptr) {
      cp->pipeline->stop();
    }
  }
}

FleetCellState FleetOrchestrator::cell_state(std::uint32_t cell_index) const {
  return cells_.at(cell_index)->state;
}

unsigned FleetOrchestrator::cell_restarts(std::uint32_t cell_index) const {
  return cells_.at(cell_index)->restarts;
}

std::uint64_t FleetOrchestrator::cell_slots(std::uint32_t cell_index) const {
  return aggregator_.cell_slots(cell_index);
}

FleetSummary FleetOrchestrator::summary() const {
  const FleetRollup roll = aggregator_.rollup();
  FleetSummary s;
  s.slot = roll.slot;
  s.dcis_total = roll.dcis_total;
  s.restarts_total = roll.restarts_total;
  s.dl_mbps_total = roll.dl_mbps_total;
  s.ul_mbps_total = roll.ul_mbps_total;
  s.retx_rate = roll.retx_rate;
  s.spare_ranking = roll.spare_ranking;
  s.cells.reserve(roll.cells.size());
  for (const CellRollup& c : roll.cells) {
    CellSummary cs;
    cs.cell_index = c.cell_index;
    cs.name = c.name;
    cs.state = static_cast<std::uint8_t>(cells_.at(c.cell_index)->state);
    cs.slots = c.slots;
    cs.dcis = c.dcis;
    cs.restarts = c.restarts;
    cs.active_ues = c.active_ues;
    cs.dl_mbps = c.dl_mbps;
    cs.ul_mbps = c.ul_mbps;
    cs.retx_rate = c.retx_rate;
    cs.utilization = c.utilization;
    s.cells.push_back(std::move(cs));
  }
  return s;
}

}  // namespace nrs
