// Application traffic models driving the UEs (downlink and uplink).  The
// paper's UEs "use the data to watch videos or download files" (section
// 5.2.2); these sources generate the corresponding packet arrival
// processes.  Packet boundaries are kept so the packet-aggregation analysis
// (paper Appendix D / Fig. 16d) can count packets per TTI.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"

namespace nrs {

/// One application packet queued for transmission.
struct AppPacket {
  std::size_t size_bytes;
  std::size_t remaining_bytes;
  double arrival_s;
};

/// Result of draining bytes from a source in one TTI.
struct DrainResult {
  std::size_t bytes = 0;           ///< bytes actually consumed
  unsigned packets_completed = 0;  ///< full packets finishing in this TTI
};

/// Base class: subclasses generate packets in advance(); the scheduler
/// drains bytes per TTI.
class TrafficSource {
 public:
  virtual ~TrafficSource() = default;

  /// Advance simulated time, enqueueing any packets that arrive by `now_s`.
  void advance(double now_s);

  /// Bytes waiting in the queue.
  [[nodiscard]] std::size_t backlog_bytes() const;

  /// True for sources that always have data (full-buffer).
  [[nodiscard]] virtual bool is_full_buffer() const { return false; }

  /// Consume up to `max_bytes` from the head of the queue.
  DrainResult drain(std::size_t max_bytes);

  [[nodiscard]] const std::string& name() const { return name_; }

 protected:
  explicit TrafficSource(std::string name) : name_(std::move(name)) {}

  /// Generate packets with arrival times in (last_time, now].  Called by
  /// advance(); push via enqueue().
  virtual void generate(double from_s, double to_s) = 0;

  void enqueue(std::size_t size_bytes, double arrival_s);

 private:
  std::string name_;
  std::deque<AppPacket> queue_;
  double last_time_ = 0.0;
};

/// Always-backlogged source (for saturation experiments).
class FullBufferSource final : public TrafficSource {
 public:
  FullBufferSource();
  [[nodiscard]] bool is_full_buffer() const override { return true; }

 protected:
  void generate(double from_s, double to_s) override;
};

/// Constant bit rate with fixed-size packets (e.g. a voice/telemetry flow).
class CbrSource final : public TrafficSource {
 public:
  CbrSource(double rate_bps, std::size_t packet_bytes = 1200);

 protected:
  void generate(double from_s, double to_s) override;

 private:
  double rate_bps_;
  std::size_t packet_bytes_;
  double carry_bytes_ = 0.0;
};

/// On/off video stream: bursts of frames at the frame rate while "on".
class VideoSource final : public TrafficSource {
 public:
  VideoSource(double rate_bps, std::uint64_t seed, double fps = 30.0,
              double on_s = 4.0, double off_s = 1.0);

 protected:
  void generate(double from_s, double to_s) override;

 private:
  double rate_bps_;
  double fps_;
  double on_s_;
  double off_s_;
  Rng rng_;
  double next_frame_ = 0.0;
};

/// Repeated file downloads: a large burst, then an idle think time.
class FileDownloadSource final : public TrafficSource {
 public:
  FileDownloadSource(std::size_t file_bytes, double think_s,
                     std::uint64_t seed);

 protected:
  void generate(double from_s, double to_s) override;

 private:
  std::size_t file_bytes_;
  double think_s_;
  Rng rng_;
  double next_start_ = 0.0;
};

/// Poisson packet arrivals with exponential sizes (web-ish background).
class PoissonSource final : public TrafficSource {
 public:
  PoissonSource(double packets_per_s, std::size_t mean_bytes,
                std::uint64_t seed);

 protected:
  void generate(double from_s, double to_s) override;

 private:
  double rate_;
  std::size_t mean_bytes_;
  Rng rng_;
  double next_arrival_ = 0.0;
};

}  // namespace nrs
