// UE emulator: the phones of the paper's evaluation (Moto G 5G handsets in
// the lab cells, the Amarisoft UE emulator for the 8-64 UE runs).  Each UE
// owns a fading channel to the gNB, generates application traffic, ACKs or
// NACKs transport blocks according to an SNR/MCS block-error model, and
// records delivered bytes in a PacketTrace — the stand-in for the tcpdump
// ground truth of paper section 5.2.2.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "nr/grant.h"
#include "phy/channel.h"
#include "ue/traffic.h"

namespace nrs {

/// One delivered-data record (what tcpdump would see, per TTI).
struct TraceEntry {
  std::uint64_t slot = 0;
  std::size_t bytes = 0;
  unsigned packets = 0;
};

/// The per-UE delivery log, queryable as a windowed bit rate.
class PacketTrace {
 public:
  void record(std::uint64_t slot, std::size_t bytes, unsigned packets);

  [[nodiscard]] const std::vector<TraceEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] std::size_t total_bytes() const { return total_bytes_; }

  /// Delivered bit rate over [slot_end - window, slot_end), bits/second.
  [[nodiscard]] double rate_bps(std::uint64_t slot_end,
                                std::uint64_t window_slots,
                                double slot_duration_s) const;

 private:
  std::vector<TraceEntry> entries_;
  std::size_t total_bytes_ = 0;
};

struct UeConfig {
  unsigned id = 0;
  ChannelConfig channel;                    ///< UE <-> gNB link
  std::unique_ptr<TrafficSource> dl_traffic;
  std::unique_ptr<TrafficSource> ul_traffic;  ///< may be null
  double bler_target_gap_db = 1.0;  ///< SNR margin in the BLER model
  std::uint64_t seed = 1;
};

/// Block error probability for a transport block sent at `entry`'s
/// spectral efficiency over a link at `snr_db` — a calibrated sigmoid
/// around the Shannon-gap threshold.  Exposed for tests and benches.
double block_error_probability(double snr_db, double efficiency_bits_per_re,
                               double gap_db = 3.0);

class UeEmulator {
 public:
  explicit UeEmulator(UeConfig config);

  [[nodiscard]] unsigned id() const { return config_.id; }
  [[nodiscard]] Rnti rnti() const { return rnti_; }
  void set_rnti(Rnti rnti) { rnti_ = rnti; }

  /// Advance one TTI: evolve the channel and the traffic sources.
  void step(std::uint64_t slot, double now_s);

  /// Current link SNR (what the CQI report conveys to the gNB).
  [[nodiscard]] double snr_db() const { return channel_.effective_snr_db(); }

  /// CQI-style quantized SNR report (0.5 dB steps, 100 ms-ish delay is
  /// modelled by the gNB's link adaptation, not here).
  [[nodiscard]] double reported_snr_db() const;

  /// Decide ACK/NACK for a transport block sent with this grant, drawing
  /// from the BLER model at the current link SNR.  Returns true on ACK.
  bool decide_ack(const Grant& grant);

  /// The gNB confirms delivery (after an ACK): record the application
  /// bytes/packets the transport block carried into the trace.
  void deliver(std::uint64_t slot, std::size_t bytes, unsigned packets);

  [[nodiscard]] TrafficSource* dl_traffic() { return config_.dl_traffic.get(); }
  [[nodiscard]] TrafficSource* ul_traffic() { return config_.ul_traffic.get(); }
  [[nodiscard]] const PacketTrace& trace() const { return trace_; }

  /// Bytes of the pending (NACKed) transport block per HARQ process, so
  /// the gNB can retransmit without regenerating traffic.
  [[nodiscard]] ChannelModel& channel() { return channel_; }

 private:
  UeConfig config_;
  ChannelModel channel_;
  Rng rng_;
  Rnti rnti_ = kInvalidRnti;
  PacketTrace trace_;
};

}  // namespace nrs
