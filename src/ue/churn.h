// UE arrival/departure ("come-and-go") process for the commercial-cell
// experiments: paper section 5.3.1 observes 400-600 distinct UEs per 10
// minutes in T-Mobile cell 1, with 90% staying under 35 seconds.  The churn
// model generates Poisson arrivals with a heavy-tailed dwell-time mix
// calibrated to that shape.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace nrs {

struct ChurnConfig {
  double arrival_rate_per_s = 0.8;  ///< ~480 UEs / 10 min
  /// Dwell mixture: most sessions are short (seconds), a tail lasts
  /// minutes (background sync vs. active use).
  double short_dwell_mean_s = 8.0;
  double long_dwell_mean_s = 90.0;
  double long_fraction = 0.08;
  double duration_s = 600.0;
  std::uint64_t seed = 1;
};

/// One UE session in the cell.
struct ChurnSession {
  double arrival_s;
  double departure_s;
  [[nodiscard]] double dwell_s() const { return departure_s - arrival_s; }
};

/// Generate all sessions for one observation window.
std::vector<ChurnSession> generate_churn(const ChurnConfig& config);

/// Count of sessions active during [t, t + bin_s) for each bin — the
/// "active UEs per second / per minute" statistic of paper Fig. 11.
std::vector<unsigned> active_counts(const std::vector<ChurnSession>& sessions,
                                    double duration_s, double bin_s);

}  // namespace nrs
