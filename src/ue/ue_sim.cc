#include "ue/ue_sim.h"

#include <algorithm>
#include <cmath>

namespace nrs {

void PacketTrace::record(std::uint64_t slot, std::size_t bytes,
                         unsigned packets) {
  entries_.push_back(TraceEntry{slot, bytes, packets});
  total_bytes_ += bytes;
}

double PacketTrace::rate_bps(std::uint64_t slot_end,
                             std::uint64_t window_slots,
                             double slot_duration_s) const {
  if (window_slots == 0) {
    return 0.0;
  }
  const std::uint64_t begin =
      slot_end >= window_slots ? slot_end - window_slots : 0;
  std::size_t bytes = 0;
  // Entries are appended in slot order; scan from the back.
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (it->slot >= slot_end) {
      continue;
    }
    if (it->slot < begin) {
      break;
    }
    bytes += it->bytes;
  }
  const double window_s =
      static_cast<double>(slot_end - begin) * slot_duration_s;
  return window_s > 0.0 ? static_cast<double>(bytes) * 8.0 / window_s : 0.0;
}

double block_error_probability(double snr_db, double efficiency_bits_per_re,
                               double gap_db) {
  // Required SNR for the target spectral efficiency with an implementation
  // gap, then a sigmoid ~2 dB wide around it (typical LDPC waterfall).
  const double required_db =
      10.0 * std::log10(std::pow(2.0, efficiency_bits_per_re) - 1.0) + gap_db;
  const double margin = snr_db - required_db;
  const double bler = 1.0 / (1.0 + std::exp(2.2 * margin));
  return std::clamp(bler, 1e-5, 1.0 - 1e-5);
}

UeEmulator::UeEmulator(UeConfig config)
    : config_(std::move(config)), channel_(config_.channel),
      rng_(config_.seed) {}

void UeEmulator::step(std::uint64_t /*slot*/, double now_s) {
  channel_.step_slot();
  if (config_.dl_traffic) {
    config_.dl_traffic->advance(now_s);
  }
  if (config_.ul_traffic) {
    config_.ul_traffic->advance(now_s);
  }
}

double UeEmulator::reported_snr_db() const {
  return std::round(snr_db() * 2.0) / 2.0;  // 0.5 dB CQI quantization
}

bool UeEmulator::decide_ack(const Grant& grant) {
  const double eff =
      grant.code_rate * static_cast<double>(bits_per_symbol(grant.modulation));
  const double bler = block_error_probability(
      snr_db(), eff, config_.bler_target_gap_db + 2.0);
  return !rng_.chance(bler);
}

void UeEmulator::deliver(std::uint64_t slot, std::size_t bytes,
                         unsigned packets) {
  trace_.record(slot, bytes, packets);
}

}  // namespace nrs
