#include "ue/churn.h"

#include <algorithm>
#include <cmath>

namespace nrs {

std::vector<ChurnSession> generate_churn(const ChurnConfig& config) {
  Rng rng(config.seed);
  std::vector<ChurnSession> sessions;
  double t = 0.0;
  while (true) {
    t += rng.exponential(1.0 / config.arrival_rate_per_s);
    if (t >= config.duration_s) {
      break;
    }
    const bool long_session = rng.chance(config.long_fraction);
    const double dwell = rng.exponential(
        long_session ? config.long_dwell_mean_s : config.short_dwell_mean_s);
    sessions.push_back(
        ChurnSession{t, std::min(t + std::max(0.2, dwell),
                                 config.duration_s)});
  }
  return sessions;
}

std::vector<unsigned> active_counts(const std::vector<ChurnSession>& sessions,
                                    double duration_s, double bin_s) {
  const auto n_bins = static_cast<std::size_t>(std::ceil(duration_s / bin_s));
  std::vector<unsigned> counts(n_bins, 0);
  for (const auto& s : sessions) {
    const auto first = static_cast<std::size_t>(s.arrival_s / bin_s);
    const auto last = std::min(
        n_bins - 1, static_cast<std::size_t>(s.departure_s / bin_s));
    for (std::size_t b = first; b <= last && b < n_bins; ++b) {
      ++counts[b];
    }
  }
  return counts;
}

}  // namespace nrs
