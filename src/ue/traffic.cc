#include "ue/traffic.h"

#include <algorithm>
#include <cmath>

namespace nrs {

void TrafficSource::advance(double now_s) {
  if (now_s <= last_time_) {
    return;
  }
  generate(last_time_, now_s);
  last_time_ = now_s;
}

std::size_t TrafficSource::backlog_bytes() const {
  std::size_t total = 0;
  for (const auto& p : queue_) {
    total += p.remaining_bytes;
  }
  return total;
}

DrainResult TrafficSource::drain(std::size_t max_bytes) {
  DrainResult result;
  while (max_bytes > 0 && !queue_.empty()) {
    AppPacket& head = queue_.front();
    const std::size_t take = std::min(max_bytes, head.remaining_bytes);
    head.remaining_bytes -= take;
    max_bytes -= take;
    result.bytes += take;
    if (head.remaining_bytes == 0) {
      ++result.packets_completed;
      queue_.pop_front();
    }
  }
  return result;
}

void TrafficSource::enqueue(std::size_t size_bytes, double arrival_s) {
  queue_.push_back(AppPacket{size_bytes, size_bytes, arrival_s});
}

FullBufferSource::FullBufferSource() : TrafficSource("full-buffer") {}

void FullBufferSource::generate(double /*from_s*/, double to_s) {
  // Keep a deep standing queue of MTU packets.
  while (backlog_bytes() < 4u * 1024u * 1024u) {
    enqueue(1500, to_s);
  }
}

CbrSource::CbrSource(double rate_bps, std::size_t packet_bytes)
    : TrafficSource("cbr"), rate_bps_(rate_bps), packet_bytes_(packet_bytes) {}

void CbrSource::generate(double from_s, double to_s) {
  carry_bytes_ += rate_bps_ / 8.0 * (to_s - from_s);
  while (carry_bytes_ >= static_cast<double>(packet_bytes_)) {
    enqueue(packet_bytes_, to_s);
    carry_bytes_ -= static_cast<double>(packet_bytes_);
  }
}

VideoSource::VideoSource(double rate_bps, std::uint64_t seed, double fps,
                         double on_s, double off_s)
    : TrafficSource("video"), rate_bps_(rate_bps), fps_(fps), on_s_(on_s),
      off_s_(off_s), rng_(seed) {}

void VideoSource::generate(double /*from_s*/, double to_s) {
  const double cycle = on_s_ + off_s_;
  while (next_frame_ <= to_s) {
    const double phase = std::fmod(next_frame_, cycle);
    if (phase < on_s_) {
      // Frame size varies +-30% around the nominal rate/fps; the frame is
      // delivered as a burst of MTU-sized packets, which is what the
      // paper's packet-aggregation analysis counts per TTI (Fig. 16d).
      const double nominal = rate_bps_ / 8.0 / fps_;
      const double jitter = rng_.uniform(0.7, 1.3);
      auto remaining = static_cast<std::size_t>(
          std::max(100.0, nominal * jitter));
      while (remaining > 0) {
        const std::size_t chunk = std::min<std::size_t>(1500, remaining);
        enqueue(chunk, next_frame_);
        remaining -= chunk;
      }
    }
    next_frame_ += 1.0 / fps_;
  }
}

FileDownloadSource::FileDownloadSource(std::size_t file_bytes, double think_s,
                                       std::uint64_t seed)
    : TrafficSource("download"), file_bytes_(file_bytes), think_s_(think_s),
      rng_(seed) {}

void FileDownloadSource::generate(double /*from_s*/, double to_s) {
  while (next_start_ <= to_s) {
    // The file arrives as a burst of MTU packets.
    std::size_t remaining = file_bytes_;
    while (remaining > 0) {
      const std::size_t chunk = std::min<std::size_t>(1500, remaining);
      enqueue(chunk, next_start_);
      remaining -= chunk;
    }
    next_start_ += think_s_ * rng_.uniform(0.5, 1.5);
  }
}

PoissonSource::PoissonSource(double packets_per_s, std::size_t mean_bytes,
                             std::uint64_t seed)
    : TrafficSource("poisson"), rate_(packets_per_s),
      mean_bytes_(mean_bytes), rng_(seed) {}

void PoissonSource::generate(double /*from_s*/, double to_s) {
  while (next_arrival_ <= to_s) {
    const double size =
        rng_.exponential(static_cast<double>(mean_bytes_));
    enqueue(static_cast<std::size_t>(std::max(64.0, size)), next_arrival_);
    next_arrival_ += rng_.exponential(1.0 / rate_);
  }
}

}  // namespace nrs
