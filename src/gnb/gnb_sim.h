// The 5G SA gNB simulator: the stand-in for the paper's srsRAN / Mosolabs
// / Amarisoft / T-Mobile base stations (see DESIGN.md).  Slot by slot it
// broadcasts SSB+MIB and SIB1, runs the four-message RACH with arriving
// UEs, schedules downlink data and uplink grants with HARQ and link
// adaptation, encodes everything onto an OFDM resource grid, and logs the
// per-TTI ground truth that the evaluation compares NR-Scope against.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "common/bit_io.h"
#include "common/rng.h"
#include "common/timing.h"
#include "gnb/ground_truth.h"
#include "gnb/scheduler.h"
#include "nr/cell_config.h"
#include "nr/harq.h"
#include "nr/rach.h"
#include "nr/rrc.h"
#include "phy/resource_grid.h"
#include "ue/ue_sim.h"

namespace nrs {

struct GnbConfig {
  CellConfig cell;
  SchedulerPolicy policy = SchedulerPolicy::kRoundRobin;
  RrcSetup rrc_setup;  ///< dedicated config handed to every UE in MSG4
  unsigned max_harq_tx = 4;
  std::uint64_t seed = 1;
};

class GnbSim {
 public:
  explicit GnbSim(GnbConfig config);

  /// Register a UE; it will start the RACH at the next PRACH occasion.
  unsigned add_ue(UeConfig ue_config);

  /// UE leaves the cell (C-RNTI released, context dropped).
  void remove_ue(unsigned ue_id);

  /// Advance one TTI and build the downlink slot grid.
  const ResourceGrid& step();

  [[nodiscard]] const SlotClock& clock() const { return clock_; }
  [[nodiscard]] const CellConfig& cell() const { return config_.cell; }
  [[nodiscard]] const GroundTruthLog& truth() const { return truth_; }
  [[nodiscard]] const ResourceGrid& current_grid() const { return grid_; }

  /// The UE emulator (for traces / SNR); nullptr if departed.
  [[nodiscard]] const UeEmulator* ue(unsigned ue_id) const;
  [[nodiscard]] UeEmulator* ue(unsigned ue_id);

  /// C-RNTI of a connected UE, kInvalidRnti while still in RACH.
  [[nodiscard]] Rnti ue_rnti(unsigned ue_id) const;

  /// All currently connected C-RNTIs.
  [[nodiscard]] std::vector<Rnti> connected_rntis() const;

  /// Times a DCI could not be sent because every monitored candidate's
  /// CCEs were taken (PDCCH blocking).
  [[nodiscard]] std::uint64_t pdcch_blocked() const { return pdcch_blocked_; }

 private:
  struct DlProcess {
    bool active = false;
    std::uint8_t ndi = 0;
    bool awaiting_retx = false;
    Grant grant;
    std::size_t payload_bytes = 0;
    unsigned packets = 0;
    unsigned tx_count = 0;
  };

  struct UeContext {
    unsigned id = 0;
    std::unique_ptr<UeEmulator> emulator;
    RachStage stage = RachStage::kIdle;
    Rnti rnti = kInvalidRnti;
    std::uint64_t stage_slot = 0;  ///< slot of the last RACH transition
    double olla_db = 0.0;          ///< outer-loop link adaptation offset
    double avg_rate_bps = 1.0;     ///< PF average
    std::array<DlProcess, kMaxHarqProcesses> dl_harq{};
    std::array<std::uint8_t, kMaxHarqProcesses> ul_ndi{};
    unsigned ul_harq_cursor = 0;
  };

  /// Slot-build helpers.
  void broadcast(bool& has_ssb);
  void run_rach(bool allow_tx);
  void schedule_downlink();
  void schedule_uplink();
  bool allocate_pdcch(Rnti rnti, const SearchSpaceConfig& ss,
                      unsigned agg_level, unsigned& cce_start);
  void transmit_dl_grant(UeContext& ue_ctx, DlProcess& process,
                         unsigned harq_id, DciKind kind, unsigned agg,
                         unsigned cce);
  static unsigned agg_level_for(unsigned prb_len);
  unsigned n_data_symbols() const;

  GnbConfig config_;
  SlotClock clock_;
  Rng rng_;
  ResourceGrid grid_;
  GroundTruthLog truth_;
  std::vector<UeContext> ues_;
  unsigned next_ue_id_ = 0;
  Rnti next_tc_rnti_ = kFirstTcRnti;
  std::uint64_t rr_cursor_ = 0;
  std::vector<bool> used_cce_;  ///< per-slot CCE occupancy
  unsigned prb_cursor_ = 0;     ///< per-slot PDSCH PRB allocation cursor
  std::uint64_t pdcch_blocked_ = 0;

  // Per-slot scratch reused across TTIs (hot-path memory discipline,
  // DESIGN.md): payload/padding bits plus the scheduler's inputs and
  // outputs keep their capacity, so a warm steady-state slot build
  // allocates nothing beyond the ground-truth log.
  BitVector payload_scratch_;
  BitVector sib1_payload_;  ///< packed once; the cell config is immutable
  std::vector<SchedRequest> sched_requests_;
  std::vector<UeContext*> sched_ctx_;
  std::vector<SchedDecision> sched_decisions_;
  SchedScratch sched_scratch_;
  std::vector<UeContext*> uplinkers_;
};

}  // namespace nrs
