#include "gnb/scheduler.h"

#include <algorithm>
#include <cmath>

#include "nr/tbs.h"

namespace nrs {
namespace {

/// PRBs needed to carry `bytes` at the given MCS (rounded up, min 1).
unsigned prbs_for_backlog(std::size_t bytes, unsigned mcs, McsTable table,
                          unsigned n_symbols, unsigned dmrs_re,
                          unsigned overhead) {
  const McsEntry entry = mcs_entry(table, mcs);
  TbsParams params;
  params.n_prb = 1;
  params.n_symbols = n_symbols;
  params.dmrs_re_per_prb = dmrs_re;
  params.overhead_re = overhead;
  params.code_rate = entry.code_rate();
  params.qm = entry.qm;
  const double bits_per_prb = static_cast<double>(tbs_n_re(params)) *
                              entry.efficiency();
  if (bits_per_prb <= 0.0) {
    return 1;
  }
  const double prbs = static_cast<double>(bytes) * 8.0 / bits_per_prb;
  return std::max(1u, static_cast<unsigned>(std::ceil(prbs)));
}

}  // namespace

const char* to_string(SchedulerPolicy policy) {
  switch (policy) {
    case SchedulerPolicy::kRoundRobin:
      return "round-robin";
    case SchedulerPolicy::kProportionalFair:
      return "proportional-fair";
  }
  return "?";
}

std::vector<SchedDecision> schedule_tti(std::span<const SchedRequest> requests,
                                        unsigned n_prb, McsTable table,
                                        SchedulerPolicy policy,
                                        std::uint64_t round_robin_cursor,
                                        unsigned n_symbols, unsigned dmrs_re,
                                        unsigned overhead) {
  SchedScratch scratch;
  std::vector<SchedDecision> decisions;
  schedule_tti(requests, n_prb, table, policy, round_robin_cursor, n_symbols,
               dmrs_re, overhead, scratch, decisions);
  return decisions;
}

void schedule_tti(std::span<const SchedRequest> requests, unsigned n_prb,
                  McsTable table, SchedulerPolicy policy,
                  std::uint64_t round_robin_cursor, unsigned n_symbols,
                  unsigned dmrs_re, unsigned overhead, SchedScratch& scratch,
                  std::vector<SchedDecision>& out) {
  out.clear();
  // Candidates: anyone with data.
  std::vector<std::size_t>& order = scratch.order;
  order.clear();
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (requests[i].full_buffer || requests[i].backlog_bytes > 0) {
      order.push_back(i);
    }
  }
  if (order.empty() || n_prb == 0) {
    return;
  }

  if (policy == SchedulerPolicy::kRoundRobin) {
    // Rotate the start position so leftover-PRB advantage moves around.
    std::rotate(order.begin(),
                order.begin() + (round_robin_cursor % order.size()),
                order.end());
  } else {
    // Proportional fair: serve highest instantaneous-rate / average-rate
    // first.
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                     std::size_t b) {
      auto metric = [&](const SchedRequest& r) {
        const double inst = std::log2(1.0 + std::pow(10.0, r.snr_db / 10.0));
        return inst / std::max(1.0, r.avg_rate_bps);
      };
      return metric(requests[a]) > metric(requests[b]);
    });
  }

  unsigned next_prb = 0;
  // Equal-share baseline so full-buffer UEs split the band, like the
  // paper's Fig. 14 two-UE experiment.
  const unsigned fair_share =
      std::max(1u, n_prb / static_cast<unsigned>(order.size()));
  for (std::size_t k = 0; k < order.size() && next_prb < n_prb; ++k) {
    const SchedRequest& req = requests[order[k]];
    const unsigned mcs = select_mcs_for_snr(table, req.snr_db);
    unsigned want = req.full_buffer
                        ? n_prb  // capped below
                        : prbs_for_backlog(req.backlog_bytes, mcs, table,
                                           n_symbols, dmrs_re, overhead);
    // Last UE in the round may take all remaining PRBs.
    const bool last = k + 1 == order.size();
    const unsigned cap = last ? n_prb - next_prb
                              : std::min(n_prb - next_prb,
                                         std::max(fair_share, 1u));
    const unsigned len = std::min(want, cap);
    if (len == 0) {
      continue;
    }
    out.push_back(SchedDecision{req.rnti, next_prb, len, mcs});
    next_prb += len;
  }
}

}  // namespace nrs
