// MAC downlink scheduler: splits the PDSCH PRBs of one TTI among the UEs
// with pending data, picks each UE's MCS from link adaptation, and sizes
// allocations to their backlog.  Round-robin and proportional-fair
// policies are provided; the paper's lab gNBs (srsRAN, Amarisoft) default
// to proportional fair with full-buffer iperf traffic behaving like the
// round-robin equal split visible in its Fig. 14.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"
#include "nr/mcs_tables.h"

namespace nrs {

enum class SchedulerPolicy : std::uint8_t {
  kRoundRobin,
  kProportionalFair,
};

const char* to_string(SchedulerPolicy policy);

/// One UE's scheduling input for a TTI.
struct SchedRequest {
  Rnti rnti = kInvalidRnti;
  std::size_t backlog_bytes = 0;
  bool full_buffer = false;
  double snr_db = 20.0;       ///< link-adaptation SNR (CQI + OLLA offset)
  double avg_rate_bps = 1.0;  ///< long-term served rate (PF metric)
};

/// One UE's allocation decision.
struct SchedDecision {
  Rnti rnti = kInvalidRnti;
  unsigned prb_start = 0;
  unsigned prb_len = 0;
  unsigned mcs = 0;
};

/// Workspace for the allocation-free schedule_tti overload (hot-path
/// memory discipline, DESIGN.md): keeps the candidate ordering's capacity
/// across TTIs.
struct SchedScratch {
  std::vector<std::size_t> order;
};

/// Allocate `n_prb` PRBs among `requests` for one TTI.
/// Contiguous (type-1) allocations; UEs with empty backlog get nothing;
/// allocations shrink to the backlog so small flows don't waste PRBs.
/// `n_symbols`/`dmrs_re`/`overhead` size the per-PRB capacity estimate.
std::vector<SchedDecision> schedule_tti(std::span<const SchedRequest> requests,
                                        unsigned n_prb, McsTable table,
                                        SchedulerPolicy policy,
                                        std::uint64_t round_robin_cursor,
                                        unsigned n_symbols = 12,
                                        unsigned dmrs_re = 12,
                                        unsigned overhead = 0);

/// Same, clearing and filling caller-owned `out` (capacity reused across
/// TTIs; allocation-free once warm).
void schedule_tti(std::span<const SchedRequest> requests, unsigned n_prb,
                  McsTable table, SchedulerPolicy policy,
                  std::uint64_t round_robin_cursor, unsigned n_symbols,
                  unsigned dmrs_re, unsigned overhead, SchedScratch& scratch,
                  std::vector<SchedDecision>& out);

}  // namespace nrs
