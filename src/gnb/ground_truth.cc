#include "gnb/ground_truth.h"

#include <stdexcept>

namespace nrs {

const char* to_string(DciKind kind) {
  switch (kind) {
    case DciKind::kSib:
      return "sib";
    case DciKind::kRar:
      return "rar";
    case DciKind::kMsg4:
      return "msg4";
    case DciKind::kData:
      return "data";
    case DciKind::kUplink:
      return "uplink";
  }
  return "?";
}

void GroundTruthLog::begin_slot(std::uint64_t slot, bool has_ssb) {
  if (!slots_.empty() && slots_.back().slot >= slot) {
    throw std::logic_error("GroundTruthLog: slots must be monotone");
  }
  slots_.push_back(SlotTruth{slot, has_ssb, {}});
}

void GroundTruthLog::add_dci(TruthDci dci) {
  if (slots_.empty() || slots_.back().slot != dci.slot) {
    throw std::logic_error("GroundTruthLog: add_dci outside begin_slot");
  }
  slots_.back().dcis.push_back(std::move(dci));
}

std::vector<const TruthDci*> GroundTruthLog::dcis_for(
    Rnti rnti, bool include_uplink) const {
  std::vector<const TruthDci*> out;
  for (const auto& slot : slots_) {
    for (const auto& d : slot.dcis) {
      if (d.rnti == rnti &&
          (include_uplink || is_downlink(d.dci.format))) {
        out.push_back(&d);
      }
    }
  }
  return out;
}

std::uint64_t GroundTruthLog::count(DciKind kind) const {
  std::uint64_t n = 0;
  for (const auto& slot : slots_) {
    for (const auto& d : slot.dcis) {
      n += d.kind == kind;
    }
  }
  return n;
}

std::uint64_t GroundTruthLog::count_downlink_data() const {
  return count(DciKind::kData);
}

std::uint64_t GroundTruthLog::count_uplink() const {
  return count(DciKind::kUplink);
}

namespace {

template <typename Pred>
std::uint64_t sum_tbs(const std::vector<SlotTruth>& slots, Rnti rnti,
                      std::uint64_t slot_begin, std::uint64_t slot_end,
                      Pred pred) {
  std::uint64_t bits = 0;
  for (const auto& slot : slots) {
    if (slot.slot < slot_begin || slot.slot >= slot_end) {
      continue;
    }
    for (const auto& d : slot.dcis) {
      if (d.rnti == rnti && d.kind == DciKind::kData && pred(d)) {
        bits += d.grant.tbs;
      }
    }
  }
  return bits;
}

}  // namespace

std::uint64_t GroundTruthLog::delivered_bits(Rnti rnti,
                                             std::uint64_t slot_begin,
                                             std::uint64_t slot_end) const {
  return sum_tbs(slots_, rnti, slot_begin, slot_end,
                 [](const TruthDci& d) { return d.acked && !d.is_retx; });
}

std::uint64_t GroundTruthLog::scheduled_bits(Rnti rnti,
                                             std::uint64_t slot_begin,
                                             std::uint64_t slot_end) const {
  return sum_tbs(slots_, rnti, slot_begin, slot_end,
                 [](const TruthDci& d) { return !d.is_retx; });
}

}  // namespace nrs
