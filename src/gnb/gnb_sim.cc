#include "gnb/gnb_sim.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nr/mib.h"
#include "nr/pdcch.h"
#include "nr/pdsch.h"
#include "nr/sib1.h"
#include "nr/tbs.h"

namespace nrs {
namespace {

/// Smallest PRB count whose TBS at (mcs, table) carries `bits`.
unsigned prbs_for_bits(unsigned bits, unsigned mcs, McsTable table,
                       const PdschConfig& pdsch, unsigned n_symbols,
                       unsigned n_prb_max) {
  const McsEntry entry = mcs_entry(table, mcs);
  for (unsigned n = 1; n <= n_prb_max; ++n) {
    TbsParams params;
    params.n_prb = n;
    params.n_symbols = n_symbols;
    params.dmrs_re_per_prb = pdsch.dmrs_re_per_prb;
    params.overhead_re = pdsch.xoverhead;
    params.code_rate = entry.code_rate();
    params.qm = entry.qm;
    if (calculate_tbs(params) >= bits) {
      return n;
    }
  }
  return n_prb_max;
}

/// Pick a TDRA row matching the backlog: small payloads get short
/// allocations, keeping REG counts diverse (paper Fig. 8's grants range
/// from a few to several hundred REGs).
std::uint8_t choose_tdra(std::size_t backlog_bytes) {
  if (backlog_bytes < 400) {
    return 3;  // 4 symbols
  }
  if (backlog_bytes < 4000) {
    return 2;  // 7 symbols
  }
  return 0;  // full slot, 12 symbols
}

constexpr unsigned kRvSequence[4] = {0, 2, 3, 1};

}  // namespace

GnbSim::GnbSim(GnbConfig config)
    : config_(std::move(config)), clock_(config_.cell.scs),
      rng_(config_.seed), grid_(config_.cell.n_prb) {
  if (config_.cell.coreset.rb_start + config_.cell.coreset.n_prb >
      config_.cell.n_prb) {
    throw std::invalid_argument("GnbSim: CORESET exceeds the BWP");
  }
  // The RRC Setup handed out in MSG4 must describe how this cell actually
  // schedules, or every UE (and the sniffer) would compute a wrong TBS.
  config_.rrc_setup.mcs_table = config_.cell.pdsch.mcs_table;
  config_.rrc_setup.max_mimo_layers = config_.cell.pdsch.max_mimo_layers;
  config_.rrc_setup.ue_ss = config_.cell.ue_ss;
  used_cce_.resize(config_.cell.coreset.n_cce(), false);
}

unsigned GnbSim::add_ue(UeConfig ue_config) {
  UeContext ctx;
  ctx.id = next_ue_id_++;
  ue_config.id = ctx.id;
  ctx.emulator = std::make_unique<UeEmulator>(std::move(ue_config));
  ctx.stage = RachStage::kIdle;
  ctx.stage_slot = clock_.count();
  ues_.push_back(std::move(ctx));
  return ues_.back().id;
}

void GnbSim::remove_ue(unsigned ue_id) {
  std::erase_if(ues_, [ue_id](const UeContext& c) { return c.id == ue_id; });
}

const UeEmulator* GnbSim::ue(unsigned ue_id) const {
  for (const auto& ctx : ues_) {
    if (ctx.id == ue_id) {
      return ctx.emulator.get();
    }
  }
  return nullptr;
}

UeEmulator* GnbSim::ue(unsigned ue_id) {
  return const_cast<UeEmulator*>(
      static_cast<const GnbSim*>(this)->ue(ue_id));
}

Rnti GnbSim::ue_rnti(unsigned ue_id) const {
  for (const auto& ctx : ues_) {
    if (ctx.id == ue_id) {
      return ctx.stage == RachStage::kConnected ? ctx.rnti : kInvalidRnti;
    }
  }
  return kInvalidRnti;
}

std::vector<Rnti> GnbSim::connected_rntis() const {
  std::vector<Rnti> rntis;
  for (const auto& ctx : ues_) {
    if (ctx.stage == RachStage::kConnected) {
      rntis.push_back(ctx.rnti);
    }
  }
  return rntis;
}

unsigned GnbSim::n_data_symbols() const {
  return tdra_entry(0).n_symbols;
}

bool GnbSim::allocate_pdcch(Rnti rnti, const SearchSpaceConfig& ss,
                            unsigned agg_level, unsigned& cce_start) {
  const auto candidates = pdcch_candidates(config_.cell.coreset, ss,
                                           agg_level, clock_.now(), rnti);
  for (unsigned cce : candidates) {
    bool free = true;
    for (unsigned i = cce; i < cce + agg_level; ++i) {
      if (used_cce_[i]) {
        free = false;
        break;
      }
    }
    if (free) {
      for (unsigned i = cce; i < cce + agg_level; ++i) {
        used_cce_[i] = true;
      }
      cce_start = cce;
      return true;
    }
  }
  ++pdcch_blocked_;
  return false;  // PDCCH blocking: the UE is skipped this TTI
}

void GnbSim::broadcast(bool& has_ssb) {
  const SlotPoint& now = clock_.now();
  const CellConfig& cell = config_.cell;
  has_ssb = false;
  if (now.slot == 0 && now.sfn % cell.ssb_period_frames == 0) {
    Mib mib;
    mib.sfn = static_cast<std::uint16_t>(now.sfn);
    mib.scs_common = cell.scs;
    mib.coreset0_rb_start = static_cast<std::uint8_t>(cell.coreset.rb_start);
    mib.coreset0_n_prb6 = static_cast<std::uint8_t>(cell.coreset.n_prb / 6);
    mib.coreset0_duration = static_cast<std::uint8_t>(cell.coreset.duration);
    const SsbLocation ssb{cell.ssb_prb_start};
    encode_ssb(cell.pci, ssb, mib, now, grid_);
    has_ssb = true;
  }
}

void GnbSim::run_rach(bool allow_tx) {
  const std::uint64_t slot = clock_.count();
  const SlotPoint& now = clock_.now();
  const CellConfig& cell = config_.cell;
  // MSG2/MSG4 need a clean downlink slot; state transitions (MSG1 on the
  // PRACH, MSG3 on the PUSCH) happen regardless.
  const bool dl = allow_tx && cell.tdd.is_downlink(slot);

  for (auto& ctx : ues_) {
    switch (ctx.stage) {
      case RachStage::kIdle:
        if (is_prach_occasion(cell.rach, slot)) {
          ctx.stage = RachStage::kMsg1Sent;
          ctx.stage_slot = slot;
        }
        break;
      case RachStage::kMsg1Sent: {
        if (!dl || slot < ctx.stage_slot + 2) {
          break;
        }
        // MSG2: RAR on PDSCH, scheduled by an RA-RNTI DCI 1_0.
        const Rnti ra_rnti = ra_rnti_for_slot(cell.rach, ctx.stage_slot);
        unsigned cce = 0;
        if (!allocate_pdcch(ra_rnti, cell.common_ss,
                            cell.rach.msg4_agg_level, cce)) {
          break;  // retry next slot (TC-RNTI not consumed)
        }
        ctx.rnti = next_tc_rnti_++;
        if (next_tc_rnti_ >= kLastTcRnti) {
          next_tc_rnti_ = kFirstTcRnti;
        }
        Rar rar;
        rar.tc_rnti = ctx.rnti;
        rar.timing_advance = static_cast<unsigned>(rng_.uniform_int(0, 63));
        rar.msg3_grant = 0xA5;
        const BitVector payload = rar.pack();
        Dci dci;
        dci.format = DciFormat::kDl1_0;
        dci.time_alloc = 2;
        dci.mcs = 2;
        const unsigned n_sym = tdra_entry(dci.time_alloc).n_symbols;
        const unsigned len =
            prbs_for_bits(static_cast<unsigned>(payload.size()), dci.mcs,
                          McsTable::kQam64, cell.pdsch, n_sym, cell.n_prb);
        dci.freq_alloc_riv = riv_encode(prb_cursor_, len, cell.n_prb);
        prb_cursor_ += len;
        encode_pdcch(cell.coreset, {ra_rnti, cell.rach.msg4_agg_level, cce},
                     dci, cell.n_prb, now, grid_);
        const Grant grant = translate_dci(dci, ra_rnti, cell);
        PdschAllocation alloc;
        alloc.rnti = ra_rnti;
        alloc.prb_start = grant.prb_start;
        alloc.prb_len = grant.prb_len;
        alloc.start_symbol = grant.start_symbol;
        alloc.n_symbols = grant.n_symbols;
        alloc.modulation = grant.modulation;
        alloc.n_id = cell.pci;
        payload_scratch_.assign(payload.begin(), payload.end());
        payload_scratch_.resize(grant.tbs, 0);
        encode_pdsch(alloc, now, payload_scratch_, grid_);
        truth_.add_dci(TruthDci{slot, ra_rnti, DciKind::kRar, dci, grant,
                                false, true, cell.rach.msg4_agg_level, cce});
        ctx.stage = RachStage::kMsg2Sent;
        ctx.stage_slot = slot;
        break;
      }
      case RachStage::kMsg2Sent:
        // MSG3 (RRC Setup Request) arrives on the PUSCH; not materialized.
        if (slot >= ctx.stage_slot + 2) {
          ctx.stage = RachStage::kMsg3Received;
          ctx.stage_slot = slot;
        }
        break;
      case RachStage::kMsg3Received: {
        if (!dl || slot < ctx.stage_slot + 2) {
          break;
        }
        // MSG4: RRC Setup on PDSCH, scheduled with the TC-RNTI; after this
        // the TC-RNTI is promoted to the C-RNTI (paper section 3.1.2).
        unsigned cce = 0;
        if (!allocate_pdcch(ctx.rnti, cell.common_ss,
                            cell.rach.msg4_agg_level, cce)) {
          break;
        }
        const BitVector payload = config_.rrc_setup.pack();
        Dci dci;
        dci.format = DciFormat::kDl1_0;
        dci.time_alloc = 2;
        dci.mcs = 2;
        const unsigned n_sym = tdra_entry(dci.time_alloc).n_symbols;
        const unsigned len =
            prbs_for_bits(static_cast<unsigned>(payload.size()), dci.mcs,
                          McsTable::kQam64, cell.pdsch, n_sym, cell.n_prb);
        dci.freq_alloc_riv = riv_encode(prb_cursor_, len, cell.n_prb);
        prb_cursor_ += len;
        encode_pdcch(cell.coreset, {ctx.rnti, cell.rach.msg4_agg_level, cce},
                     dci, cell.n_prb, now, grid_);
        const Grant grant = translate_dci(dci, ctx.rnti, cell);
        PdschAllocation alloc;
        alloc.rnti = ctx.rnti;
        alloc.prb_start = grant.prb_start;
        alloc.prb_len = grant.prb_len;
        alloc.start_symbol = grant.start_symbol;
        alloc.n_symbols = grant.n_symbols;
        alloc.modulation = grant.modulation;
        alloc.n_id = cell.pci;
        payload_scratch_.assign(payload.begin(), payload.end());
        payload_scratch_.resize(grant.tbs, 0);
        encode_pdsch(alloc, now, payload_scratch_, grid_);
        truth_.add_dci(TruthDci{slot, ctx.rnti, DciKind::kMsg4, dci, grant,
                                false, true, cell.rach.msg4_agg_level, cce});
        ctx.stage = RachStage::kConnected;
        ctx.stage_slot = slot;
        ctx.emulator->set_rnti(ctx.rnti);
        break;
      }
      case RachStage::kConnected:
        break;
    }
  }
}

unsigned GnbSim::agg_level_for(unsigned prb_len) {
  // Wider allocations get a higher aggregation level, mirroring how real
  // schedulers protect large grants; small grants use AL1 so many UEs fit
  // into the CORESET's CCEs in one TTI.
  return prb_len >= 24 ? 4u : (prb_len >= 10 ? 2u : 1u);
}

void GnbSim::transmit_dl_grant(UeContext& ue_ctx, DlProcess& process,
                               unsigned harq_id, DciKind kind, unsigned agg,
                               unsigned cce) {
  // The caller has already reserved the PDCCH candidate; this function
  // cannot fail, so HARQ state mutations stay consistent.
  const CellConfig& cell = config_.cell;
  const SlotPoint& now = clock_.now();
  const std::uint64_t slot = clock_.count();

  Dci dci;
  dci.format = config_.rrc_setup.dl_format;
  dci.freq_alloc_riv =
      riv_encode(process.grant.prb_start, process.grant.prb_len, cell.n_prb);
  // Recover the TDRA row from the grant's symbol count.
  for (unsigned row = 0; row < tdra_table_size(); ++row) {
    const TdraEntry e = tdra_entry(static_cast<std::uint8_t>(row));
    if (e.start_symbol == process.grant.start_symbol &&
        e.n_symbols == process.grant.n_symbols) {
      dci.time_alloc = static_cast<std::uint8_t>(row);
      break;
    }
  }
  dci.mcs = static_cast<std::uint8_t>(process.grant.mcs);
  dci.ndi = process.ndi;
  dci.rv = static_cast<std::uint8_t>(
      kRvSequence[std::min(process.tx_count, 3u)]);
  dci.harq_id = static_cast<std::uint8_t>(harq_id);
  encode_pdcch(cell.coreset, {ue_ctx.rnti, agg, cce}, dci, cell.n_prb, now,
               grid_);

  // PDSCH payload content is opaque to the sniffer; zeros keep it cheap
  // (scrambling randomizes the on-air bits anyway).
  PdschAllocation alloc;
  alloc.rnti = ue_ctx.rnti;
  alloc.prb_start = process.grant.prb_start;
  alloc.prb_len = process.grant.prb_len;
  alloc.start_symbol = process.grant.start_symbol;
  alloc.n_symbols = process.grant.n_symbols;
  alloc.modulation = process.grant.modulation;
  alloc.n_id = cell.pci;
  payload_scratch_.assign(process.grant.tbs, 0);
  encode_pdsch(alloc, now, payload_scratch_, grid_);

  const bool is_retx = process.tx_count > 0;
  const bool acked = ue_ctx.emulator->decide_ack(process.grant);
  ++process.tx_count;

  // Outer-loop link adaptation.
  if (acked) {
    ue_ctx.olla_db = std::min(3.0, ue_ctx.olla_db + 0.05);
    ue_ctx.emulator->deliver(slot, process.payload_bytes, process.packets);
    process.active = false;
    process.awaiting_retx = false;
  } else {
    ue_ctx.olla_db = std::max(-6.0, ue_ctx.olla_db - 0.45);
    if (process.tx_count >= config_.max_harq_tx) {
      process.active = false;  // give up; bytes lost
      process.awaiting_retx = false;
    } else {
      process.awaiting_retx = true;
    }
  }

  Grant logged = process.grant;
  logged.ndi = process.ndi;
  logged.rv = dci.rv;
  logged.harq_id = dci.harq_id;
  truth_.add_dci(
      TruthDci{slot, ue_ctx.rnti, kind, dci, logged, is_retx, acked, agg,
               cce});
}

void GnbSim::schedule_downlink() {
  const CellConfig& cell = config_.cell;
  const std::uint64_t slot = clock_.count();
  const unsigned n_prb = cell.n_prb;
  if (prb_cursor_ >= n_prb) {
    return;
  }

  // 1) Retransmissions first: replay the stored grant at a (possibly new)
  //    PRB position.
  for (auto& ctx : ues_) {
    if (ctx.stage != RachStage::kConnected) {
      continue;
    }
    for (unsigned h = 0; h < kMaxHarqProcesses; ++h) {
      DlProcess& p = ctx.dl_harq[h];
      if (p.active && p.awaiting_retx) {
        if (prb_cursor_ + p.grant.prb_len > n_prb) {
          continue;  // no room this TTI
        }
        const unsigned agg = agg_level_for(p.grant.prb_len);
        unsigned cce = 0;
        if (!allocate_pdcch(ctx.rnti, config_.rrc_setup.ue_ss, agg, cce)) {
          continue;  // PDCCH blocked; the retransmission waits a TTI
        }
        p.grant.prb_start = prb_cursor_;
        prb_cursor_ += p.grant.prb_len;
        p.awaiting_retx = false;
        transmit_dl_grant(ctx, p, h, DciKind::kData, agg, cce);
      }
    }
  }
  if (prb_cursor_ >= n_prb) {
    return;
  }

  // 2) New transmissions via the scheduler policy.
  std::vector<SchedRequest>& requests = sched_requests_;
  std::vector<UeContext*>& request_ctx = sched_ctx_;
  requests.clear();
  request_ctx.clear();
  for (auto& ctx : ues_) {
    if (ctx.stage != RachStage::kConnected || !ctx.emulator->dl_traffic()) {
      continue;
    }
    // A UE with all HARQ processes busy cannot take new data.
    bool has_free = false;
    for (const auto& p : ctx.dl_harq) {
      if (!p.active) {
        has_free = true;
        break;
      }
    }
    if (!has_free) {
      continue;
    }
    TrafficSource* traffic = ctx.emulator->dl_traffic();
    if (!traffic->is_full_buffer() && traffic->backlog_bytes() == 0) {
      continue;
    }
    SchedRequest req;
    req.rnti = ctx.rnti;
    req.backlog_bytes = traffic->backlog_bytes();
    req.full_buffer = traffic->is_full_buffer();
    req.snr_db = ctx.emulator->reported_snr_db() + ctx.olla_db;
    req.avg_rate_bps = ctx.avg_rate_bps;
    requests.push_back(req);
    request_ctx.push_back(&ctx);
  }
  if (requests.empty()) {
    return;
  }

  const unsigned data_prbs = n_prb - prb_cursor_;
  schedule_tti(requests, data_prbs, cell.pdsch.mcs_table, config_.policy,
               rr_cursor_++, n_data_symbols(), cell.pdsch.dmrs_re_per_prb,
               cell.pdsch.xoverhead, sched_scratch_, sched_decisions_);
  const std::vector<SchedDecision>& decisions = sched_decisions_;

  for (const auto& d : decisions) {
    // Find the context back (decisions reference RNTIs).
    UeContext* ctx = nullptr;
    for (auto* c : request_ctx) {
      if (c->rnti == d.rnti) {
        ctx = c;
        break;
      }
    }
    if (ctx == nullptr) {
      continue;
    }
    // Pick a free HARQ process.
    unsigned harq_id = kMaxHarqProcesses;
    for (unsigned h = 0; h < kMaxHarqProcesses; ++h) {
      if (!ctx->dl_harq[h].active) {
        harq_id = h;
        break;
      }
    }
    if (harq_id == kMaxHarqProcesses) {
      continue;
    }
    TrafficSource* traffic = ctx->emulator->dl_traffic();
    const std::uint8_t tdra =
        choose_tdra(traffic->is_full_buffer() ? 1u << 20
                                              : traffic->backlog_bytes());
    Dci probe;
    probe.format = config_.rrc_setup.dl_format;
    probe.freq_alloc_riv =
        riv_encode(prb_cursor_ + d.prb_start, d.prb_len, cell.n_prb);
    probe.time_alloc = tdra;
    probe.mcs = static_cast<std::uint8_t>(d.mcs);
    Grant grant = translate_dci(probe, ctx->rnti, cell.n_prb, cell.pdsch,
                                cell.pdsch.mcs_table,
                                cell.pdsch.max_mimo_layers);
    if (grant.tbs == 0) {
      continue;
    }
    const unsigned agg = agg_level_for(grant.prb_len);
    unsigned cce = 0;
    if (!allocate_pdcch(ctx->rnti, config_.rrc_setup.ue_ss, agg, cce)) {
      continue;  // PDCCH blocked; the data stays queued
    }
    const DrainResult drained = traffic->drain(grant.tbs / 8);

    DlProcess& p = ctx->dl_harq[harq_id];
    p.active = true;
    p.ndi ^= 1;  // toggle for new data
    p.awaiting_retx = false;
    p.grant = grant;
    p.payload_bytes = drained.bytes;
    p.packets = drained.packets_completed;
    p.tx_count = 0;
    transmit_dl_grant(*ctx, p, harq_id, DciKind::kData, agg, cce);

    // PF average-rate bookkeeping.
    const double slot_s = slot_duration_s(cell.scs);
    ctx->avg_rate_bps = 0.995 * ctx->avg_rate_bps +
                        0.005 * (static_cast<double>(grant.tbs) / slot_s);
    (void)slot;
  }
}

void GnbSim::schedule_uplink() {
  const CellConfig& cell = config_.cell;
  const std::uint64_t slot = clock_.count();
  const SlotPoint& now = clock_.now();

  // Grant PUSCH resources for the next UL slot, round-robin full-band.
  std::vector<UeContext*>& uplinkers = uplinkers_;
  uplinkers.clear();
  for (auto& ctx : ues_) {
    if (ctx.stage == RachStage::kConnected && ctx.emulator->ul_traffic() &&
        (ctx.emulator->ul_traffic()->is_full_buffer() ||
         ctx.emulator->ul_traffic()->backlog_bytes() > 0)) {
      uplinkers.push_back(&ctx);
    }
  }
  if (uplinkers.empty()) {
    return;
  }
  const unsigned share =
      std::max(1u, cell.n_prb / static_cast<unsigned>(uplinkers.size()));
  unsigned prb = 0;
  for (auto* ctx : uplinkers) {
    if (prb >= cell.n_prb) {
      break;
    }
    // Size the grant to the UE's UL backlog, capped at its share.
    const unsigned ul_mcs = select_mcs_for_snr(
        McsTable::kQam64, ctx->emulator->reported_snr_db() + ctx->olla_db);
    TrafficSource* ul = ctx->emulator->ul_traffic();
    const unsigned want =
        ul->is_full_buffer()
            ? cell.n_prb
            : prbs_for_bits(
                  static_cast<unsigned>(
                      std::min<std::size_t>(ul->backlog_bytes() * 8,
                                            1u << 20)),
                  ul_mcs, McsTable::kQam64, cell.pdsch,
                  tdra_entry(0).n_symbols, cell.n_prb);
    const unsigned len = std::min({want, share, cell.n_prb - prb});
    // Uplink grants ride on AL1 to leave CCEs for the data DCIs.
    unsigned cce = 0;
    if (!allocate_pdcch(ctx->rnti, config_.rrc_setup.ue_ss, 1, cce)) {
      continue;
    }
    Dci dci;
    dci.format = config_.rrc_setup.dl_format == DciFormat::kDl1_1
                     ? DciFormat::kUl0_1
                     : DciFormat::kUl0_0;
    dci.freq_alloc_riv = riv_encode(prb, len, cell.n_prb);
    dci.time_alloc = 0;
    dci.mcs = static_cast<std::uint8_t>(ul_mcs);
    dci.harq_id = static_cast<std::uint8_t>(ctx->ul_harq_cursor);
    dci.ndi = ctx->ul_ndi[ctx->ul_harq_cursor] ^= 1;
    ctx->ul_harq_cursor = (ctx->ul_harq_cursor + 1) % kMaxHarqProcesses;
    prb += len;
    encode_pdcch(cell.coreset, {ctx->rnti, 1, cce}, dci, cell.n_prb, now,
                 grid_);
    Grant grant = translate_dci(dci, ctx->rnti, cell.n_prb, cell.pdsch,
                                McsTable::kQam64, 1);
    ctx->emulator->ul_traffic()->drain(grant.tbs / 8);
    truth_.add_dci(
        TruthDci{slot, ctx->rnti, DciKind::kUplink, dci, grant, false, true,
                 1, cce});
  }
}

const ResourceGrid& GnbSim::step() {
  const std::uint64_t slot = clock_.count();
  const CellConfig& cell = config_.cell;
  const double now_s = clock_.elapsed_s();

  for (auto& ctx : ues_) {
    ctx.emulator->step(slot, now_s);
  }

  grid_.clear();
  std::fill(used_cce_.begin(), used_cce_.end(), false);
  prb_cursor_ = 0;

  bool has_ssb = false;
  const bool dl = cell.tdd.is_downlink(slot);
  const bool special = cell.tdd.is_special(slot);

  if (dl) {
    broadcast(has_ssb);
  }
  truth_.begin_slot(slot, has_ssb);
  run_rach(/*allow_tx=*/dl && !has_ssb);

  if (dl && !has_ssb) {
    // SIB1 periodically in slot 1.
    const SlotPoint& now = clock_.now();
    if (now.slot == 1 && now.sfn % cell.sib1_period_frames == 0) {
      unsigned cce = 0;
      if (allocate_pdcch(kSiRnti, cell.common_ss, cell.rach.msg4_agg_level,
                         cce)) {
        if (sib1_payload_.empty()) {
          sib1_payload_ = Sib1::from_cell(cell).pack();
        }
        const BitVector& payload = sib1_payload_;
        Dci dci;
        dci.format = DciFormat::kDl1_0;
        dci.time_alloc = 2;
        dci.mcs = 2;
        const unsigned n_sym = tdra_entry(dci.time_alloc).n_symbols;
        const unsigned len =
            prbs_for_bits(static_cast<unsigned>(payload.size()), dci.mcs,
                          McsTable::kQam64, cell.pdsch, n_sym, cell.n_prb);
        dci.freq_alloc_riv = riv_encode(prb_cursor_, len, cell.n_prb);
        prb_cursor_ += len;
        encode_pdcch(cell.coreset,
                     {kSiRnti, cell.rach.msg4_agg_level, cce}, dci,
                     cell.n_prb, now, grid_);
        const Grant grant = translate_dci(dci, kSiRnti, cell);
        PdschAllocation alloc;
        alloc.rnti = kSiRnti;
        alloc.prb_start = grant.prb_start;
        alloc.prb_len = grant.prb_len;
        alloc.start_symbol = grant.start_symbol;
        alloc.n_symbols = grant.n_symbols;
        alloc.modulation = grant.modulation;
        alloc.n_id = cell.pci;
        payload_scratch_.assign(payload.begin(), payload.end());
        payload_scratch_.resize(grant.tbs, 0);
        encode_pdsch(alloc, now, payload_scratch_, grid_);
        truth_.add_dci(TruthDci{slot, kSiRnti, DciKind::kSib, dci, grant,
                                false, true, cell.rach.msg4_agg_level, cce});
      }
    }
    schedule_downlink();
  }
  if (dl || special) {
    schedule_uplink();
  }

  clock_.tick();
  return grid_;
}

}  // namespace nrs
