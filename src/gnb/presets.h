// Cell presets mirroring the paper's evaluation networks (section 5.1):
//   [srsRAN/Open5GS]  band n41, TDD, 2524.95 MHz, 30 kHz SCS, 20 MHz
//   [Mosolabs/Aether] band n48, TDD, 3561.60 MHz, 30 kHz SCS, 20 MHz
//   [Amari Callbox]   band n78, TDD, 3489.42 MHz, 30 kHz SCS, 20 MHz
//   [T-Mobile cell 1] band n25, FDD, 1989.85 MHz, 15 kHz SCS, 10 MHz
//   [T-Mobile cell 2] band n71, FDD,  622.85 MHz, 15 kHz SCS, 15 MHz
#pragma once

#include "nr/cell_config.h"

namespace nrs {

CellConfig srsran_cell();
CellConfig mosolab_cell();
CellConfig amarisoft_cell();
CellConfig tmobile_cell1();
CellConfig tmobile_cell2();

}  // namespace nrs
