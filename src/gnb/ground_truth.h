// Ground-truth logging: the role srsRAN's gNB log plays in the paper's
// evaluation (section 5.2.1: "collect detailed physical layer ground truth
// for all UEs from srsRAN's log, in terms of TTI index, DCI content and
// downlink grants").  Every DCI the simulated gNB transmits is recorded
// here; the analysis module matches NR-Scope's decodes against it.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "nr/dci.h"
#include "nr/grant.h"

namespace nrs {

enum class DciKind : std::uint8_t {
  kSib,     ///< SI-RNTI scheduling of SIB1
  kRar,     ///< RA-RNTI scheduling of MSG2
  kMsg4,    ///< TC-RNTI scheduling of the RRC Setup
  kData,    ///< C-RNTI downlink data
  kUplink,  ///< C-RNTI uplink grant
};

const char* to_string(DciKind kind);

struct TruthDci {
  std::uint64_t slot = 0;
  Rnti rnti = kInvalidRnti;
  DciKind kind = DciKind::kData;
  Dci dci;
  Grant grant;
  bool is_retx = false;
  bool acked = true;      ///< UE decode outcome (DL data only)
  unsigned agg_level = 1;
  unsigned cce_start = 0;
};

struct SlotTruth {
  std::uint64_t slot = 0;
  bool has_ssb = false;
  std::vector<TruthDci> dcis;

  /// REGs (PRB x symbol) granted in this TTI, the paper's Fig. 8 unit.
  [[nodiscard]] unsigned total_regs(bool downlink_only = true) const {
    unsigned regs = 0;
    for (const auto& d : dcis) {
      if (!downlink_only || is_downlink(d.dci.format)) {
        regs += d.grant.n_regs();
      }
    }
    return regs;
  }
};

class GroundTruthLog {
 public:
  void begin_slot(std::uint64_t slot, bool has_ssb);
  void add_dci(TruthDci dci);

  [[nodiscard]] const std::vector<SlotTruth>& slots() const { return slots_; }

  /// All DCIs for one RNTI (downlink and/or uplink data).
  [[nodiscard]] std::vector<const TruthDci*> dcis_for(
      Rnti rnti, bool include_uplink = true) const;

  /// Totals by kind / direction across the whole log.
  [[nodiscard]] std::uint64_t count(DciKind kind) const;
  [[nodiscard]] std::uint64_t count_downlink_data() const;
  [[nodiscard]] std::uint64_t count_uplink() const;

  /// Sum of delivered (ACKed, first-transmission) TBS bits for one RNTI in
  /// [slot_begin, slot_end).
  [[nodiscard]] std::uint64_t delivered_bits(Rnti rnti,
                                             std::uint64_t slot_begin,
                                             std::uint64_t slot_end) const;

  /// Sum of scheduled first-transmission TBS bits (what a gNB log reports
  /// regardless of HARQ outcome) — the paper's Amarisoft ground truth.
  [[nodiscard]] std::uint64_t scheduled_bits(Rnti rnti,
                                             std::uint64_t slot_begin,
                                             std::uint64_t slot_end) const;

 private:
  std::vector<SlotTruth> slots_;
};

}  // namespace nrs
