#include "gnb/presets.h"

namespace nrs {
namespace {

/// Shared plumbing: CORESET sized to the BWP, common/UE search spaces.
CellConfig base_cell(unsigned n_prb, Scs scs, std::uint16_t pci) {
  CellConfig cell;
  cell.pci = pci;
  cell.scs = scs;
  cell.n_prb = n_prb;
  cell.ssb_prb_start = 0;
  cell.coreset.id = 1;
  // CORESET spans the largest multiple of 6 PRBs that fits.
  cell.coreset.n_prb = (n_prb / 6) * 6;
  cell.coreset.rb_start = 0;
  cell.coreset.duration = 2;
  cell.coreset.interleaved = true;
  cell.coreset.reg_bundle_size = 6;
  cell.coreset.interleaver_rows = 2;
  cell.coreset.shift = pci;
  cell.coreset.n_id = pci;
  cell.common_ss =
      SearchSpaceConfig{/*ue_specific=*/false, {4, 8}, /*candidates=*/2};
  cell.ue_ss =
      SearchSpaceConfig{/*ue_specific=*/true, {1, 2, 4}, /*candidates=*/2};
  return cell;
}

}  // namespace

CellConfig srsran_cell() {
  CellConfig cell = base_cell(51, Scs::kHz30, 1);
  cell.name = "srsRAN-n41";
  cell.carrier_freq_hz = 2524.95e6;
  cell.tdd = TddPattern{5, 3, 1};  // DDDSU
  cell.pdsch.mcs_table = McsTable::kQam64;
  return cell;
}

CellConfig mosolab_cell() {
  CellConfig cell = base_cell(51, Scs::kHz30, 137);
  cell.name = "Mosolab-n48";
  cell.carrier_freq_hz = 3561.6e6;
  cell.tdd = TddPattern{5, 3, 1};
  cell.pdsch.mcs_table = McsTable::kQam64;
  return cell;
}

CellConfig amarisoft_cell() {
  CellConfig cell = base_cell(51, Scs::kHz30, 500);
  cell.name = "Amarisoft-n78";
  cell.carrier_freq_hz = 3489.42e6;
  cell.tdd = TddPattern{5, 3, 1};
  cell.pdsch.mcs_table = McsTable::kQam256;
  cell.pdsch.max_mimo_layers = 1;
  return cell;
}

CellConfig tmobile_cell1() {
  // 10 MHz @ 15 kHz -> 52 PRB, FDD, BWP 1 in the paper.
  CellConfig cell = base_cell(52, Scs::kHz15, 310);
  cell.name = "T-Mobile-n25";
  cell.carrier_freq_hz = 1989.85e6;
  cell.tdd = TddPattern{1, 1, 0};  // FDD: every slot downlink
  cell.pdsch.mcs_table = McsTable::kQam256;
  return cell;
}

CellConfig tmobile_cell2() {
  // 15 MHz @ 15 kHz -> 79 PRB; CORESET width rounds down to 78.
  CellConfig cell = base_cell(79, Scs::kHz15, 71);
  cell.name = "T-Mobile-n71";
  cell.carrier_freq_hz = 622.85e6;
  cell.tdd = TddPattern{1, 1, 0};
  cell.pdsch.mcs_table = McsTable::kQam256;
  return cell;
}

}  // namespace nrs
