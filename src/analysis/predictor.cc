#include "analysis/predictor.h"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace nrs {

const char* to_string(PredictorModel model) {
  switch (model) {
    case PredictorModel::kRidge: return "ridge";
    case PredictorModel::kRidgeGbt: return "ridge_gbt";
  }
  return "?";
}

std::optional<std::string> PredictorWeights::validate() const {
  if (format_version != kFormatVersion) {
    return "unsupported weights format version " +
           std::to_string(format_version);
  }
  if (horizon_slots == 0) {
    return "horizon_slots must be positive";
  }
  for (std::size_t i = 0; i < kPredictionFeatureCount; ++i) {
    if (!(scale[i] > 0.0) || !std::isfinite(scale[i])) {
      return std::string("scale must be finite and positive (feature ") +
             feature_name(i) + ")";
    }
    if (!std::isfinite(mean[i]) || !std::isfinite(weights[i])) {
      return std::string("non-finite mean/weight (feature ") +
             feature_name(i) + ")";
    }
  }
  if (!std::isfinite(bias)) {
    return "non-finite bias";
  }
  if (model == PredictorModel::kRidge && !stumps.empty()) {
    return "ridge model must not carry stumps";
  }
  for (const PredictorStump& s : stumps) {
    if (s.feature >= kPredictionFeatureCount) {
      return "stump references feature " + std::to_string(s.feature) +
             " out of range";
    }
    if (!std::isfinite(s.threshold) || !std::isfinite(s.left) ||
        !std::isfinite(s.right)) {
      return "non-finite stump parameters";
    }
  }
  return std::nullopt;
}

bool PredictorWeights::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << std::setprecision(17);
  out << "nrs-predictor-weights v" << format_version << "\n";
  out << "model " << to_string(model) << "\n";
  out << "model_version " << model_version << "\n";
  out << "horizon_slots " << horizon_slots << "\n";
  out << "features " << kPredictionFeatureCount << "\n";
  for (std::size_t i = 0; i < kPredictionFeatureCount; ++i) {
    out << "feature " << i << " " << feature_name(i) << " " << mean[i] << " "
        << scale[i] << " " << weights[i] << "\n";
  }
  out << "bias " << bias << "\n";
  out << "stumps " << stumps.size() << "\n";
  for (const PredictorStump& s : stumps) {
    out << "stump " << s.feature << " " << s.threshold << " " << s.left
        << " " << s.right << "\n";
  }
  out << "end\n";
  return static_cast<bool>(out);
}

std::optional<PredictorWeights> PredictorWeights::load(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return std::nullopt;
  }
  PredictorWeights w;
  std::string tag;
  std::string version_tag;
  if (!(in >> tag >> version_tag) || tag != "nrs-predictor-weights" ||
      version_tag != "v1") {
    return std::nullopt;
  }
  std::string model_name;
  if (!(in >> tag >> model_name) || tag != "model") {
    return std::nullopt;
  }
  if (model_name == "ridge") {
    w.model = PredictorModel::kRidge;
  } else if (model_name == "ridge_gbt") {
    w.model = PredictorModel::kRidgeGbt;
  } else {
    return std::nullopt;
  }
  std::size_t n_features = 0;
  if (!(in >> tag >> w.model_version) || tag != "model_version" ||
      !(in >> tag >> w.horizon_slots) || tag != "horizon_slots" ||
      !(in >> tag >> n_features) || tag != "features" ||
      n_features != kPredictionFeatureCount) {
    return std::nullopt;
  }
  for (std::size_t i = 0; i < kPredictionFeatureCount; ++i) {
    std::size_t index = 0;
    std::string name;  // informational; layout is fixed by the version
    if (!(in >> tag >> index >> name >> w.mean[i] >> w.scale[i] >>
          w.weights[i]) ||
        tag != "feature" || index != i) {
      return std::nullopt;
    }
  }
  std::size_t n_stumps = 0;
  if (!(in >> tag >> w.bias) || tag != "bias" ||
      !(in >> tag >> n_stumps) || tag != "stumps") {
    return std::nullopt;
  }
  w.stumps.resize(n_stumps);
  for (PredictorStump& s : w.stumps) {
    if (!(in >> tag >> s.feature >> s.threshold >> s.left >> s.right) ||
        tag != "stump") {
      return std::nullopt;
    }
  }
  if (!(in >> tag) || tag != "end") {
    return std::nullopt;
  }
  if (w.validate()) {
    return std::nullopt;
  }
  return w;
}

PredictorWeights PredictorWeights::baseline(std::uint64_t horizon_slots) {
  PredictorWeights w;
  w.model = PredictorModel::kRidge;
  w.model_version = 0;
  w.horizon_slots = horizon_slots;
  w.mean.fill(0.0);
  w.scale.fill(1.0);
  w.weights.fill(0.0);
  w.weights[5] = 1.0;  // dl_mbps_mid: persistence forecast
  w.bias = 0.0;
  return w;
}

ThroughputPredictor::ThroughputPredictor(PredictorWeights weights)
    : weights_(std::move(weights)) {
  if (auto err = weights_.validate()) {
    throw std::invalid_argument("PredictorWeights: " + *err);
  }
}

double ThroughputPredictor::predict_mbps(const FeatureVector& x) const {
  double y = weights_.bias;
  for (std::size_t i = 0; i < kPredictionFeatureCount; ++i) {
    y += weights_.weights[i] * (x[i] - weights_.mean[i]) / weights_.scale[i];
  }
  for (const PredictorStump& s : weights_.stumps) {
    const double z =
        (x[s.feature] - weights_.mean[s.feature]) / weights_.scale[s.feature];
    y += z <= s.threshold ? s.left : s.right;
  }
  return y > 0.0 ? y : 0.0;
}

}  // namespace nrs
