// Evaluation machinery: match NR-Scope's decoded DCIs against the gNB's
// ground-truth log "based on the timestamp and the TTI index" (paper
// section 5.2.1) and compute the metrics of Figs. 7-9: DCI miss rates,
// REG-count errors per TTI, and throughput estimation errors.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/stats.h"
#include "gnb/ground_truth.h"
#include "nrscope/telemetry.h"

namespace nrs {

/// Per-direction DCI miss-rate result (paper Fig. 7).
struct MissRateReport {
  std::uint64_t dl_truth = 0;
  std::uint64_t dl_matched = 0;
  std::uint64_t ul_truth = 0;
  std::uint64_t ul_matched = 0;
  std::uint64_t false_positives = 0;  ///< sniffer DCIs with no truth match

  [[nodiscard]] double dl_miss_rate() const {
    return dl_truth == 0 ? 0.0
                         : 1.0 - static_cast<double>(dl_matched) /
                                     static_cast<double>(dl_truth);
  }
  [[nodiscard]] double ul_miss_rate() const {
    return ul_truth == 0 ? 0.0
                         : 1.0 - static_cast<double>(ul_matched) /
                                     static_cast<double>(ul_truth);
  }
};

/// Match decoded DCIs to the truth log by (slot, rnti, cce).  Only data
/// and uplink DCIs of connected UEs are counted (broadcast/RACH DCIs are
/// bookkeeping, not telemetry).
MissRateReport compute_miss_rate(const GroundTruthLog& truth,
                                 const std::vector<DecodedDci>& decoded,
                                 std::uint64_t from_slot = 0);

/// Per-TTI REG-count error (paper Fig. 8): | truth REGs - decoded REGs |
/// over every TTI in the observation window.
SampleSet compute_reg_errors(const GroundTruthLog& truth,
                             const std::vector<DecodedDci>& decoded,
                             std::uint64_t from_slot, std::uint64_t to_slot);

/// Windowed throughput comparison (paper Fig. 9): for each sample point,
/// | sniffer-estimated rate - ground-truth rate | in bits/second.
/// `truth_rates` / `estimated_rates` are parallel series sampled at the
/// same instants.
SampleSet throughput_errors(const std::vector<double>& truth_bps,
                            const std::vector<double>& estimated_bps);

}  // namespace nrs
