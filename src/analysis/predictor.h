// In-process throughput predictor: a ridge-regression linear model over
// the FeatureVector, optionally refined by gradient-boosted decision
// stumps fit on the residuals.  Weights are produced offline by
// tools/train_predictor against simulator ground truth and shipped as a
// small versioned text file; inference is a dot product plus at most a
// few dozen threshold compares — allocation-free and well under a
// microsecond, so it runs inline on the sniffer slot path.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/features.h"
#include "common/timing.h"

namespace nrs {

enum class PredictorModel : std::uint8_t {
  kRidge = 0,     ///< standardized linear model only
  kRidgeGbt = 1,  ///< linear model + boosted stumps on the residual
};

const char* to_string(PredictorModel model);

/// One boosted stump: adds `left` to the prediction when the
/// standardized feature is <= threshold, else `right`.
struct PredictorStump {
  std::uint16_t feature = 0;
  double threshold = 0.0;
  double left = 0.0;
  double right = 0.0;
  [[nodiscard]] bool operator==(const PredictorStump&) const = default;
};

/// The full trained model: standardization (mean/scale per feature),
/// linear weights + bias in Mbps, optional stumps, and the horizon the
/// target was computed over.  `model_version` is a monotonically bumped
/// stamp carried on the kPrediction wire frame so consumers can tell
/// which training produced a number.
struct PredictorWeights {
  static constexpr std::uint32_t kFormatVersion = 1;

  std::uint32_t format_version = kFormatVersion;
  std::uint32_t model_version = 0;
  PredictorModel model = PredictorModel::kRidge;
  std::uint64_t horizon_slots = 200;
  FeatureVector mean{};
  FeatureVector scale{};  ///< every entry must be > 0
  FeatureVector weights{};
  double bias = 0.0;
  std::vector<PredictorStump> stumps;

  [[nodiscard]] bool operator==(const PredictorWeights&) const = default;

  /// Error message when the weights are unusable, nullopt when fine.
  [[nodiscard]] std::optional<std::string> validate() const;

  /// Write/read the versioned text format ("nrs-predictor-weights v1",
  /// see DESIGN.md).  load() returns nullopt on I/O error, a bad header,
  /// a feature-count mismatch, or weights that fail validate().
  [[nodiscard]] bool save(const std::string& path) const;
  static std::optional<PredictorWeights> load(const std::string& path);

  /// Untrained fallback: persistence — predict the mid-window throughput
  /// forward over `horizon_slots`.  model_version 0 marks it on the wire.
  static PredictorWeights baseline(std::uint64_t horizon_slots);
};

class ThroughputPredictor {
 public:
  /// Throws std::invalid_argument when `weights.validate()` fails.
  explicit ThroughputPredictor(PredictorWeights weights);

  /// Forecast downlink throughput in Mbps over the weights' horizon.
  /// Allocation-free; clamped to >= 0.
  [[nodiscard]] double predict_mbps(const FeatureVector& x) const;

  [[nodiscard]] const PredictorWeights& weights() const { return weights_; }

 private:
  PredictorWeights weights_;
};

}  // namespace nrs
