#include "analysis/training.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nrs {

namespace {

constexpr std::size_t kF = kPredictionFeatureCount;

/// Solve A x = b for symmetric positive-definite A (the ridge normal
/// matrix) by Gaussian elimination with partial pivoting.  A is
/// (kF+1)^2 row-major with the bias as the last column/row.
std::vector<double> solve_linear(std::vector<double> a,
                                 std::vector<double> b) {
  const std::size_t n = b.size();
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row) {
      if (std::fabs(a[row * n + col]) > std::fabs(a[pivot * n + col])) {
        pivot = row;
      }
    }
    if (std::fabs(a[pivot * n + col]) < 1e-12) {
      continue;  // degenerate column (constant feature); weight stays 0
    }
    if (pivot != col) {
      for (std::size_t k = 0; k < n; ++k) {
        std::swap(a[col * n + k], a[pivot * n + k]);
      }
      std::swap(b[col], b[pivot]);
    }
    const double inv = 1.0 / a[col * n + col];
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = a[row * n + col] * inv;
      if (factor == 0.0) {
        continue;
      }
      for (std::size_t k = col; k < n; ++k) {
        a[row * n + k] -= factor * a[col * n + k];
      }
      b[row] -= factor * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t k = i + 1; k < n; ++k) {
      acc -= a[i * n + k] * x[k];
    }
    x[i] = std::fabs(a[i * n + i]) < 1e-12 ? 0.0 : acc / a[i * n + i];
  }
  return x;
}

}  // namespace

PredictorWeights train_predictor(const TrainingSet& data,
                                 const TrainOptions& options,
                                 std::uint64_t horizon_slots,
                                 std::uint32_t model_version) {
  if (data.size() == 0 || data.x.size() != data.y_mbps.size()) {
    throw std::invalid_argument(
        "train_predictor: empty or inconsistent training set");
  }
  const std::size_t n = data.size();
  const double inv_n = 1.0 / static_cast<double>(n);

  PredictorWeights w;
  w.model = options.stump_rounds > 0 ? PredictorModel::kRidgeGbt
                                     : PredictorModel::kRidge;
  w.model_version = model_version;
  w.horizon_slots = horizon_slots;

  // Standardization: per-feature mean and std (floored so constant
  // features stay harmless instead of dividing by zero).
  for (std::size_t j = 0; j < kF; ++j) {
    double mean = 0.0;
    for (const FeatureVector& x : data.x) {
      mean += x[j];
    }
    mean *= inv_n;
    double var = 0.0;
    for (const FeatureVector& x : data.x) {
      const double d = x[j] - mean;
      var += d * d;
    }
    var *= inv_n;
    w.mean[j] = mean;
    w.scale[j] = var > 1e-12 ? std::sqrt(var) : 1.0;
  }

  // Standardized design matrix folded straight into the (kF+1)^2 normal
  // matrix: A = Z^T Z + lambda I (bias unpenalized), b = Z^T y.
  const std::size_t dim = kF + 1;
  std::vector<double> a(dim * dim, 0.0);
  std::vector<double> b(dim, 0.0);
  std::vector<double> z(kF, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < kF; ++j) {
      z[j] = (data.x[i][j] - w.mean[j]) / w.scale[j];
    }
    for (std::size_t r = 0; r < kF; ++r) {
      for (std::size_t c = r; c < kF; ++c) {
        a[r * dim + c] += z[r] * z[c];
      }
      a[r * dim + kF] += z[r];  // bias column
      b[r] += z[r] * data.y_mbps[i];
    }
    b[kF] += data.y_mbps[i];
  }
  a[kF * dim + kF] = static_cast<double>(n);
  for (std::size_t r = 0; r < kF; ++r) {
    a[r * dim + r] += options.ridge_lambda * static_cast<double>(n);
    for (std::size_t c = 0; c < r; ++c) {
      a[r * dim + c] = a[c * dim + r];  // mirror the upper triangle
    }
    a[kF * dim + r] = a[r * dim + kF];
  }
  const std::vector<double> solution = solve_linear(std::move(a),
                                                    std::move(b));
  for (std::size_t j = 0; j < kF; ++j) {
    w.weights[j] = solution[j];
  }
  w.bias = solution[kF];

  if (options.stump_rounds == 0) {
    return w;
  }

  // Gradient boosting on the residual with depth-1 trees: each round
  // greedily picks the (feature, threshold) split minimizing squared
  // residual, then shrinks the leaf values by the learning rate.
  std::vector<double> residual(n, 0.0);
  {
    const ThroughputPredictor linear{[&] {
      PredictorWeights base = w;
      base.model = PredictorModel::kRidge;
      base.stumps.clear();
      return base;
    }()};
    for (std::size_t i = 0; i < n; ++i) {
      residual[i] = data.y_mbps[i] - linear.predict_mbps(data.x[i]);
    }
  }
  std::vector<double> sorted(n, 0.0);
  for (unsigned round = 0; round < options.stump_rounds; ++round) {
    double best_gain = 0.0;
    PredictorStump best;
    bool found = false;
    for (std::size_t j = 0; j < kF; ++j) {
      for (std::size_t i = 0; i < n; ++i) {
        sorted[i] = (data.x[i][j] - w.mean[j]) / w.scale[j];
      }
      std::sort(sorted.begin(), sorted.end());
      const unsigned n_thresholds =
          std::max(1u, options.thresholds_per_feature);
      for (unsigned t = 1; t <= n_thresholds; ++t) {
        const std::size_t q =
            std::min(n - 1, t * n / (n_thresholds + 1));
        const double threshold = sorted[q];
        double sum_l = 0.0;
        double sum_r = 0.0;
        std::size_t n_l = 0;
        for (std::size_t i = 0; i < n; ++i) {
          const double zi = (data.x[i][j] - w.mean[j]) / w.scale[j];
          if (zi <= threshold) {
            sum_l += residual[i];
            ++n_l;
          } else {
            sum_r += residual[i];
          }
        }
        const std::size_t n_r = n - n_l;
        if (n_l == 0 || n_r == 0) {
          continue;
        }
        const double gain =
            sum_l * sum_l / static_cast<double>(n_l) +
            sum_r * sum_r / static_cast<double>(n_r);
        if (gain > best_gain) {
          best_gain = gain;
          best.feature = static_cast<std::uint16_t>(j);
          best.threshold = threshold;
          best.left =
              options.learning_rate * sum_l / static_cast<double>(n_l);
          best.right =
              options.learning_rate * sum_r / static_cast<double>(n_r);
          found = true;
        }
      }
    }
    if (!found) {
      break;
    }
    w.stumps.push_back(best);
    for (std::size_t i = 0; i < n; ++i) {
      const double zi =
          (data.x[i][best.feature] - w.mean[best.feature]) /
          w.scale[best.feature];
      residual[i] -= zi <= best.threshold ? best.left : best.right;
    }
  }
  if (w.stumps.empty()) {
    w.model = PredictorModel::kRidge;
  }
  return w;
}

PredictionEval evaluate_predictor(const ThroughputPredictor& predictor,
                                  const TrainingSet& data) {
  PredictionEval eval;
  if (data.size() == 0) {
    return eval;
  }
  double abs_sum = 0.0;
  double actual_sum = 0.0;
  std::uint64_t within = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double predicted = predictor.predict_mbps(data.x[i]);
    const double actual = data.y_mbps[i];
    const double err = std::fabs(predicted - actual);
    abs_sum += err;
    actual_sum += actual;
    if (err <= std::max(0.2 * actual, 0.25)) {
      ++within;
    }
  }
  eval.n = data.size();
  const double inv_n = 1.0 / static_cast<double>(data.size());
  eval.mae_mbps = abs_sum * inv_n;
  eval.within20_rate = static_cast<double>(within) * inv_n;
  eval.mean_actual_mbps = actual_sum * inv_n;
  return eval;
}

}  // namespace nrs
