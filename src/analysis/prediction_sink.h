// SlotSink that runs the online predictor on the sniffer slot path: every
// `period_slots` it reads each tracked UE's FeatureVector, forecasts its
// downlink throughput over the model horizon, and scores earlier
// forecasts whose horizon just matured against the realized byte counts.
// Output goes three ways — analysis.* metrics, an accumulated
// PredictionEval-style running score (accessors below, what the bench
// tabulates), and an optional emit callback handed a reused PredictionSet
// buffer for the kPrediction wire frame.
//
// Hot-path discipline: after the feature extractor's per-UE warm-up and
// one reserve of the pending ring / emit buffer, on_slot() allocates
// nothing.  Forecasts made while the engine is blind or degraded
// (SlotResult::degraded, kResync) are still produced — applications keep
// getting numbers across a resync — but carry the degraded flag so
// consumers and the accuracy accounting can separate them.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "analysis/features.h"
#include "analysis/predictor.h"
#include "common/metrics.h"
#include "net/wire.h"
#include "nrscope/slot_sink.h"

namespace nrs {

struct PredictionSinkConfig {
  std::uint32_t cell_index = 0;
  FeatureConfig features;
  /// Forecast every this many slots (40 slots = 20 ms at 30 kHz SCS).
  std::uint64_t period_slots = 40;
  /// Skip forecasting until the short window has filled once.
  std::uint64_t warmup_slots = 0;

  [[nodiscard]] std::optional<std::string> validate() const;
};

class PredictionSink : public SlotSink {
 public:
  /// Called (on the collector thread) with the freshly filled set each
  /// emit; the reference is only valid during the call.
  using Emitter = std::function<void(const PredictionSet&)>;

  /// Throws std::invalid_argument on invalid config.  `registry`
  /// (optional) receives the analysis.* metrics; `emitter` (optional)
  /// receives the per-period PredictionSet.
  PredictionSink(std::shared_ptr<const ThroughputPredictor> predictor,
                 const PredictionSinkConfig& config,
                 MetricsRegistry* registry = nullptr,
                 Emitter emitter = nullptr);

  void on_slot(const SlotResult& result) override;

  // Running totals (single collector thread writes; read after the run
  // or between slots).
  [[nodiscard]] std::uint64_t predictions_made() const { return made_; }
  [[nodiscard]] std::uint64_t predictions_matured() const {
    return matured_;
  }
  [[nodiscard]] std::uint64_t predictions_dropped() const {
    return dropped_;
  }
  [[nodiscard]] std::uint64_t degraded_predictions() const {
    return degraded_;
  }
  /// MAE over matured forecasts, Mbps (0 when none matured yet).
  [[nodiscard]] double mae_mbps() const;
  /// Fraction of matured forecasts within max(20% of actual, 0.25 Mbps).
  [[nodiscard]] double within20_rate() const;
  /// Same pair restricted to forecasts made while degraded/blind.
  [[nodiscard]] double degraded_mae_mbps() const;
  /// Total nanoseconds spent inside predict_mbps (inference only).
  [[nodiscard]] std::uint64_t inference_ns() const { return infer_ns_; }

  [[nodiscard]] const FeatureExtractor& extractor() const {
    return extractor_;
  }
  [[nodiscard]] const ThroughputPredictor& predictor() const {
    return *predictor_;
  }

 private:
  struct PendingForecast {
    Rnti rnti = 0;
    std::size_t ue_index = 0;
    std::uint64_t generation = 0;  ///< extractor generation at make time
    std::uint64_t made_slot = 0;
    std::uint64_t bits_at_make = 0;
    double predicted_mbps = 0.0;
    bool degraded = false;
  };

  void mature_pending(std::uint64_t now);
  void forecast(const SlotResult& result, std::uint64_t now);

  std::shared_ptr<const ThroughputPredictor> predictor_;
  PredictionSinkConfig config_;
  Emitter emitter_;
  FeatureExtractor extractor_;
  std::uint64_t horizon_slots_ = 0;
  double horizon_s_ = 0.0;

  // Fixed-capacity FIFO of outstanding forecasts, ordered by made_slot.
  std::vector<PendingForecast> pending_;
  std::size_t pending_head_ = 0;
  std::size_t pending_count_ = 0;

  PredictionSet set_;       ///< reused emit buffer
  FeatureVector scratch_{};  ///< reused feature read buffer

  std::uint64_t made_ = 0;
  std::uint64_t matured_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t degraded_ = 0;
  std::uint64_t degraded_matured_ = 0;
  double abs_err_sum_mbps_ = 0.0;
  double degraded_abs_err_sum_mbps_ = 0.0;
  std::uint64_t within20_ = 0;
  std::uint64_t infer_ns_ = 0;

  Counter* m_made_ = nullptr;
  Counter* m_matured_ = nullptr;
  Counter* m_dropped_ = nullptr;
  Counter* m_degraded_ = nullptr;
  Counter* m_within20_ = nullptr;
  Histogram* m_abs_err_ = nullptr;
};

}  // namespace nrs
