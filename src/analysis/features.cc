#include "analysis/features.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nr/dci.h"
#include "nr/rach.h"

namespace nrs {

namespace {

constexpr std::array<const char*, kPredictionFeatureCount> kFeatureNames = {
    "dl_mbps_short",     "mcs_mean_short", "prb_rate_short",
    "retx_rate_short",   "dci_rate_short", "dl_mbps_mid",
    "mcs_mean_mid",      "prb_rate_mid",   "retx_rate_mid",
    "dci_rate_mid",      "dl_mbps_long",   "mcs_mean_long",
    "prb_rate_long",     "retx_rate_long", "dci_rate_long",
    "spare_rate_mid",    "prb_share_mid",  "dci_interarrival_mid",
    "slots_since_dci",   "blind_frac_short",
};

}  // namespace

const char* feature_name(std::size_t i) {
  return i < kFeatureNames.size() ? kFeatureNames[i] : "?";
}

std::optional<std::string> FeatureConfig::validate() const {
  if (n_prb == 0) {
    return "n_prb must be positive";
  }
  if (max_ues == 0) {
    return "max_ues must be positive";
  }
  if (!(short_window_s > 0.0)) {
    return "short_window_s must be positive";
  }
  if (!(mid_window_s >= short_window_s)) {
    return "mid_window_s must be >= short_window_s";
  }
  if (!(long_window_s >= mid_window_s)) {
    return "long_window_s must be >= mid_window_s";
  }
  return std::nullopt;
}

FeatureExtractor::FeatureExtractor(const FeatureConfig& config)
    : config_(config) {
  if (auto err = config.validate()) {
    throw std::invalid_argument("FeatureConfig: " + *err);
  }
  slot_s_ = slot_duration_s(config_.scs);
  const auto to_slots = [&](double seconds) {
    return std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::llround(seconds / slot_s_)));
  };
  windows_ = {to_slots(config_.short_window_s), to_slots(config_.mid_window_s),
              to_slots(config_.long_window_s)};
  ues_.reserve(config_.max_ues);
  staged_.reserve(config_.max_ues);
  cell_ring_.assign(windows_[2], CellSample{});
}

std::size_t FeatureExtractor::find(Rnti rnti) const {
  for (std::size_t i = 0; i < ues_.size(); ++i) {
    if (ues_[i].rnti == rnti) {
      return i;
    }
  }
  return npos;
}

FeatureExtractor::UeState* FeatureExtractor::ue_slot(Rnti rnti) {
  const std::size_t i = find(rnti);
  if (i != npos) {
    return &ues_[i];
  }
  if (ues_.size() < config_.max_ues) {
    // Warm-up path: first DCI from this RNTI allocates its ring once.
    UeState ue;
    ue.rnti = rnti;
    ue.generation = ++generation_;
    ue.last_dci_slot = slot_;
    ue.ring.assign(windows_[2], SlotSample{});
    ues_.push_back(std::move(ue));
    staged_.push_back(SlotSample{});
    return &ues_.back();
  }
  // Table full: evict the UE silent the longest and reuse its ring.
  std::size_t victim = 0;
  for (std::size_t j = 1; j < ues_.size(); ++j) {
    if (ues_[j].last_dci_slot < ues_[victim].last_dci_slot) {
      victim = j;
    }
  }
  UeState& ue = ues_[victim];
  ue.rnti = rnti;
  ue.generation = ++generation_;
  ue.last_dci_slot = slot_;
  ue.dl_bits_total = 0;
  std::fill(ue.ring.begin(), ue.ring.end(), SlotSample{});
  ue.sums = {};
  staged_[victim] = SlotSample{};
  ++evictions_;
  return &ue;
}

void FeatureExtractor::roll_ue(UeState& ue, const SlotSample& sample) {
  // Subtract the sample leaving each window *before* overwriting: for the
  // long window the departing slot is exactly the ring position being
  // rewritten this slot.
  for (std::size_t k = 0; k < 3; ++k) {
    if (slot_ < windows_[k]) {
      continue;
    }
    const SlotSample& out = ue.ring[(slot_ - windows_[k]) % windows_[2]];
    WindowSums& s = ue.sums[k];
    s.bits -= out.bits;
    s.prbs -= out.prbs;
    s.mcs_sum -= out.mcs_sum;
    s.dcis -= out.dcis;
    s.retx -= out.retx;
  }
  ue.ring[slot_ % windows_[2]] = sample;
  for (WindowSums& s : ue.sums) {
    s.bits += sample.bits;
    s.prbs += sample.prbs;
    s.mcs_sum += sample.mcs_sum;
    s.dcis += sample.dcis;
    s.retx += sample.retx;
  }
}

void FeatureExtractor::observe_slot(const SlotResult& result) {
  // Stage this slot's activity per UE (multiple DCIs per UE fold in).
  std::fill(staged_.begin(), staged_.end(), SlotSample{});
  unsigned used_prbs = 0;
  for (const DecodedDci& dci : result.dcis) {
    if (!is_plausible_crnti(dci.rnti)) {
      continue;  // broadcast / RA bookkeeping, not a trackable UE
    }
    if (!is_downlink(dci.grant.format)) {
      continue;  // features and the target are downlink-side
    }
    UeState* ue = ue_slot(dci.rnti);
    SlotSample& s = staged_[static_cast<std::size_t>(ue - ues_.data())];
    used_prbs += dci.grant.prb_len;
    s.prbs = static_cast<std::uint16_t>(
        std::min<unsigned>(s.prbs + dci.grant.prb_len, 0xFFFFu));
    s.mcs_sum = static_cast<std::uint16_t>(
        std::min<unsigned>(s.mcs_sum + dci.grant.mcs, 0xFFFFu));
    if (s.dcis < 0xFF) {
      ++s.dcis;
    }
    if (dci.is_retx) {
      if (s.retx < 0xFF) {
        ++s.retx;
      }
    } else {
      s.bits += dci.grant.tbs;
      ue->dl_bits_total += dci.grant.tbs;
    }
    ue->last_dci_slot = slot_;
  }

  for (std::size_t i = 0; i < ues_.size(); ++i) {
    roll_ue(ues_[i], staged_[i]);
  }

  // Cell-level sample: spare capacity only counts when the engine is
  // actually tracking; a blind slot reads as zero spare and flags the
  // blindness fraction instead.
  const bool tracking = result.sync_state == SyncState::kTracking;
  CellSample cell;
  cell.used_prbs = static_cast<std::uint16_t>(
      std::min<unsigned>(used_prbs, config_.n_prb));
  cell.spare_prbs = tracking ? static_cast<std::uint16_t>(
                                   config_.n_prb - cell.used_prbs)
                             : 0;
  cell.blind = (!tracking || result.degraded) ? 1 : 0;
  for (std::size_t k = 0; k < 3; ++k) {
    if (slot_ < windows_[k]) {
      continue;
    }
    const CellSample& out = cell_ring_[(slot_ - windows_[k]) % windows_[2]];
    cell_sums_[k].used_prbs -= out.used_prbs;
    cell_sums_[k].spare_prbs -= out.spare_prbs;
    cell_sums_[k].blind -= out.blind;
  }
  cell_ring_[slot_ % windows_[2]] = cell;
  for (CellSums& s : cell_sums_) {
    s.used_prbs += cell.used_prbs;
    s.spare_prbs += cell.spare_prbs;
    s.blind += cell.blind;
  }

  ++slot_;
}

void FeatureExtractor::features(std::size_t i, FeatureVector& out) const {
  const UeState& ue = ues_[i];
  for (std::size_t k = 0; k < 3; ++k) {
    const std::uint64_t n = std::max<std::uint64_t>(
        1, std::min<std::uint64_t>(slot_, windows_[k]));
    const WindowSums& s = ue.sums[k];
    const double slots = static_cast<double>(n);
    const double dcis = static_cast<double>(std::max<std::uint64_t>(
        1, s.dcis));
    out[5 * k + 0] =
        static_cast<double>(s.bits) / (slots * slot_s_) / 1e6;
    out[5 * k + 1] = static_cast<double>(s.mcs_sum) / dcis;
    out[5 * k + 2] = static_cast<double>(s.prbs) / slots;
    out[5 * k + 3] = static_cast<double>(s.retx) / dcis;
    out[5 * k + 4] = static_cast<double>(s.dcis) / slots;
  }
  const std::uint64_t n_mid = std::max<std::uint64_t>(
      1, std::min<std::uint64_t>(slot_, windows_[1]));
  const std::uint64_t n_short = std::max<std::uint64_t>(
      1, std::min<std::uint64_t>(slot_, windows_[0]));
  out[15] = static_cast<double>(cell_sums_[1].spare_prbs) /
            static_cast<double>(n_mid);
  out[16] = static_cast<double>(ue.sums[1].prbs) /
            static_cast<double>(
                std::max<std::uint64_t>(1, cell_sums_[1].used_prbs));
  out[17] = static_cast<double>(n_mid) /
            static_cast<double>(std::max<std::uint64_t>(1, ue.sums[1].dcis));
  out[18] = static_cast<double>(
      std::min<std::uint64_t>(slot_ - ue.last_dci_slot, windows_[2]));
  out[19] = static_cast<double>(cell_sums_[0].blind) /
            static_cast<double>(n_short);
}

}  // namespace nrs
