#include "analysis/matching.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "nr/rach.h"

namespace nrs {
namespace {

using Key = std::tuple<std::uint64_t, Rnti, unsigned>;  // slot, rnti, cce

bool counts_as_telemetry(const TruthDci& dci) {
  return dci.kind == DciKind::kData || dci.kind == DciKind::kUplink;
}

}  // namespace

MissRateReport compute_miss_rate(const GroundTruthLog& truth,
                                 const std::vector<DecodedDci>& decoded,
                                 std::uint64_t from_slot) {
  std::set<Key> decoded_keys;
  for (const auto& d : decoded) {
    decoded_keys.insert(Key{d.slot, d.rnti, d.cce_start});
  }

  MissRateReport report;
  std::set<Key> all_truth_keys;  // every kind, for false-positive checks
  for (const auto& slot : truth.slots()) {
    if (slot.slot < from_slot) {
      continue;
    }
    for (const auto& t : slot.dcis) {
      const Key key{slot.slot, t.rnti, t.cce_start};
      all_truth_keys.insert(key);
      if (!counts_as_telemetry(t)) {
        continue;
      }
      const bool matched = decoded_keys.count(key) > 0;
      if (is_downlink(t.dci.format)) {
        ++report.dl_truth;
        report.dl_matched += matched;
      } else {
        ++report.ul_truth;
        report.ul_matched += matched;
      }
    }
  }
  for (const auto& d : decoded) {
    if (d.slot >= from_slot &&
        all_truth_keys.count(Key{d.slot, d.rnti, d.cce_start}) == 0) {
      ++report.false_positives;
    }
  }
  return report;
}

SampleSet compute_reg_errors(const GroundTruthLog& truth,
                             const std::vector<DecodedDci>& decoded,
                             std::uint64_t from_slot,
                             std::uint64_t to_slot) {
  // Decoded REGs per slot (downlink data grants of tracked UEs).
  std::map<std::uint64_t, long> decoded_regs;
  for (const auto& d : decoded) {
    if (is_downlink(d.dci.format) && is_plausible_crnti(d.rnti)) {
      decoded_regs[d.slot] += static_cast<long>(d.grant.n_regs());
    }
  }
  SampleSet errors;
  for (const auto& slot : truth.slots()) {
    if (slot.slot < from_slot || slot.slot >= to_slot) {
      continue;
    }
    long truth_regs = 0;
    for (const auto& t : slot.dcis) {
      // Data and MSG4 grants both address a UE's (TC-/C-)RNTI and both
      // appear on the decoded side; SIB/RAR use reserved RNTIs and are
      // excluded from both sides.
      if ((t.kind == DciKind::kData || t.kind == DciKind::kMsg4) &&
          is_downlink(t.dci.format)) {
        truth_regs += static_cast<long>(t.grant.n_regs());
      }
    }
    const auto it = decoded_regs.find(slot.slot);
    const long est = it == decoded_regs.end() ? 0 : it->second;
    errors.add(std::abs(static_cast<double>(truth_regs - est)));
  }
  return errors;
}

SampleSet throughput_errors(const std::vector<double>& truth_bps,
                            const std::vector<double>& estimated_bps) {
  SampleSet errors;
  const std::size_t n = std::min(truth_bps.size(), estimated_bps.size());
  for (std::size_t i = 0; i < n; ++i) {
    errors.add(std::abs(truth_bps[i] - estimated_bps[i]));
  }
  return errors;
}

}  // namespace nrs
