#include "analysis/prediction_sink.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

namespace nrs {

std::optional<std::string> PredictionSinkConfig::validate() const {
  if (auto err = features.validate()) {
    return err;
  }
  if (period_slots == 0) {
    return "period_slots must be positive";
  }
  return std::nullopt;
}

PredictionSink::PredictionSink(
    std::shared_ptr<const ThroughputPredictor> predictor,
    const PredictionSinkConfig& config, MetricsRegistry* registry,
    Emitter emitter)
    : predictor_(std::move(predictor)),
      config_(config),
      emitter_(std::move(emitter)),
      extractor_(config.features) {
  if (predictor_ == nullptr) {
    throw std::invalid_argument("PredictionSink: predictor is null");
  }
  if (auto err = config_.validate()) {
    throw std::invalid_argument("PredictionSinkConfig: " + *err);
  }
  horizon_slots_ = predictor_->weights().horizon_slots;
  horizon_s_ = static_cast<double>(horizon_slots_) *
               slot_duration_s(config_.features.scs);
  if (config_.warmup_slots == 0) {
    config_.warmup_slots = extractor_.window_slots()[0];
  }
  // Worst case forecasts in flight: every UE forecast each period across
  // one horizon, plus one period of slack.
  const std::size_t capacity =
      config_.features.max_ues *
      (static_cast<std::size_t>(horizon_slots_ / config_.period_slots) + 2);
  pending_.assign(capacity, PendingForecast{});
  set_.cell_index = config_.cell_index;
  set_.horizon_slots = static_cast<std::uint32_t>(horizon_slots_);
  set_.model_version = predictor_->weights().model_version;
  set_.entries.reserve(2 * config_.features.max_ues);
  if (registry != nullptr) {
    m_made_ = &registry->counter("analysis.predictions");
    m_matured_ = &registry->counter("analysis.predictions_matured");
    m_dropped_ = &registry->counter("analysis.predictions_dropped");
    m_degraded_ = &registry->counter("analysis.predictions_degraded");
    m_within20_ = &registry->counter("analysis.predictions_within20");
    m_abs_err_ = &registry->histogram(
        "analysis.prediction_abs_error_mbps",
        {0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0});
  }
}

void PredictionSink::mature_pending(std::uint64_t now) {
  while (pending_count_ > 0) {
    const PendingForecast& p = pending_[pending_head_];
    if (now < p.made_slot + horizon_slots_) {
      break;
    }
    // The UE may have been evicted (and its slot reused) since the
    // forecast was made; the generation stamp detects that.
    const bool alive = p.ue_index < extractor_.n_ues() &&
                       extractor_.generation_at(p.ue_index) == p.generation;
    if (alive) {
      const double actual_mbps =
          static_cast<double>(extractor_.dl_bits_total(p.ue_index) -
                              p.bits_at_make) /
          horizon_s_ / 1e6;
      const double err = std::fabs(p.predicted_mbps - actual_mbps);
      ++matured_;
      abs_err_sum_mbps_ += err;
      const bool within = err <= std::max(0.2 * actual_mbps, 0.25);
      if (within) {
        ++within20_;
      }
      if (p.degraded) {
        ++degraded_matured_;
        degraded_abs_err_sum_mbps_ += err;
      }
      if (m_matured_ != nullptr) {
        m_matured_->inc();
        m_abs_err_->observe(err);
        if (within) {
          m_within20_->inc();
        }
      }
      PredictionEntry entry;
      entry.rnti = p.rnti;
      entry.has_actual = true;
      entry.degraded = p.degraded;
      entry.predicted_bps = p.predicted_mbps * 1e6;
      entry.actual_bps = actual_mbps * 1e6;
      entry.abs_error_bps = err * 1e6;
      set_.entries.push_back(entry);
    } else {
      ++dropped_;
      if (m_dropped_ != nullptr) {
        m_dropped_->inc();
      }
    }
    pending_head_ = (pending_head_ + 1) % pending_.size();
    --pending_count_;
  }
}

void PredictionSink::forecast(const SlotResult& result, std::uint64_t now) {
  const bool degraded =
      result.degraded || result.sync_state != SyncState::kTracking;
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t n = extractor_.n_ues();
  for (std::size_t i = 0; i < n; ++i) {
    if (pending_count_ == pending_.size()) {
      // Ring full (horizon much longer than the drain rate): shed the
      // oldest outstanding forecast rather than growing.
      ++dropped_;
      if (m_dropped_ != nullptr) {
        m_dropped_->inc();
      }
      pending_head_ = (pending_head_ + 1) % pending_.size();
      --pending_count_;
    }
    extractor_.features(i, scratch_);
    const double predicted_mbps = predictor_->predict_mbps(scratch_);
    PendingForecast& p =
        pending_[(pending_head_ + pending_count_) % pending_.size()];
    p.rnti = extractor_.rnti_at(i);
    p.ue_index = i;
    p.generation = extractor_.generation_at(i);
    p.made_slot = now;
    p.bits_at_make = extractor_.dl_bits_total(i);
    p.predicted_mbps = predicted_mbps;
    p.degraded = degraded;
    ++pending_count_;
    ++made_;
    if (degraded) {
      ++degraded_;
    }
    PredictionEntry entry;
    entry.rnti = p.rnti;
    entry.has_actual = false;
    entry.degraded = degraded;
    entry.predicted_bps = predicted_mbps * 1e6;
    set_.entries.push_back(entry);
  }
  const auto t1 = std::chrono::steady_clock::now();
  infer_ns_ += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
          .count());
  if (m_made_ != nullptr && n > 0) {
    m_made_->inc(n);
    if (degraded) {
      m_degraded_->inc(n);
    }
  }
}

void PredictionSink::on_slot(const SlotResult& result) {
  extractor_.observe_slot(result);
  const std::uint64_t now = extractor_.slots_observed();
  set_.entries.clear();
  mature_pending(now);
  if (now >= config_.warmup_slots && now % config_.period_slots == 0) {
    forecast(result, now);
  }
  if (!set_.entries.empty() && emitter_) {
    set_.slot = now;
    emitter_(set_);
  }
}

double PredictionSink::mae_mbps() const {
  return matured_ == 0 ? 0.0
                       : abs_err_sum_mbps_ / static_cast<double>(matured_);
}

double PredictionSink::within20_rate() const {
  return matured_ == 0
             ? 0.0
             : static_cast<double>(within20_) / static_cast<double>(matured_);
}

double PredictionSink::degraded_mae_mbps() const {
  return degraded_matured_ == 0
             ? 0.0
             : degraded_abs_err_sum_mbps_ /
                   static_cast<double>(degraded_matured_);
}

}  // namespace nrs
