// Offline training for the throughput predictor: standardize features,
// solve the ridge normal equations, and optionally boost decision stumps
// on the residuals.  Lives in the analysis library so the unit tests and
// tools/train_predictor share one implementation; nothing here runs on
// the sniffer hot path.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/predictor.h"

namespace nrs {

/// Training examples: x[i] is the feature vector observed at some slot,
/// y_mbps[i] the ground-truth downlink throughput realized over the
/// following horizon.
struct TrainingSet {
  std::vector<FeatureVector> x;
  std::vector<double> y_mbps;

  [[nodiscard]] std::size_t size() const { return x.size(); }
};

struct TrainOptions {
  double ridge_lambda = 1e-3;  ///< L2 penalty on the standardized weights
  /// Boosted stumps fitted on the ridge residual (0 = plain ridge).
  unsigned stump_rounds = 0;
  double learning_rate = 0.25;
  /// Candidate split thresholds per feature (evenly spaced quantiles).
  unsigned thresholds_per_feature = 8;
};

/// Fit weights on `data`.  `model_version` stamps the output (carried on
/// the kPrediction wire frame); `horizon_slots` records what the targets
/// were computed over.  Requires a non-empty training set.
PredictorWeights train_predictor(const TrainingSet& data,
                                 const TrainOptions& options,
                                 std::uint64_t horizon_slots,
                                 std::uint32_t model_version = 1);

/// Accuracy of `predictor` over `data`.
struct PredictionEval {
  std::uint64_t n = 0;
  double mae_mbps = 0.0;
  /// Fraction of samples with |error| <= max(20% of actual, 0.25 Mbps);
  /// the floor keeps idle UEs from dominating the percentage metric.
  double within20_rate = 0.0;
  double mean_actual_mbps = 0.0;
};

PredictionEval evaluate_predictor(const ThroughputPredictor& predictor,
                                  const TrainingSet& data);

}  // namespace nrs
