// Streaming feature extraction for the online throughput predictor: the
// per-slot DCI stream is folded into per-UE ring buffers and O(1) running
// sums over three sliding windows (~100 ms / 500 ms / 2 s), from which a
// fixed-size FeatureVector can be read at any slot without allocating.
// This is the feature half of the "ML-Based Real-Time Downlink Performance
// Prediction in Standalone 5G NR" pipeline (PAPERS.md): everything the
// model sees is derivable from decoded DCIs alone — MCS, scheduled PRBs,
// retransmission rate, DCI inter-arrival, and the cell's spare-capacity
// share — so the extractor runs on the sniffer hot path.
//
// Memory discipline matches HistoryStoreSink: the first slot that sees a
// new RNTI allocates that UE's rings (warm-up work), after which
// observe_slot() is allocation-free.  The UE table is bounded at
// `max_ues`; when full, the UE silent the longest is evicted and its rings
// are reused in place, so churny cells cannot grow the extractor.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/timing.h"
#include "common/types.h"
#include "nrscope/nrscope.h"

namespace nrs {

/// Number of entries in a FeatureVector (see feature_name for the layout).
inline constexpr std::size_t kPredictionFeatureCount = 20;

/// One UE's model input at one slot.  Fixed-size so predictors can take it
/// by reference with no allocation anywhere.
using FeatureVector = std::array<double, kPredictionFeatureCount>;

/// Stable human-readable name of feature `i` (weights files and debug
/// output use these).  Layout: features 0..14 are five per-window stats
/// [dl_mbps, mcs_mean, prb_rate, retx_rate, dci_rate] for the short, mid
/// and long windows; 15..19 are cross-window/cell features
/// [spare_rate_mid, prb_share_mid, dci_interarrival_mid,
/// slots_since_dci, blind_frac_short].
const char* feature_name(std::size_t i);

struct FeatureConfig {
  Scs scs = Scs::kHz30;
  unsigned n_prb = 51;           ///< cell bandwidth, for spare capacity
  double short_window_s = 0.1;   ///< burst-scale window
  double mid_window_s = 0.5;     ///< scheduling-scale window
  double long_window_s = 2.0;    ///< trend-scale window (also ring length)
  std::size_t max_ues = 64;      ///< UE table bound; oldest evicted beyond

  /// Error message when the config is unusable, nullopt when fine.
  [[nodiscard]] std::optional<std::string> validate() const;
};

class FeatureExtractor {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Throws std::invalid_argument when `config.validate()` fails.
  explicit FeatureExtractor(const FeatureConfig& config);

  /// Fold one slot into the windows.  Slots are counted internally (one
  /// per call) so declared stream gaps simply read as silence.
  void observe_slot(const SlotResult& result);

  /// Read the feature vector of the UE at table index `i` into `out`.
  /// Allocation-free; valid any time after at least one observed slot.
  void features(std::size_t i, FeatureVector& out) const;

  [[nodiscard]] std::size_t n_ues() const { return ues_.size(); }
  [[nodiscard]] Rnti rnti_at(std::size_t i) const { return ues_[i].rnti; }
  /// Table index of `rnti`, or npos when untracked.
  [[nodiscard]] std::size_t find(Rnti rnti) const;
  /// Cumulative new-data downlink bits seen for the UE at index `i` since
  /// it (re)entered the table — the counter horizon scoring diffs.
  [[nodiscard]] std::uint64_t dl_bits_total(std::size_t i) const {
    return ues_[i].dl_bits_total;
  }
  /// Evictions bump this; a scorer holding (index, rnti, generation) can
  /// tell "same UE" from "slot reused by a newcomer".
  [[nodiscard]] std::uint64_t generation_at(std::size_t i) const {
    return ues_[i].generation;
  }

  [[nodiscard]] std::uint64_t slots_observed() const { return slot_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }
  [[nodiscard]] const FeatureConfig& config() const { return config_; }
  /// Window lengths in slots (short, mid, long).
  [[nodiscard]] std::array<std::uint64_t, 3> window_slots() const {
    return {windows_[0], windows_[1], windows_[2]};
  }

 private:
  /// One slot's compact per-UE activity (zero == silent slot).
  struct SlotSample {
    std::uint32_t bits = 0;     ///< new-data downlink TBS bits
    std::uint16_t prbs = 0;     ///< downlink PRBs granted
    std::uint16_t mcs_sum = 0;  ///< sum of DL MCS indices over the DCIs
    std::uint8_t dcis = 0;      ///< downlink DCIs this slot
    std::uint8_t retx = 0;      ///< of which retransmissions
  };

  struct WindowSums {
    std::uint64_t bits = 0;
    std::uint64_t prbs = 0;
    std::uint64_t mcs_sum = 0;
    std::uint64_t dcis = 0;
    std::uint64_t retx = 0;
  };

  struct UeState {
    Rnti rnti = 0;
    std::uint64_t generation = 0;
    std::uint64_t last_dci_slot = 0;
    std::uint64_t dl_bits_total = 0;
    std::vector<SlotSample> ring;  ///< long-window length, slot_ % size
    std::array<WindowSums, 3> sums;
  };

  /// Cell-level per-slot activity for spare-capacity / blindness shares.
  struct CellSample {
    std::uint16_t used_prbs = 0;
    std::uint16_t spare_prbs = 0;
    std::uint8_t blind = 0;  ///< not tracking, or tracking degraded
  };

  struct CellSums {
    std::uint64_t used_prbs = 0;
    std::uint64_t spare_prbs = 0;
    std::uint64_t blind = 0;
  };

  UeState* ue_slot(Rnti rnti);
  void roll_ue(UeState& ue, const SlotSample& sample);

  FeatureConfig config_;
  std::array<std::uint64_t, 3> windows_{};  ///< slots: short, mid, long
  double slot_s_ = 0.0;

  std::uint64_t slot_ = 0;  ///< observe_slot() calls so far
  std::uint64_t evictions_ = 0;
  std::uint64_t generation_ = 0;

  std::vector<UeState> ues_;  ///< linear scan; bounded by max_ues
  std::vector<CellSample> cell_ring_;
  std::array<CellSums, 3> cell_sums_{};

  /// Per-slot staging: sample accumulated per tracked UE before rolling.
  std::vector<SlotSample> staged_;
};

}  // namespace nrs
