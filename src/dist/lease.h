// Lease table for the distributed fleet: one lease per cell, granted to
// one worker at a time with a TTL.  Heartbeats renew a lease; a lease that
// expires (or whose worker dies) is released back to the unassigned pool
// with the supervisor-style bounded exponential backoff, and its handoff
// counter bumps — the next grant carries a higher incarnation, so the
// receiving worker draws a fresh but reproducible stream for the cell.
// Like the catalog, this is a plain data structure mutated only on the
// coordinator's io thread.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

namespace nrs {

enum class LeaseState : std::uint8_t {
  kUnassigned = 0,  ///< nobody runs this cell (waiting for capacity/backoff)
  kPending = 1,     ///< granted, kLeaseAck not yet received
  kActive = 2,      ///< acked; renewed by worker heartbeats
};

const char* to_string(LeaseState state);

struct Lease {
  std::uint32_t cell_index = 0;
  LeaseState state = LeaseState::kUnassigned;
  std::uint64_t lease_id = 0;    ///< 0 = never granted
  std::uint64_t worker_id = 0;   ///< catalog id of the holder
  /// Times this cell's lease has been released (worker death, expiry,
  /// revoke).  Used as the incarnation of the next grant.
  unsigned handoffs = 0;
  std::chrono::steady_clock::time_point expires_at{};
  std::chrono::steady_clock::time_point retry_at{};
  double backoff_s = 0.0;  ///< 0 = healthy; next release starts at initial
};

class LeaseTable {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  struct Config {
    double ttl_s = 1.5;
    double backoff_initial_s = 0.05;
    double backoff_max_s = 1.0;
    double backoff_factor = 2.0;
  };

  LeaseTable(std::size_t n_cells, Config config);

  /// Grant cell `cell_index` to `worker_id`: a fresh lease id, state
  /// kPending, TTL clock running.  The grant's incarnation is the cell's
  /// current handoff count.
  std::uint64_t grant(std::uint32_t cell_index, std::uint64_t worker_id,
                      TimePoint now);

  /// Apply a worker's kLeaseAck.  A refusal releases the lease with
  /// backoff (the worker is over capacity or cannot build the cell).
  /// False when the lease id no longer matches any live lease.
  bool ack(std::uint64_t lease_id, bool accepted, TimePoint now);

  /// Extend the lease's TTL (a heartbeat listed it).  False when the id
  /// does not match a live lease.
  bool renew(std::uint64_t lease_id, TimePoint now);

  /// Release the cell's current lease back to kUnassigned and bump its
  /// handoff counter.  `penalize` applies (and escalates) the backoff
  /// before the cell becomes assignable; a deliberate release (rebalance)
  /// passes false and reassigns immediately.
  void release(std::uint32_t cell_index, bool penalize, TimePoint now);

  /// The cell made real progress under its current lease: reset the
  /// backoff escalation, like the fleet supervisor's healthy_slots rule.
  void note_progress(std::uint32_t cell_index);

  // -- Replication / failover support ----------------------------------

  /// Rebuild the table for `n_cells` cells, dropping all state.  A standby
  /// applying its first snapshot uses this: its config carried no cell
  /// list, the snapshot is authoritative.
  void reset(std::size_t n_cells);

  /// Mirror one cell's replicated lease binding verbatim (standby apply
  /// path).  Does not touch next_lease_id_ — see set_next_lease_id().
  void restore(std::uint32_t cell_index, LeaseState state,
               std::uint64_t lease_id, std::uint64_t worker_id,
               unsigned handoffs, TimePoint now);

  /// Ensure future grants use ids >= `next` (never reuse a replicated
  /// live id).  Only ratchets forward.
  void set_next_lease_id(std::uint64_t next);
  [[nodiscard]] std::uint64_t next_lease_id() const {
    return next_lease_id_;
  }

  /// Restart every granted lease's TTL clock.  A just-promoted standby
  /// calls this so healthy workers get one full TTL to reconnect and
  /// re-confirm before their mirrored leases are treated as expired.
  void extend_all(TimePoint now);

  /// Re-confirmation after failover: bind a live lease to the catalog id
  /// its (reconnected) holder registered under with the new primary.  The
  /// lease id, state and handoff count are untouched — this is the same
  /// lease continuing, not a reassignment.  False when the id is unknown.
  bool rebind(std::uint64_t lease_id, std::uint64_t new_worker_id);

  /// Live lease lookup by id (nullptr when no cell currently holds it).
  [[nodiscard]] Lease* by_id(std::uint64_t lease_id);

  [[nodiscard]] Lease& cell(std::uint32_t cell_index) {
    return leases_[cell_index];
  }
  [[nodiscard]] const Lease& cell(std::uint32_t cell_index) const {
    return leases_[cell_index];
  }
  [[nodiscard]] std::size_t n_cells() const { return leases_.size(); }

  /// Cells whose granted lease (pending or active) has outlived its TTL.
  [[nodiscard]] std::vector<std::uint32_t> expired(TimePoint now) const;
  /// Unassigned cells whose backoff has elapsed.
  [[nodiscard]] std::vector<std::uint32_t> assignable(TimePoint now) const;
  [[nodiscard]] std::size_t active_count() const;

  [[nodiscard]] const Config& config() const { return config_; }

 private:
  Config config_;
  std::vector<Lease> leases_;  ///< indexed by cell_index
  std::uint64_t next_lease_id_ = 0;
};

}  // namespace nrs
