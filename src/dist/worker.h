// FleetWorker: one process of the distributed sniffer fleet.  It dials
// the coordinator, announces its capacity (kWorkerHello), and runs the
// cells it is leased (kLease) on an embedded FleetOrchestrator — the same
// supervised multi-cell runtime the single-host fleet_monitor uses, grown
// and shrunk at runtime as leases arrive and go.  For every held lease it
// sends kWorkerHeartbeat (liveness + lease renewal) and kCellReport
// (lease-local telemetry totals plus forwarded history-store rows).
//
// Lease discipline: a lease the coordinator stops renewing expires
// locally too — the worker tears the cell down rather than keep running a
// cell the coordinator may have reassigned elsewhere (split-brain
// avoidance).  A kLeaseRevoke tears it down immediately.
//
// Failure/termination paths:
//   stop()  — graceful leave: drain the orchestrator, close the socket
//             (the coordinator sees EOF and reassigns).
//   kill()  — test hook simulating `kill -9`: slam the socket shut from
//             the caller's thread; no draining, no goodbye.
//   kUnsupportedVersion from the coordinator — fatal; the worker records
//             protocol_error() and exits its run loop (reconnecting
//             cannot fix a version mismatch).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "analysis/predictor.h"
#include "common/metrics.h"
#include "fleet/fleet.h"
#include "net/wire.h"
#include "nrscope/slot_sink.h"

namespace nrs {

struct WorkerConfig {
  std::string name = "worker";
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  std::uint32_t capacity = 4;  ///< max concurrent cell leases
  unsigned pool_threads = 2;   ///< orchestrator advance pool
  std::uint64_t slots_per_tick = 20;
  unsigned n_demod_workers = 1;
  unsigned n_dci_threads = 1;

  double heartbeat_period_s = 0.1;
  double report_period_s = 0.25;
  /// Wait between reconnect attempts after the connection drops.
  double reconnect_backoff_s = 0.2;
  /// Consecutive failed connect attempts before giving up (-1 = retry
  /// forever).
  int max_reconnect_attempts = -1;
  /// Cap on forwarded store rows per cell report (excess rows are dropped
  /// oldest-first; the cap bounds frame size under backlog).
  std::size_t max_rows_per_report = 4096;

  /// Run the online throughput predictor on every leased cell and forward
  /// each cell's latest PredictionSet (kPrediction) alongside the reports,
  /// so the coordinator holds the fleet-wide prediction view.
  bool enable_prediction = false;
  /// Trained weights file for the predictor; empty (or unloadable) falls
  /// back to the built-in persistence baseline (model_version 0).
  std::string predictor_weights_path;
  /// Forecast cadence inside each cell's PredictionSink.
  std::uint64_t prediction_period_slots = 40;
  /// Horizon for the baseline predictor when no weights file is given (a
  /// loaded weights file carries its own horizon).
  std::uint64_t prediction_horizon_slots = 200;
};

class FleetWorker {
 public:
  /// Starts the run thread immediately (connects with retries).
  /// `registry` (optional) receives the worker's fleet.* and
  /// dist.worker.* metrics.
  explicit FleetWorker(WorkerConfig config,
                       MetricsRegistry* registry = nullptr);
  ~FleetWorker();

  FleetWorker(const FleetWorker&) = delete;
  FleetWorker& operator=(const FleetWorker&) = delete;

  /// Graceful leave: drain cells, close the socket, join the run thread.
  /// Idempotent.
  void stop();

  /// Abrupt-death test hook (the in-process stand-in for `kill -9`): shut
  /// the socket down right now from the caller's thread and stop without
  /// draining.  The coordinator sees EOF immediately.
  void kill();

  [[nodiscard]] bool running() const { return !done_.load(); }
  [[nodiscard]] bool connected() const { return connected_.load(); }
  /// Leases currently held (== cells currently running here).
  [[nodiscard]] std::size_t n_cells() const { return n_cells_.load(); }
  /// Lifetime slots delivered across all cells ever leased to this worker.
  [[nodiscard]] std::uint64_t slots_total() const {
    return slots_total_.load();
  }
  /// Non-empty after the coordinator rejected our wire version.
  [[nodiscard]] std::string protocol_error() const;

  [[nodiscard]] const WorkerConfig& config() const { return config_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// SlotSink that buffers cell-level store rows (kCellDcis /
  /// kCellUsedPrbs / kCellSparePrbs, tracking slots only) for the next
  /// kCellReport.  One per leased cell; it outlives the cell's pipeline
  /// incarnations, so its slot counter is monotonic across worker-local
  /// restarts.  Defined in worker.cc.
  class RowCollector;

  /// Latest PredictionSet produced by one leased cell's PredictionSink
  /// (written on the cell's collector thread, drained by the run thread
  /// with the next report batch).  Defined in worker.cc.
  struct PredictionBuffer;

  struct HeldLease {
    std::uint64_t lease_id = 0;
    std::uint32_t cell_index = 0;  ///< fleet-global index
    std::uint32_t local_index = 0; ///< index inside the orchestrator
    Clock::time_point expires_at{};
    std::shared_ptr<RowCollector> collector;
    std::shared_ptr<SlotSink> prediction_sink;  ///< null unless enabled
    std::shared_ptr<PredictionBuffer> prediction_buffer;
  };

  void run();
  bool connect_once();
  void disconnect();
  void drain_socket();
  void handle_frame(const Frame& frame);
  void handle_lease(const LeaseGrant& grant);
  void handle_revoke(const LeaseRevoke& revoke);
  void drop_lease(std::uint64_t lease_id);
  void expire_leases(Clock::time_point now);
  void send_heartbeat();
  void send_reports();
  bool send_frame(const std::vector<std::uint8_t>& frame);

  WorkerConfig config_;
  std::unique_ptr<MetricsRegistry> own_registry_;
  MetricsRegistry* registry_ = nullptr;

  std::atomic<int> fd_{-1};
  std::atomic<bool> stop_{false};
  std::atomic<bool> killed_{false};
  std::atomic<bool> done_{false};
  std::atomic<bool> connected_{false};
  std::atomic<std::size_t> n_cells_{0};
  std::atomic<std::uint64_t> slots_total_{0};
  std::thread thread_;

  // Run-thread state (no locking needed beyond the atomics above).
  std::unique_ptr<FleetOrchestrator> orch_;
  std::unique_ptr<FrameParser> parser_;
  std::map<std::uint64_t, HeldLease> leases_;  ///< by lease_id
  std::map<std::uint32_t, std::shared_ptr<RowCollector>>
      collectors_;  ///< by orchestrator-local index
  std::map<std::uint32_t, std::shared_ptr<SlotSink>>
      prediction_sinks_;  ///< by orchestrator-local index
  /// One predictor shared by every leased cell's sink (weights are
  /// immutable after load).
  std::shared_ptr<const ThroughputPredictor> predictor_;
  std::uint64_t heartbeat_seq_ = 0;
  std::uint64_t dropped_slots_ = 0;  ///< slots from already-dropped leases

  std::mutex join_mutex_;  ///< serializes stop()/kill() joining the thread

  mutable std::mutex protocol_error_mutex_;
  std::string protocol_error_;

  Counter* m_leases_accepted_ = nullptr;
  Counter* m_leases_refused_ = nullptr;
  Counter* m_revokes_ = nullptr;
  Counter* m_expiries_ = nullptr;
  Counter* m_reconnects_ = nullptr;
  Counter* m_heartbeats_ = nullptr;
  Counter* m_reports_ = nullptr;
  Counter* m_report_batches_ = nullptr;
  Counter* m_predictions_sent_ = nullptr;
  Gauge* m_cells_ = nullptr;
};

}  // namespace nrs
