// FleetWorker: one process of the distributed sniffer fleet.  It dials
// the coordinator, announces its capacity (kWorkerHello), and runs the
// cells it is leased (kLease) on an embedded FleetOrchestrator — the same
// supervised multi-cell runtime the single-host fleet_monitor uses, grown
// and shrunk at runtime as leases arrive and go.  For every held lease it
// sends kWorkerHeartbeat (liveness + lease renewal) and kCellReport
// (lease-local telemetry totals plus forwarded history-store rows).
//
// Lease discipline: a lease the coordinator stops renewing expires
// locally too — the worker tears the cell down rather than keep running a
// cell the coordinator may have reassigned elsewhere (split-brain
// avoidance).  A kLeaseRevoke tears it down immediately.
//
// Coordinator failover: `coordinators` lists every coordinator address
// (primary first, standbys after).  When the link drops the worker keeps
// its leased cells RUNNING locally for the remainder of their lease TTL
// and redials the list round-robin with jittered exponential backoff; an
// endpoint that answers kNotPrimary is skipped to the next.  On reaching
// the promoted standby the worker's heartbeat lists the lease ids it
// already holds, so the new primary re-confirms them (same leases, no
// cell restarts) and the telemetry stream continues with monotonic
// totals.  Epoch fencing: the worker tracks the highest coordinator term
// it has seen (carried on every hello/heartbeat/report), adopts higher
// terms from grants, and REFUSES grants or revokes from a lower term — a
// deposed primary cannot reclaim or tear down cells the new primary owns
// (`dist.worker.stale_epoch_rejected` counts the refusals).
//
// Failure/termination paths:
//   stop()  — graceful leave: drain the orchestrator, close the socket
//             (the coordinator sees EOF and reassigns).
//   kill()  — test hook simulating `kill -9`: slam the socket shut from
//             the caller's thread; no draining, no goodbye.
//   kUnsupportedVersion from the coordinator — fatal; the worker records
//             protocol_error() and exits its run loop (reconnecting
//             cannot fix a version mismatch).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "analysis/predictor.h"
#include "common/metrics.h"
#include "fleet/fleet.h"
#include "net/wire.h"
#include "nrscope/slot_sink.h"

namespace nrs {

struct WorkerConfig {
  std::string name = "worker";
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Coordinator address list ("host:port" each) for HA fleets: the
  /// worker dials entries round-robin, skipping past dead endpoints and
  /// kNotPrimary answers until it finds the acting primary.  Empty = use
  /// host/port above as the single endpoint.
  std::vector<std::string> coordinators;

  std::uint32_t capacity = 4;  ///< max concurrent cell leases
  unsigned pool_threads = 2;   ///< orchestrator advance pool
  std::uint64_t slots_per_tick = 20;
  unsigned n_demod_workers = 1;
  unsigned n_dci_threads = 1;

  double heartbeat_period_s = 0.1;
  double report_period_s = 0.25;
  /// Initial wait between reconnect attempts after the connection drops;
  /// consecutive failures escalate exponentially up to
  /// reconnect_backoff_max_s, and every delay is jittered (see
  /// backoff_jitter) so a fleet-wide failover does not stampede the new
  /// primary.
  double reconnect_backoff_s = 0.2;
  double reconnect_backoff_max_s = 2.0;
  /// Jitter fraction in [0, 1]: each reconnect delay is drawn uniformly
  /// from [base * (1 - jitter), base].
  double backoff_jitter = 0.5;
  /// Jitter RNG seed (0 = derive one per worker instance).
  std::uint64_t backoff_seed = 0;
  /// Consecutive failed connect attempts before giving up (-1 = retry
  /// forever).
  int max_reconnect_attempts = -1;
  /// Cap on forwarded store rows per cell report (excess rows are dropped
  /// oldest-first; the cap bounds frame size under backlog).
  std::size_t max_rows_per_report = 4096;
  /// Upper bound on one report interval's batched frame, in encoded wire
  /// bytes.  Oldest rows are shed (freshest telemetry wins) until the
  /// frame fits — the WAN-link knob; `dist.worker.report_bytes` counts
  /// what is actually sent.
  std::size_t max_report_bytes = 256 * 1024;

  /// Run the online throughput predictor on every leased cell and forward
  /// each cell's latest PredictionSet (kPrediction) alongside the reports,
  /// so the coordinator holds the fleet-wide prediction view.
  bool enable_prediction = false;
  /// Trained weights file for the predictor; empty (or unloadable) falls
  /// back to the built-in persistence baseline (model_version 0).
  std::string predictor_weights_path;
  /// Forecast cadence inside each cell's PredictionSink.
  std::uint64_t prediction_period_slots = 40;
  /// Horizon for the baseline predictor when no weights file is given (a
  /// loaded weights file carries its own horizon).
  std::uint64_t prediction_horizon_slots = 200;
};

class FleetWorker {
 public:
  /// Starts the run thread immediately (connects with retries).
  /// `registry` (optional) receives the worker's fleet.* and
  /// dist.worker.* metrics.
  explicit FleetWorker(WorkerConfig config,
                       MetricsRegistry* registry = nullptr);
  ~FleetWorker();

  FleetWorker(const FleetWorker&) = delete;
  FleetWorker& operator=(const FleetWorker&) = delete;

  /// Graceful leave: drain cells, close the socket, join the run thread.
  /// Idempotent.
  void stop();

  /// Abrupt-death test hook (the in-process stand-in for `kill -9`): shut
  /// the socket down right now from the caller's thread and stop without
  /// draining.  The coordinator sees EOF immediately.
  void kill();

  [[nodiscard]] bool running() const { return !done_.load(); }
  [[nodiscard]] bool connected() const { return connected_.load(); }
  /// Leases currently held (== cells currently running here).
  [[nodiscard]] std::size_t n_cells() const { return n_cells_.load(); }
  /// Lifetime slots delivered across all cells ever leased to this worker.
  [[nodiscard]] std::uint64_t slots_total() const {
    return slots_total_.load();
  }
  /// Highest coordinator epoch (term) this worker has seen.
  [[nodiscard]] std::uint64_t epoch() const { return epoch_.load(); }
  /// Grants/revokes refused because they carried a stale epoch.
  [[nodiscard]] std::uint64_t stale_epoch_rejected() const {
    return stale_epoch_rejected_.load();
  }
  /// Non-empty after the coordinator rejected our wire version.
  [[nodiscard]] std::string protocol_error() const;

  [[nodiscard]] const WorkerConfig& config() const { return config_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// SlotSink that buffers cell-level store rows (kCellDcis /
  /// kCellUsedPrbs / kCellSparePrbs, tracking slots only) for the next
  /// kCellReport.  One per leased cell; it outlives the cell's pipeline
  /// incarnations, so its slot counter is monotonic across worker-local
  /// restarts.  Defined in worker.cc.
  class RowCollector;

  /// Latest PredictionSet produced by one leased cell's PredictionSink
  /// (written on the cell's collector thread, drained by the run thread
  /// with the next report batch).  Defined in worker.cc.
  struct PredictionBuffer;

  struct HeldLease {
    std::uint64_t lease_id = 0;
    std::uint32_t cell_index = 0;  ///< fleet-global index
    std::uint32_t local_index = 0; ///< index inside the orchestrator
    Clock::time_point expires_at{};
    std::shared_ptr<RowCollector> collector;
    std::shared_ptr<SlotSink> prediction_sink;  ///< null unless enabled
    std::shared_ptr<PredictionBuffer> prediction_buffer;
  };

  void run();
  void setup_orchestrator();
  void teardown_orchestrator();
  bool connect_once();
  /// Close the link (keeping leased cells running on their TTLs) and
  /// advance to the next coordinator candidate.
  void disconnect();
  void rotate_coordinator();
  void drain_socket();
  void handle_frame(const Frame& frame);
  void handle_lease(const LeaseGrant& grant);
  void handle_revoke(const LeaseRevoke& revoke);
  void handle_not_primary(const NotPrimary& info);
  void drop_lease(std::uint64_t lease_id);
  void expire_leases(Clock::time_point now);
  void send_heartbeat();
  void send_reports();
  bool send_frame(const std::vector<std::uint8_t>& frame);

  WorkerConfig config_;
  std::unique_ptr<MetricsRegistry> own_registry_;
  MetricsRegistry* registry_ = nullptr;

  std::atomic<int> fd_{-1};
  std::atomic<bool> stop_{false};
  std::atomic<bool> killed_{false};
  std::atomic<bool> done_{false};
  std::atomic<bool> connected_{false};
  std::atomic<std::size_t> n_cells_{0};
  std::atomic<std::uint64_t> slots_total_{0};
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint64_t> stale_epoch_rejected_{0};
  std::thread thread_;

  /// Resolved coordinator candidates (host, port), dialed round-robin.
  std::vector<std::pair<std::string, std::uint16_t>> endpoints_;
  std::size_t endpoint_index_ = 0;  ///< run-thread only

  // Run-thread state (no locking needed beyond the atomics above).
  std::unique_ptr<FleetOrchestrator> orch_;
  std::unique_ptr<FrameParser> parser_;
  std::map<std::uint64_t, HeldLease> leases_;  ///< by lease_id
  std::map<std::uint32_t, std::shared_ptr<RowCollector>>
      collectors_;  ///< by orchestrator-local index
  std::map<std::uint32_t, std::shared_ptr<SlotSink>>
      prediction_sinks_;  ///< by orchestrator-local index
  /// One predictor shared by every leased cell's sink (weights are
  /// immutable after load).
  std::shared_ptr<const ThroughputPredictor> predictor_;
  std::uint64_t heartbeat_seq_ = 0;
  std::uint64_t dropped_slots_ = 0;  ///< slots from already-dropped leases

  std::mutex join_mutex_;  ///< serializes stop()/kill() joining the thread

  mutable std::mutex protocol_error_mutex_;
  std::string protocol_error_;

  Counter* m_leases_accepted_ = nullptr;
  Counter* m_leases_refused_ = nullptr;
  Counter* m_revokes_ = nullptr;
  Counter* m_expiries_ = nullptr;
  Counter* m_reconnects_ = nullptr;
  Counter* m_heartbeats_ = nullptr;
  Counter* m_reports_ = nullptr;
  Counter* m_report_batches_ = nullptr;
  Counter* m_predictions_sent_ = nullptr;
  Counter* m_report_bytes_ = nullptr;
  Counter* m_stale_epoch_ = nullptr;
  Counter* m_not_primary_rx_ = nullptr;
  Gauge* m_cells_ = nullptr;
};

}  // namespace nrs
