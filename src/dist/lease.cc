#include "dist/lease.h"

#include <algorithm>

namespace nrs {

namespace {

LeaseTable::TimePoint after(LeaseTable::TimePoint now, double seconds) {
  return now + std::chrono::duration_cast<LeaseTable::TimePoint::duration>(
                   std::chrono::duration<double>(seconds));
}

}  // namespace

const char* to_string(LeaseState state) {
  switch (state) {
    case LeaseState::kUnassigned: return "unassigned";
    case LeaseState::kPending: return "pending";
    case LeaseState::kActive: return "active";
  }
  return "unknown";
}

LeaseTable::LeaseTable(std::size_t n_cells, Config config)
    : config_(config), leases_(n_cells) {
  for (std::size_t i = 0; i < leases_.size(); ++i) {
    leases_[i].cell_index = static_cast<std::uint32_t>(i);
  }
}

std::uint64_t LeaseTable::grant(std::uint32_t cell_index,
                                std::uint64_t worker_id, TimePoint now) {
  Lease& lease = leases_[cell_index];
  lease.lease_id = ++next_lease_id_;
  lease.worker_id = worker_id;
  lease.state = LeaseState::kPending;
  lease.expires_at = after(now, config_.ttl_s);
  return lease.lease_id;
}

Lease* LeaseTable::by_id(std::uint64_t lease_id) {
  if (lease_id == 0) {
    return nullptr;
  }
  for (Lease& lease : leases_) {
    if (lease.lease_id == lease_id &&
        lease.state != LeaseState::kUnassigned) {
      return &lease;
    }
  }
  return nullptr;
}

bool LeaseTable::ack(std::uint64_t lease_id, bool accepted, TimePoint now) {
  Lease* lease = by_id(lease_id);
  if (lease == nullptr) {
    return false;
  }
  if (!accepted) {
    release(lease->cell_index, /*penalize=*/true, now);
    return true;
  }
  lease->state = LeaseState::kActive;
  lease->expires_at = after(now, config_.ttl_s);
  return true;
}

bool LeaseTable::renew(std::uint64_t lease_id, TimePoint now) {
  Lease* lease = by_id(lease_id);
  if (lease == nullptr) {
    return false;
  }
  lease->expires_at = after(now, config_.ttl_s);
  return true;
}

void LeaseTable::release(std::uint32_t cell_index, bool penalize,
                         TimePoint now) {
  Lease& lease = leases_[cell_index];
  if (lease.state == LeaseState::kUnassigned) {
    return;
  }
  lease.state = LeaseState::kUnassigned;
  lease.lease_id = 0;
  lease.worker_id = 0;
  ++lease.handoffs;
  if (penalize) {
    lease.backoff_s = lease.backoff_s <= 0.0
                          ? config_.backoff_initial_s
                          : std::min(config_.backoff_max_s,
                                     lease.backoff_s *
                                         config_.backoff_factor);
    lease.retry_at = after(now, lease.backoff_s);
  } else {
    lease.retry_at = now;
  }
}

void LeaseTable::note_progress(std::uint32_t cell_index) {
  leases_[cell_index].backoff_s = 0.0;
}

void LeaseTable::reset(std::size_t n_cells) {
  leases_.assign(n_cells, Lease{});
  for (std::size_t i = 0; i < leases_.size(); ++i) {
    leases_[i].cell_index = static_cast<std::uint32_t>(i);
  }
}

void LeaseTable::restore(std::uint32_t cell_index, LeaseState state,
                         std::uint64_t lease_id, std::uint64_t worker_id,
                         unsigned handoffs, TimePoint now) {
  Lease& lease = leases_[cell_index];
  lease.state = state;
  lease.lease_id = lease_id;
  lease.worker_id = worker_id;
  lease.handoffs = handoffs;
  lease.expires_at = after(now, config_.ttl_s);
  lease.retry_at = now;
}

void LeaseTable::set_next_lease_id(std::uint64_t next) {
  next_lease_id_ = std::max(next_lease_id_, next);
}

void LeaseTable::extend_all(TimePoint now) {
  for (Lease& lease : leases_) {
    if (lease.state != LeaseState::kUnassigned) {
      lease.expires_at = after(now, config_.ttl_s);
    }
  }
}

bool LeaseTable::rebind(std::uint64_t lease_id,
                        std::uint64_t new_worker_id) {
  Lease* lease = by_id(lease_id);
  if (lease == nullptr) {
    return false;
  }
  lease->worker_id = new_worker_id;
  return true;
}

std::vector<std::uint32_t> LeaseTable::expired(TimePoint now) const {
  std::vector<std::uint32_t> out;
  for (const Lease& lease : leases_) {
    if (lease.state != LeaseState::kUnassigned && now >= lease.expires_at) {
      out.push_back(lease.cell_index);
    }
  }
  return out;
}

std::vector<std::uint32_t> LeaseTable::assignable(TimePoint now) const {
  std::vector<std::uint32_t> out;
  for (const Lease& lease : leases_) {
    if (lease.state == LeaseState::kUnassigned && now >= lease.retry_at) {
      out.push_back(lease.cell_index);
    }
  }
  return out;
}

std::size_t LeaseTable::active_count() const {
  std::size_t n = 0;
  for (const Lease& lease : leases_) {
    n += lease.state == LeaseState::kActive ? 1 : 0;
  }
  return n;
}

}  // namespace nrs
