#include "dist/coordinator.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <stdexcept>
#include <utility>

namespace nrs {

namespace {

/// write() the whole buffer, riding out EINTR and partial sends; the
/// socket carries SO_SNDTIMEO, so a wedged worker fails the send instead
/// of wedging the io thread.
bool send_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

FleetCoordinator::FleetCoordinator(CoordinatorConfig config,
                                   MetricsRegistry* registry)
    : config_(std::move(config)),
      own_registry_(registry == nullptr ? std::make_unique<MetricsRegistry>()
                                        : nullptr),
      registry_(registry != nullptr ? registry : own_registry_.get()),
      leases_(config_.cells.size(),
              LeaseTable::Config{config_.lease_ttl_ms / 1000.0,
                                 config_.backoff_initial_s,
                                 config_.backoff_max_s,
                                 config_.backoff_factor}),
      store_(config_.store, registry_) {
  if (config_.cells.empty()) {
    throw std::invalid_argument("FleetCoordinator: no cells configured");
  }
  records_.reserve(config_.cells.size());
  for (std::uint32_t i = 0; i < config_.cells.size(); ++i) {
    CellRecord record;
    record.spec = config_.cells[i];
    if (record.spec.name.empty()) {
      record.spec.name = "cell" + std::to_string(i);
    }
    record.seed_base = splitmix64(
        config_.seed ^ splitmix64((static_cast<std::uint64_t>(i) << 32) |
                                  0x5EEDull));
    if (record.seed_base == 0) {
      record.seed_base = 1;  // 0 would disable the worker-side override
    }
    records_.push_back(std::move(record));
  }
  m_leases_granted_ = &registry_->counter("dist.leases_granted");
  m_leases_expired_ = &registry_->counter("dist.leases_expired");
  m_lease_refusals_ = &registry_->counter("dist.lease_refusals");
  m_reassignments_ = &registry_->counter("dist.reassignments");
  m_workers_dead_ = &registry_->counter("dist.workers_dead");
  m_stale_reports_ = &registry_->counter("dist.stale_reports");
  m_predictions_rx_ = &registry_->counter("dist.predictions_received");
  m_version_rejects_ = &registry_->counter("dist.version_rejects");
  m_revokes_ = &registry_->counter("dist.lease_revokes");
  m_workers_alive_ = &registry_->gauge("dist.workers_alive");
  m_cells_active_ = &registry_->gauge("dist.cells_active");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("FleetCoordinator: socket() failed");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    throw std::runtime_error("FleetCoordinator: bad bind address " +
                             config_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("FleetCoordinator: cannot listen on " +
                             config_.bind_address + ":" +
                             std::to_string(config_.port));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  io_ = std::thread([this] { io_loop(); });
}

FleetCoordinator::~FleetCoordinator() { stop(); }

void FleetCoordinator::stop() {
  if (stopping_.exchange(true)) {
    if (io_.joinable()) {
      io_.join();
    }
    return;
  }
  if (io_.joinable()) {
    io_.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::lock_guard lock(state_mutex_);
  for (auto& conn : connections_) {
    if (conn->fd >= 0) {
      ::close(conn->fd);
      conn->fd = -1;
    }
  }
  connections_.clear();
}

void FleetCoordinator::io_loop() {
  std::vector<pollfd> pfds;
  std::vector<Connection*> polled;
  while (!stopping_.load()) {
    pfds.clear();
    polled.clear();
    pfds.push_back(pollfd{listen_fd_, POLLIN, 0});
    {
      std::lock_guard lock(state_mutex_);
      // Sweep connections closed in the previous round.
      connections_.erase(
          std::remove_if(connections_.begin(), connections_.end(),
                         [](const std::unique_ptr<Connection>& c) {
                           return c->fd < 0;
                         }),
          connections_.end());
      for (auto& conn : connections_) {
        pfds.push_back(pollfd{conn->fd, POLLIN, 0});
        polled.push_back(conn.get());
      }
    }
    const int ready = ::poll(pfds.data(), pfds.size(), /*timeout_ms=*/20);
    const auto now = Clock::now();
    std::lock_guard lock(state_mutex_);
    if (ready > 0) {
      for (std::size_t i = 1; i < pfds.size(); ++i) {
        if (pfds[i].revents != 0 && polled[i - 1]->fd >= 0) {
          read_connection(*polled[i - 1]);
        }
      }
      if ((pfds[0].revents & POLLIN) != 0) {
        handle_accept();
      }
    }
    run_timers(now);
  }
}

void FleetCoordinator::handle_accept() {
  const int fd = ::accept(listen_fd_, nullptr, nullptr);
  if (fd < 0) {
    return;
  }
  if (connections_.size() >= config_.max_workers) {
    ::close(fd);
    return;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  // Bound synchronous sends: a worker that stops draining its socket
  // fails the send and is declared dead, instead of wedging the io thread.
  timeval send_timeout{};
  send_timeout.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &send_timeout,
               sizeof(send_timeout));
  auto conn = std::make_unique<Connection>();
  conn->fd = fd;
  connections_.push_back(std::move(conn));
}

void FleetCoordinator::close_connection(Connection& conn) {
  if (conn.fd >= 0) {
    ::close(conn.fd);
    conn.fd = -1;
  }
}

void FleetCoordinator::read_connection(Connection& conn) {
  std::uint8_t buf[65536];
  const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
  if (n <= 0) {
    if (n < 0 &&
        (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
      return;
    }
    // EOF: the fast death-detection path — a kill -9'd worker's kernel
    // closes the socket long before the heartbeat timeout fires.
    const std::uint64_t worker = conn.worker_id;
    close_connection(conn);
    if (worker != 0) {
      declare_worker_dead(worker, "socket closed");
    }
    return;
  }
  conn.parser.feed({buf, static_cast<std::size_t>(n)});
  while (auto frame = conn.parser.next()) {
    handle_frame(conn, *frame);
    if (conn.fd < 0) {
      return;  // the frame handler closed the connection
    }
  }
  if (conn.parser.error()) {
    if (const auto rejected = conn.parser.rejected_version()) {
      m_version_rejects_->inc();
      VersionReject reject;
      reject.rejected = *rejected;
      reject.message = conn.parser.error_message();
      const std::vector<std::uint8_t> reply = version_reject_frame(reject);
      send_all(conn.fd, reply.data(), reply.size());
    }
    const std::uint64_t worker = conn.worker_id;
    close_connection(conn);
    if (worker != 0) {
      declare_worker_dead(worker, "protocol error");
    }
  }
}

void FleetCoordinator::handle_frame(Connection& conn, const Frame& frame) {
  switch (frame.type) {
    case FrameType::kWorkerHello: {
      if (auto hello = decode_worker_hello(frame.payload)) {
        handle_worker_hello(conn, *hello);
      }
      return;
    }
    case FrameType::kLeaseAck: {
      if (auto ack = decode_lease_ack(frame.payload)) {
        handle_lease_ack(conn, *ack);
      }
      return;
    }
    case FrameType::kWorkerHeartbeat: {
      if (auto hb = decode_worker_heartbeat(frame.payload)) {
        handle_heartbeat(conn, *hb);
      }
      return;
    }
    case FrameType::kCellReport: {
      if (auto report = decode_cell_report(frame.payload)) {
        handle_cell_report(conn, *report);
      }
      return;
    }
    case FrameType::kCellReportBatch: {
      // v4 workers fold all their leases' reports into one frame; each
      // element goes through the same per-report path.
      if (auto batch = decode_cell_report_batch(frame.payload)) {
        for (const CellReport& report : batch->reports) {
          handle_cell_report(conn, report);
        }
      }
      return;
    }
    case FrameType::kPrediction: {
      if (auto set = decode_prediction(frame.payload)) {
        handle_prediction(conn, *set);
      }
      return;
    }
    default:
      return;  // well-framed but not part of the coordination protocol
  }
}

void FleetCoordinator::handle_worker_hello(Connection& conn,
                                           const WorkerHello& hello) {
  if (conn.worker_id != 0) {
    return;  // duplicate hello; keep the first registration
  }
  const auto now = Clock::now();
  conn.worker_id = catalog_.add(hello.name.empty() ? "worker" : hello.name,
                                std::max<std::uint32_t>(1, hello.capacity),
                                hello.pool_threads, conn.fd, now);
  if (config_.rebalance_on_join) {
    rebalance(now);
  }
}

void FleetCoordinator::handle_lease_ack(Connection& conn,
                                        const LeaseAck& ack) {
  Lease* lease = leases_.by_id(ack.lease_id);
  if (lease == nullptr || lease->worker_id != conn.worker_id) {
    m_stale_reports_->inc();
    return;
  }
  const auto now = Clock::now();
  if (!ack.accepted) {
    m_lease_refusals_->inc();
    if (WorkerEntry* entry = catalog_.find(lease->worker_id)) {
      entry->cells.erase(lease->cell_index);
    }
    end_lease(lease->cell_index, /*penalize=*/true, now);
    return;
  }
  leases_.ack(ack.lease_id, true, now);
}

void FleetCoordinator::handle_heartbeat(Connection& conn,
                                        const WorkerHeartbeat& hb) {
  if (conn.worker_id == 0) {
    return;  // heartbeat before hello: not a registered worker
  }
  const auto now = Clock::now();
  catalog_.touch(conn.worker_id, now);
  for (const LeaseStatus& status : hb.leases) {
    Lease* lease = leases_.by_id(status.lease_id);
    if (lease == nullptr || lease->worker_id != conn.worker_id) {
      continue;  // stale lease (already reassigned); the worker will learn
    }
    leases_.renew(status.lease_id, now);
    // Renewal grant: restart the worker-side TTL clock.  Same lease id,
    // same spec by construction.
    send_to_worker(conn.worker_id,
                   lease_frame(LeaseGrant{
                       status.lease_id, config_.lease_ttl_ms,
                       records_[lease->cell_index].lease_base_slot,
                       wire_spec(lease->cell_index, lease->handoffs)}));
  }
}

void FleetCoordinator::handle_cell_report(Connection& conn,
                                          const CellReport& report) {
  Lease* lease = leases_.by_id(report.lease_id);
  if (lease == nullptr || lease->worker_id != conn.worker_id ||
      lease->cell_index != report.cell_index ||
      report.cell_index >= records_.size()) {
    m_stale_reports_->inc();
    return;
  }
  CellRecord& record = records_[report.cell_index];
  if (record.has_report && report.slots > record.last.slots) {
    leases_.note_progress(report.cell_index);
  }
  record.last = report;
  record.has_report = true;
  ingest_rows(report.cell_index, record, report);
}

void FleetCoordinator::handle_prediction(Connection& conn,
                                         const PredictionSet& set) {
  if (conn.worker_id == 0 || set.cell_index >= records_.size()) {
    m_stale_reports_->inc();
    return;  // never greeted, or a cell this fleet does not run
  }
  predictions_[set.cell_index] = set;
  m_predictions_rx_->inc();
}

std::map<std::uint32_t, PredictionSet> FleetCoordinator::predictions() const {
  std::lock_guard lock(state_mutex_);
  return predictions_;
}

void FleetCoordinator::ingest_rows(std::uint32_t cell_index,
                                   CellRecord& record,
                                   const CellReport& report) {
  std::uint64_t ingested = 0;
  for (const StoreRowUpdate& row : report.rows) {
    if (!store_metric_valid(row.metric)) {
      continue;
    }
    SeriesKey key;
    key.cell = cell_index;
    key.rnti = row.rnti;
    key.metric = static_cast<StoreMetric>(row.metric);
    auto& cursor = record.cursors[key.packed()];
    if (cursor.series == nullptr) {
      cursor.series = store_.series(key);
      if (cursor.series == nullptr) {
        continue;  // max_series shedding
      }
    }
    // Rebase the lease-local slot onto the cell's lifetime axis; clamp
    // non-decreasing across handoffs (the store's single-writer append
    // contract).
    std::uint64_t slot = record.lease_base_slot + row.slot;
    if (cursor.started && slot < cursor.last_slot) {
      slot = cursor.last_slot;
    }
    cursor.series->append(slot, row.value);
    cursor.last_slot = slot;
    cursor.started = true;
    ++ingested;
  }
  if (ingested > 0) {
    store_.note_rows_ingested(ingested);
  }
}

void FleetCoordinator::run_timers(Clock::time_point now) {
  // Dead-worker scan: heartbeat silence past the timeout.
  for (const std::uint64_t id :
       catalog_.silent_since(now, config_.heartbeat_timeout_s)) {
    declare_worker_dead(id, "heartbeat timeout");
  }
  // Lease-expiry scan: a worker that is alive but stopped listing (or
  // renewing) a lease loses the cell.
  for (const std::uint32_t cell : leases_.expired(now)) {
    const std::uint64_t lease_id = leases_.cell(cell).lease_id;
    const std::uint64_t holder = leases_.cell(cell).worker_id;
    m_leases_expired_->inc();
    if (WorkerEntry* entry = catalog_.find(holder)) {
      entry->cells.erase(cell);
    }
    end_lease(cell, /*penalize=*/true, now);
    m_reassignments_->inc();
    send_to_worker(holder, lease_revoke_frame(
                               LeaseRevoke{lease_id, cell, "lease expired"}));
  }
  // Assignment scan: place unassigned cells whose backoff has elapsed.
  for (const std::uint32_t cell : leases_.assignable(now)) {
    try_assign(cell, now);
  }
  m_workers_alive_->set(static_cast<std::int64_t>(catalog_.alive_count()));
  m_cells_active_->set(static_cast<std::int64_t>(leases_.active_count()));
}

void FleetCoordinator::declare_worker_dead(std::uint64_t worker_id,
                                           const char* /*why*/) {
  WorkerEntry* entry = catalog_.find(worker_id);
  if (entry == nullptr || !entry->alive) {
    return;
  }
  catalog_.mark_dead(worker_id);
  m_workers_dead_->inc();
  for (auto& conn : connections_) {
    if (conn->worker_id == worker_id) {
      close_connection(*conn);
    }
  }
  const auto now = Clock::now();
  const std::set<std::uint32_t> cells = entry->cells;
  for (const std::uint32_t cell : cells) {
    end_lease(cell, /*penalize=*/true, now);
    m_reassignments_->inc();
  }
  catalog_.remove(worker_id);
}

void FleetCoordinator::end_lease(std::uint32_t cell_index, bool penalize,
                                 Clock::time_point now) {
  CellRecord& record = records_[cell_index];
  if (record.has_report) {
    // Fold the lease's final report into the committed totals: this is
    // what keeps the lifetime view monotonic across the handoff.
    record.committed_slots += record.last.slots;
    record.committed_dcis += record.last.dcis;
    record.committed_retx += record.last.retx_dcis;
    record.committed_restarts += record.last.restarts;
  }
  record.last = CellReport{};
  record.has_report = false;
  leases_.release(cell_index, penalize, now);
}

void FleetCoordinator::try_assign(std::uint32_t cell_index,
                                  Clock::time_point now) {
  const auto worker_id = catalog_.pick_least_loaded();
  if (!worker_id) {
    return;  // fleet saturated or empty; retry next timer pass
  }
  WorkerEntry* entry = catalog_.find(*worker_id);
  Lease& lease = leases_.cell(cell_index);
  const unsigned incarnation = lease.handoffs;
  CellRecord& record = records_[cell_index];
  record.lease_base_slot = record.committed_slots;
  const std::uint64_t lease_id =
      leases_.grant(cell_index, *worker_id, now);
  entry->cells.insert(cell_index);
  m_leases_granted_->inc();
  send_to_worker(*worker_id,
                 lease_frame(LeaseGrant{lease_id, config_.lease_ttl_ms,
                                        record.lease_base_slot,
                                        wire_spec(cell_index, incarnation)}));
}

void FleetCoordinator::rebalance(Clock::time_point now) {
  const std::size_t alive = catalog_.alive_count();
  if (alive == 0) {
    return;
  }
  const std::size_t target =
      (leases_.n_cells() + alive - 1) / alive;  // ceil
  // Snapshot ids first: send_to_worker can declare a worker dead, which
  // erases it from the map we would otherwise be iterating.
  std::vector<std::uint64_t> ids;
  ids.reserve(catalog_.size());
  for (const auto& [id, entry] : catalog_.workers()) {
    if (entry.alive) {
      ids.push_back(id);
    }
  }
  for (const std::uint64_t id : ids) {
    WorkerEntry* entry = catalog_.find(id);
    if (entry == nullptr || !entry->alive || entry->load() <= target) {
      continue;
    }
    // Shed highest-index cells first (deterministic choice).
    std::vector<std::uint32_t> shed(entry->cells.rbegin(),
                                    entry->cells.rend());
    shed.resize(entry->load() - target);
    for (const std::uint32_t cell : shed) {
      const std::uint64_t lease_id = leases_.cell(cell).lease_id;
      m_revokes_->inc();
      if (WorkerEntry* holder = catalog_.find(id)) {
        holder->cells.erase(cell);
      }
      end_lease(cell, /*penalize=*/false, now);
      if (!send_to_worker(id, lease_revoke_frame(LeaseRevoke{
                                  lease_id, cell, "rebalance"}))) {
        break;  // worker died mid-shed; its leases are already released
      }
    }
  }
}

bool FleetCoordinator::send_to_worker(
    std::uint64_t worker_id, const std::vector<std::uint8_t>& frame) {
  WorkerEntry* entry = catalog_.find(worker_id);
  if (entry == nullptr || !entry->alive || entry->fd < 0) {
    return false;
  }
  if (send_all(entry->fd, frame.data(), frame.size())) {
    return true;
  }
  declare_worker_dead(worker_id, "send failed");
  return false;
}

WireCellSpec FleetCoordinator::wire_spec(std::uint32_t cell_index,
                                         unsigned incarnation) const {
  const CellRecord& record = records_[cell_index];
  WireCellSpec spec;
  spec.cell_index = cell_index;
  spec.name = record.spec.name;
  spec.preset = record.spec.preset;
  spec.pci = record.spec.pci;
  spec.n_ues = record.spec.n_ues;
  spec.ue_rate_bps = record.spec.ue_rate_bps;
  spec.ue_snr_db = record.spec.ue_snr_db;
  spec.sniffer_snr_db = record.spec.sniffer_snr_db;
  spec.seed = record.seed_base;
  spec.incarnation = incarnation;
  return spec;
}

// ---- Snapshots -------------------------------------------------------

std::size_t FleetCoordinator::worker_count() const {
  std::lock_guard lock(state_mutex_);
  return catalog_.alive_count();
}

std::vector<DistWorkerStatus> FleetCoordinator::workers() const {
  std::lock_guard lock(state_mutex_);
  std::vector<DistWorkerStatus> out;
  out.reserve(catalog_.size());
  for (const auto& [id, entry] : catalog_.workers()) {
    DistWorkerStatus status;
    status.id = id;
    status.name = entry.name;
    status.capacity = entry.capacity;
    status.alive = entry.alive;
    status.cells.assign(entry.cells.begin(), entry.cells.end());
    out.push_back(std::move(status));
  }
  return out;
}

std::vector<DistCellStatus> FleetCoordinator::cells() const {
  std::lock_guard lock(state_mutex_);
  std::vector<DistCellStatus> out;
  out.reserve(records_.size());
  for (std::uint32_t i = 0; i < records_.size(); ++i) {
    const CellRecord& record = records_[i];
    const Lease& lease = leases_.cell(i);
    DistCellStatus status;
    status.cell_index = i;
    status.name = record.spec.name;
    status.lease_state = lease.state;
    status.lease_id = lease.lease_id;
    status.worker_id = lease.worker_id;
    status.handoffs = lease.handoffs;
    status.slots = record.committed_slots +
                   (record.has_report ? record.last.slots : 0);
    status.dcis =
        record.committed_dcis + (record.has_report ? record.last.dcis : 0);
    status.cell_state = record.has_report ? record.last.cell_state : 1;
    out.push_back(std::move(status));
  }
  return out;
}

FleetSummary FleetCoordinator::summary() const {
  std::lock_guard lock(state_mutex_);
  FleetSummary s;
  std::vector<std::pair<double, std::uint32_t>> spare;
  spare.reserve(records_.size());
  s.cells.reserve(records_.size());
  for (std::uint32_t i = 0; i < records_.size(); ++i) {
    const CellRecord& record = records_[i];
    const Lease& lease = leases_.cell(i);
    const bool live =
        lease.state == LeaseState::kActive && record.has_report;
    CellSummary cs;
    cs.cell_index = i;
    cs.name = record.spec.name;
    // kBackoff is the honest description of an unassigned cell: down now,
    // the supervisor (here: the lease table) intends to bring it back.
    cs.state = live ? record.last.cell_state : 1;
    cs.slots = record.committed_slots +
               (record.has_report ? record.last.slots : 0);
    cs.dcis =
        record.committed_dcis + (record.has_report ? record.last.dcis : 0);
    cs.restarts = record.committed_restarts + lease.handoffs +
                  (record.has_report ? record.last.restarts : 0);
    cs.active_ues = live ? record.last.active_ues : 0;
    cs.dl_mbps = live ? record.last.dl_mbps : 0.0;
    cs.ul_mbps = live ? record.last.ul_mbps : 0.0;
    cs.retx_rate = live ? record.last.retx_rate : 0.0;
    cs.utilization = live ? record.last.utilization : 0.0;
    s.slot = std::max(s.slot, cs.slots);
    s.dcis_total += cs.dcis;
    s.restarts_total += cs.restarts;
    s.dl_mbps_total += cs.dl_mbps;
    s.ul_mbps_total += cs.ul_mbps;
    spare.emplace_back(live ? record.last.spare_prb_rate : 0.0, i);
    s.cells.push_back(std::move(cs));
  }
  double retx_sum = 0.0;
  std::uint64_t dcis = 0;
  for (const CellSummary& cs : s.cells) {
    retx_sum += cs.retx_rate * static_cast<double>(cs.dcis);
    dcis += cs.dcis;
  }
  s.retx_rate = dcis > 0 ? retx_sum / static_cast<double>(dcis) : 0.0;
  std::stable_sort(spare.begin(), spare.end(),
                   [](const auto& a, const auto& b) {
                     return a.first > b.first;
                   });
  s.spare_ranking.reserve(spare.size());
  for (const auto& [rate, index] : spare) {
    s.spare_ranking.push_back(index);
  }
  return s;
}

std::uint64_t FleetCoordinator::reassignments() const {
  return m_reassignments_->value();
}

bool FleetCoordinator::all_cells_active() const {
  std::lock_guard lock(state_mutex_);
  for (std::uint32_t i = 0; i < records_.size(); ++i) {
    if (leases_.cell(i).state != LeaseState::kActive) {
      return false;
    }
    if (!records_[i].has_report || records_[i].last.cell_state != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace nrs
