#include "dist/coordinator.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "common/backoff.h"
#include "net/socket_io.h"

namespace nrs {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::chrono::steady_clock::duration to_duration(double seconds) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(seconds));
}

LeaseState to_lease_state(std::uint8_t raw) {
  switch (raw) {
    case 1: return LeaseState::kPending;
    case 2: return LeaseState::kActive;
    default: return LeaseState::kUnassigned;
  }
}

}  // namespace

const char* to_string(CoordinatorRole role) {
  switch (role) {
    case CoordinatorRole::kPrimary: return "primary";
    case CoordinatorRole::kStandby: return "standby";
  }
  return "unknown";
}

bool parse_host_port(const std::string& endpoint, std::string& host,
                     std::uint16_t& port) {
  const auto colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon + 1 >= endpoint.size()) {
    return false;
  }
  const std::string port_str = endpoint.substr(colon + 1);
  char* end = nullptr;
  const unsigned long value = std::strtoul(port_str.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || value == 0 || value > 65535) {
    return false;
  }
  host = endpoint.substr(0, colon);
  if (host.empty()) {
    host = "127.0.0.1";
  }
  port = static_cast<std::uint16_t>(value);
  return true;
}

FleetCoordinator::FleetCoordinator(CoordinatorConfig config,
                                   MetricsRegistry* registry)
    : config_(std::move(config)),
      own_registry_(registry == nullptr ? std::make_unique<MetricsRegistry>()
                                        : nullptr),
      registry_(registry != nullptr ? registry : own_registry_.get()),
      leases_(config_.cells.size(),
              LeaseTable::Config{config_.lease_ttl_ms / 1000.0,
                                 config_.backoff_initial_s,
                                 config_.backoff_max_s,
                                 config_.backoff_factor}),
      store_(config_.store, registry_) {
  if (!config_.standby_of.empty()) {
    role_ = CoordinatorRole::kStandby;
    if (!parse_host_port(config_.standby_of, upstream_host_,
                         upstream_port_)) {
      throw std::invalid_argument(
          "FleetCoordinator: bad standby_of endpoint " + config_.standby_of);
    }
    // A standby's state (including the cell list) comes from the primary's
    // snapshot; epoch 0 marks "never synced".
    epoch_ = 0;
  } else {
    if (config_.cells.empty()) {
      throw std::invalid_argument("FleetCoordinator: no cells configured");
    }
    epoch_ = std::max<std::uint64_t>(1, config_.initial_epoch);
  }
  jitter_rng_ = Rng(splitmix64(config_.seed ^ 0x5AFE57A2ull) | 1ull);
  records_.reserve(config_.cells.size());
  for (std::uint32_t i = 0; i < config_.cells.size(); ++i) {
    CellRecord record;
    record.spec = config_.cells[i];
    if (record.spec.name.empty()) {
      record.spec.name = "cell" + std::to_string(i);
    }
    record.seed_base = splitmix64(
        config_.seed ^ splitmix64((static_cast<std::uint64_t>(i) << 32) |
                                  0x5EEDull));
    if (record.seed_base == 0) {
      record.seed_base = 1;  // 0 would disable the worker-side override
    }
    records_.push_back(std::move(record));
  }
  m_leases_granted_ = &registry_->counter("dist.leases_granted");
  m_leases_expired_ = &registry_->counter("dist.leases_expired");
  m_lease_refusals_ = &registry_->counter("dist.lease_refusals");
  m_reassignments_ = &registry_->counter("dist.reassignments");
  m_workers_dead_ = &registry_->counter("dist.workers_dead");
  m_stale_reports_ = &registry_->counter("dist.stale_reports");
  m_predictions_rx_ = &registry_->counter("dist.predictions_received");
  m_version_rejects_ = &registry_->counter("dist.version_rejects");
  m_revokes_ = &registry_->counter("dist.lease_revokes");
  m_promotions_ctr_ = &registry_->counter("dist.promotions");
  m_reconfirmed_ = &registry_->counter("dist.leases_reconfirmed");
  m_deposed_ctr_ = &registry_->counter("dist.deposed");
  m_not_primary_tx_ = &registry_->counter("dist.not_primary_sent");
  m_replica_events_tx_ = &registry_->counter("dist.replica_events_tx");
  m_replica_events_rx_ = &registry_->counter("dist.replica_events_rx");
  m_replica_snapshots_tx_ = &registry_->counter("dist.replica_snapshots_tx");
  m_replica_snapshots_rx_ = &registry_->counter("dist.replica_snapshots_rx");
  m_workers_alive_ = &registry_->gauge("dist.workers_alive");
  m_cells_active_ = &registry_->gauge("dist.cells_active");
  m_epoch_gauge_ = &registry_->gauge("dist.epoch");
  m_epoch_gauge_->set(static_cast<std::int64_t>(epoch_));

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("FleetCoordinator: socket() failed");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    throw std::runtime_error("FleetCoordinator: bad bind address " +
                             config_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("FleetCoordinator: cannot listen on " +
                             config_.bind_address + ":" +
                             std::to_string(config_.port));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  io_ = std::thread([this] { io_loop(); });
}

FleetCoordinator::~FleetCoordinator() { stop(); }

void FleetCoordinator::stop() {
  if (stopping_.exchange(true)) {
    if (io_.joinable()) {
      io_.join();
    }
    return;
  }
  if (io_.joinable()) {
    io_.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::lock_guard lock(state_mutex_);
  for (auto& conn : connections_) {
    if (conn->fd >= 0) {
      ::close(conn->fd);
      conn->fd = -1;
    }
  }
  connections_.clear();
  if (upstream_fd_ >= 0) {
    ::close(upstream_fd_);
    upstream_fd_ = -1;
  }
}

void FleetCoordinator::io_loop() {
  std::vector<pollfd> pfds;
  std::vector<Connection*> polled;
  while (!stopping_.load()) {
    maybe_connect_upstream();
    pfds.clear();
    polled.clear();
    pfds.push_back(pollfd{listen_fd_, POLLIN, 0});
    // Slot 1 is the replication link to the primary; poll() ignores
    // negative fds, so a primary (or a disconnected standby) pays nothing.
    pfds.push_back(pollfd{upstream_fd_, POLLIN, 0});
    {
      std::lock_guard lock(state_mutex_);
      // Sweep connections closed in the previous round.
      connections_.erase(
          std::remove_if(connections_.begin(), connections_.end(),
                         [](const std::unique_ptr<Connection>& c) {
                           return c->fd < 0;
                         }),
          connections_.end());
      for (auto& conn : connections_) {
        pfds.push_back(pollfd{conn->fd, POLLIN, 0});
        polled.push_back(conn.get());
      }
    }
    const int ready = ::poll(pfds.data(), pfds.size(), /*timeout_ms=*/20);
    const auto now = Clock::now();
    std::lock_guard lock(state_mutex_);
    if (ready > 0) {
      for (std::size_t i = 2; i < pfds.size(); ++i) {
        if (pfds[i].revents != 0 && polled[i - 2]->fd >= 0) {
          read_connection(*polled[i - 2]);
        }
      }
      if (pfds[1].revents != 0 && upstream_fd_ >= 0) {
        read_upstream();
      }
      if ((pfds[0].revents & POLLIN) != 0) {
        handle_accept();
      }
    }
    run_timers(now);
  }
}

void FleetCoordinator::handle_accept() {
  const int fd = ::accept(listen_fd_, nullptr, nullptr);
  if (fd < 0) {
    return;
  }
  if (connections_.size() >= config_.max_workers) {
    ::close(fd);
    return;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  // Bound synchronous sends: a worker that stops draining its socket
  // fails the send and is declared dead, instead of wedging the io thread.
  timeval send_timeout{};
  send_timeout.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &send_timeout,
               sizeof(send_timeout));
  auto conn = std::make_unique<Connection>();
  conn->fd = fd;
  connections_.push_back(std::move(conn));
}

void FleetCoordinator::close_connection(Connection& conn) {
  if (conn.fd >= 0) {
    ::close(conn.fd);
    conn.fd = -1;
  }
}

void FleetCoordinator::read_connection(Connection& conn) {
  std::uint8_t buf[65536];
  const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
  if (n <= 0) {
    if (n < 0 &&
        (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
      return;
    }
    // EOF: the fast death-detection path — a kill -9'd worker's kernel
    // closes the socket long before the heartbeat timeout fires.
    const std::uint64_t worker = conn.worker_id;
    close_connection(conn);
    if (worker != 0) {
      declare_worker_dead(worker, "socket closed");
    }
    return;
  }
  conn.parser.feed({buf, static_cast<std::size_t>(n)});
  while (auto frame = conn.parser.next()) {
    handle_frame(conn, *frame);
    if (conn.fd < 0) {
      return;  // the frame handler closed the connection
    }
  }
  if (conn.parser.error()) {
    if (const auto rejected = conn.parser.rejected_version()) {
      m_version_rejects_->inc();
      VersionReject reject;
      reject.rejected = *rejected;
      reject.message = conn.parser.error_message();
      const std::vector<std::uint8_t> reply = version_reject_frame(reject);
      send_all(conn.fd, reply.data(), reply.size());
    }
    const std::uint64_t worker = conn.worker_id;
    close_connection(conn);
    if (worker != 0) {
      declare_worker_dead(worker, "protocol error");
    }
  }
}

void FleetCoordinator::handle_frame(Connection& conn, const Frame& frame) {
  switch (frame.type) {
    case FrameType::kWorkerHello: {
      if (auto hello = decode_worker_hello(frame.payload)) {
        handle_worker_hello(conn, *hello);
      }
      return;
    }
    case FrameType::kStandbyHello: {
      if (auto hello = decode_standby_hello(frame.payload)) {
        handle_standby_hello(conn, *hello);
      }
      return;
    }
    case FrameType::kLeaseAck: {
      if (auto ack = decode_lease_ack(frame.payload)) {
        handle_lease_ack(conn, *ack);
      }
      return;
    }
    case FrameType::kWorkerHeartbeat: {
      if (auto hb = decode_worker_heartbeat(frame.payload)) {
        handle_heartbeat(conn, *hb);
      }
      return;
    }
    case FrameType::kCellReport: {
      if (auto report = decode_cell_report(frame.payload)) {
        handle_cell_report(conn, *report);
      }
      return;
    }
    case FrameType::kCellReportBatch: {
      // v4 workers fold all their leases' reports into one frame; each
      // element goes through the same per-report path.
      if (auto batch = decode_cell_report_batch(frame.payload)) {
        for (const CellReport& report : batch->reports) {
          handle_cell_report(conn, report);
        }
      }
      return;
    }
    case FrameType::kPrediction: {
      if (auto set = decode_prediction(frame.payload)) {
        handle_prediction(conn, *set);
      }
      return;
    }
    default:
      return;  // well-framed but not part of the coordination protocol
  }
}

void FleetCoordinator::handle_worker_hello(Connection& conn,
                                           const WorkerHello& hello) {
  if (hello.epoch > epoch_) {
    // The worker follows a newer primary: a standby promoted past us.
    fence_self(hello.epoch);
  }
  if (role_ == CoordinatorRole::kStandby || deposed_) {
    m_not_primary_tx_->inc();
    NotPrimary info;
    info.epoch = epoch_;
    info.message =
        role_ == CoordinatorRole::kStandby ? "standby" : "deposed";
    const std::vector<std::uint8_t> reply = not_primary_frame(info);
    send_all(conn.fd, reply.data(), reply.size());
    close_connection(conn);
    return;
  }
  if (conn.worker_id != 0) {
    return;  // duplicate hello; keep the first registration
  }
  const auto now = Clock::now();
  const std::string name = hello.name.empty() ? "worker" : hello.name;
  const std::uint32_t capacity = std::max<std::uint32_t>(1, hello.capacity);
  conn.worker_id =
      catalog_.add(name, capacity, hello.pool_threads, conn.fd, now);
  ReplicaEvent event;
  event.kind = ReplicaEventKind::kWorkerJoin;
  event.worker_id = conn.worker_id;
  event.worker_name = name;
  event.capacity = capacity;
  replicate(std::move(event));
  if (config_.rebalance_on_join && now >= rebalance_hold_until_) {
    rebalance(now);
  }
}

void FleetCoordinator::handle_standby_hello(Connection& conn,
                                            const StandbyHello& /*hello*/) {
  if (conn.worker_id != 0 || conn.is_replica) {
    return;
  }
  if (role_ != CoordinatorRole::kPrimary || deposed_) {
    m_not_primary_tx_->inc();
    NotPrimary info;
    info.epoch = epoch_;
    info.message =
        role_ == CoordinatorRole::kStandby ? "standby" : "deposed";
    const std::vector<std::uint8_t> reply = not_primary_frame(info);
    send_all(conn.fd, reply.data(), reply.size());
    close_connection(conn);
    return;
  }
  conn.is_replica = true;
  const std::vector<std::uint8_t> frame =
      replica_snapshot_frame(build_snapshot());
  if (!send_all(conn.fd, frame.data(), frame.size())) {
    close_connection(conn);
    return;
  }
  m_replica_snapshots_tx_->inc();
}

void FleetCoordinator::handle_lease_ack(Connection& conn,
                                        const LeaseAck& ack) {
  if (ack.epoch > epoch_) {
    fence_self(ack.epoch);
    return;
  }
  Lease* lease = leases_.by_id(ack.lease_id);
  if (lease == nullptr || lease->worker_id != conn.worker_id) {
    m_stale_reports_->inc();
    return;
  }
  const auto now = Clock::now();
  if (!ack.accepted) {
    m_lease_refusals_->inc();
    if (WorkerEntry* entry = catalog_.find(lease->worker_id)) {
      entry->cells.erase(lease->cell_index);
    }
    end_lease(lease->cell_index, /*penalize=*/true, now);
    return;
  }
  leases_.ack(ack.lease_id, true, now);
  ReplicaEvent event;
  event.kind = ReplicaEventKind::kLeaseRenew;
  event.cell_index = lease->cell_index;
  event.lease_id = lease->lease_id;
  event.worker_id = lease->worker_id;
  event.lease_state = static_cast<std::uint8_t>(lease->state);
  event.handoffs = lease->handoffs;
  replicate(std::move(event));
}

void FleetCoordinator::handle_heartbeat(Connection& conn,
                                        const WorkerHeartbeat& hb) {
  if (conn.worker_id == 0) {
    return;  // heartbeat before hello: not a registered worker
  }
  if (hb.epoch > epoch_) {
    fence_self(hb.epoch);
    return;
  }
  const auto now = Clock::now();
  catalog_.touch(conn.worker_id, now);
  if (deposed_) {
    return;  // fenced: stop renewing, the new primary owns these leases
  }
  for (const LeaseStatus& status : hb.leases) {
    Lease* lease = leases_.by_id(status.lease_id);
    if (lease == nullptr) {
      continue;  // stale lease (already reassigned); the worker will learn
    }
    if (lease->worker_id != conn.worker_id) {
      // Re-confirmation: the lease was mirrored from the dead primary and
      // its recorded holder is a ghost (no socket).  The worker kept the
      // cell running locally and reconnected here — rebind the same lease
      // to its new registration instead of reassigning the cell.
      WorkerEntry* holder = catalog_.find(lease->worker_id);
      const bool ghost =
          holder == nullptr || !holder->alive || holder->fd < 0;
      if (!ghost) {
        continue;  // live holder elsewhere: a stale claim, ignore it
      }
      if (holder != nullptr) {
        holder->cells.erase(lease->cell_index);
        if (holder->cells.empty()) {
          const std::uint64_t ghost_id = holder->id;
          catalog_.remove(ghost_id);
          ReplicaEvent leave;
          leave.kind = ReplicaEventKind::kWorkerLeave;
          leave.worker_id = ghost_id;
          replicate(std::move(leave));
        }
      }
      leases_.rebind(status.lease_id, conn.worker_id);
      if (WorkerEntry* mine = catalog_.find(conn.worker_id)) {
        mine->cells.insert(lease->cell_index);
      }
      ++reconfirmations_;
      m_reconfirmed_->inc();
      ReplicaEvent event;
      event.kind = ReplicaEventKind::kLeaseRenew;
      event.cell_index = lease->cell_index;
      event.lease_id = lease->lease_id;
      event.worker_id = conn.worker_id;
      event.lease_state = static_cast<std::uint8_t>(lease->state);
      event.handoffs = lease->handoffs;
      replicate(std::move(event));
    }
    leases_.renew(status.lease_id, now);
    // Renewal grant: restart the worker-side TTL clock (and teach a
    // re-confirmed worker the current epoch).  Same lease id, same spec
    // by construction.
    LeaseGrant grant;
    grant.lease_id = status.lease_id;
    grant.ttl_ms = config_.lease_ttl_ms;
    grant.base_slot = records_[lease->cell_index].lease_base_slot;
    grant.epoch = epoch_;
    grant.spec = wire_spec(lease->cell_index, lease->handoffs);
    send_to_worker(conn.worker_id, lease_frame(grant));
  }
}

void FleetCoordinator::handle_cell_report(Connection& conn,
                                          const CellReport& report) {
  if (report.epoch > epoch_) {
    fence_self(report.epoch);
    return;
  }
  Lease* lease = leases_.by_id(report.lease_id);
  if (lease == nullptr || lease->worker_id != conn.worker_id ||
      lease->cell_index != report.cell_index ||
      report.cell_index >= records_.size()) {
    m_stale_reports_->inc();
    return;
  }
  CellRecord& record = records_[report.cell_index];
  if (record.has_report && report.slots > record.last.slots) {
    leases_.note_progress(report.cell_index);
  }
  record.last = report;
  record.has_report = true;
  const bool mirror = has_replica();
  std::vector<StoreRowUpdate> mirrored_rows;
  ingest_rows(report.cell_index, record, report,
              mirror ? &mirrored_rows : nullptr);
  if (mirror) {
    ReplicaEvent totals;
    totals.kind = ReplicaEventKind::kCellTotals;
    totals.cell_index = report.cell_index;
    totals.lease_id = report.lease_id;
    totals.worker_id = conn.worker_id;
    totals.lease_state = static_cast<std::uint8_t>(lease->state);
    totals.handoffs = lease->handoffs;
    totals.committed_slots = record.committed_slots;
    totals.committed_dcis = record.committed_dcis;
    totals.committed_retx = record.committed_retx;
    totals.committed_restarts = record.committed_restarts;
    totals.lease_base_slot = record.lease_base_slot;
    totals.has_report = true;
    totals.live = report;
    totals.live.rows.clear();
    replicate(std::move(totals));
    if (!mirrored_rows.empty()) {
      ReplicaEvent rows;
      rows.kind = ReplicaEventKind::kStoreRows;
      rows.cell_index = report.cell_index;
      rows.rows = std::move(mirrored_rows);
      replicate(std::move(rows));
    }
  }
}

void FleetCoordinator::handle_prediction(Connection& conn,
                                         const PredictionSet& set) {
  if (conn.worker_id == 0 || set.cell_index >= records_.size()) {
    m_stale_reports_->inc();
    return;  // never greeted, or a cell this fleet does not run
  }
  predictions_[set.cell_index] = set;
  m_predictions_rx_->inc();
}

std::map<std::uint32_t, PredictionSet> FleetCoordinator::predictions() const {
  std::lock_guard lock(state_mutex_);
  return predictions_;
}

void FleetCoordinator::ingest_rows(
    std::uint32_t cell_index, CellRecord& record, const CellReport& report,
    std::vector<StoreRowUpdate>* replicated) {
  std::uint64_t ingested = 0;
  for (const StoreRowUpdate& row : report.rows) {
    if (!store_metric_valid(row.metric)) {
      continue;
    }
    SeriesKey key;
    key.cell = cell_index;
    key.rnti = row.rnti;
    key.metric = static_cast<StoreMetric>(row.metric);
    auto& cursor = record.cursors[key.packed()];
    if (cursor.series == nullptr) {
      cursor.series = store_.series(key);
      if (cursor.series == nullptr) {
        continue;  // max_series shedding
      }
    }
    // Rebase the lease-local slot onto the cell's lifetime axis; clamp
    // non-decreasing across handoffs (the store's single-writer append
    // contract).
    std::uint64_t slot = record.lease_base_slot + row.slot;
    if (cursor.started && slot < cursor.last_slot) {
      slot = cursor.last_slot;
    }
    cursor.series->append(slot, row.value);
    cursor.last_slot = slot;
    cursor.started = true;
    ++ingested;
    if (replicated != nullptr) {
      StoreRowUpdate global = row;
      global.slot = slot;
      replicated->push_back(global);
    }
  }
  if (ingested > 0) {
    store_.note_rows_ingested(ingested);
  }
}

void FleetCoordinator::run_timers(Clock::time_point now) {
  if (role_ == CoordinatorRole::kStandby) {
    standby_timers(now);
    return;
  }
  // Dead-worker scan: heartbeat silence past the timeout.  Ghost entries
  // mirrored at promotion age out the same way when their worker never
  // reconnects, releasing the cells for normal reassignment.
  for (const std::uint64_t id :
       catalog_.silent_since(now, config_.heartbeat_timeout_s)) {
    declare_worker_dead(id, "heartbeat timeout");
  }
  if (!deposed_) {
    // Lease-expiry scan: a worker that is alive but stopped listing (or
    // renewing) a lease loses the cell.
    for (const std::uint32_t cell : leases_.expired(now)) {
      const std::uint64_t lease_id = leases_.cell(cell).lease_id;
      const std::uint64_t holder = leases_.cell(cell).worker_id;
      m_leases_expired_->inc();
      if (WorkerEntry* entry = catalog_.find(holder)) {
        entry->cells.erase(cell);
      }
      end_lease(cell, /*penalize=*/true, now);
      m_reassignments_->inc();
      LeaseRevoke revoke;
      revoke.lease_id = lease_id;
      revoke.cell_index = cell;
      revoke.reason = "lease expired";
      revoke.epoch = epoch_;
      send_to_worker(holder, lease_revoke_frame(revoke));
    }
    // Assignment scan: place unassigned cells whose backoff has elapsed.
    for (const std::uint32_t cell : leases_.assignable(now)) {
      try_assign(cell, now);
    }
    // Replication keepalive: lets a standby tell an idle primary from a
    // dead one without waiting for fleet traffic.
    if (now >= next_replica_heartbeat_) {
      next_replica_heartbeat_ =
          now + to_duration(config_.replication_heartbeat_s);
      const std::vector<std::uint8_t> beat = heartbeat_frame();
      for (auto& conn : connections_) {
        if (conn->is_replica && conn->fd >= 0 &&
            !send_all(conn->fd, beat.data(), beat.size())) {
          close_connection(*conn);
        }
      }
    }
  }
  m_workers_alive_->set(static_cast<std::int64_t>(catalog_.alive_count()));
  m_cells_active_->set(static_cast<std::int64_t>(leases_.active_count()));
}

void FleetCoordinator::declare_worker_dead(std::uint64_t worker_id,
                                           const char* /*why*/) {
  WorkerEntry* entry = catalog_.find(worker_id);
  if (entry == nullptr || !entry->alive) {
    return;
  }
  catalog_.mark_dead(worker_id);
  m_workers_dead_->inc();
  for (auto& conn : connections_) {
    if (conn->worker_id == worker_id) {
      close_connection(*conn);
    }
  }
  const auto now = Clock::now();
  const std::set<std::uint32_t> cells = entry->cells;
  for (const std::uint32_t cell : cells) {
    end_lease(cell, /*penalize=*/true, now);
    m_reassignments_->inc();
  }
  catalog_.remove(worker_id);
  ReplicaEvent event;
  event.kind = ReplicaEventKind::kWorkerLeave;
  event.worker_id = worker_id;
  replicate(std::move(event));
}

void FleetCoordinator::end_lease(std::uint32_t cell_index, bool penalize,
                                 Clock::time_point now) {
  CellRecord& record = records_[cell_index];
  if (record.has_report) {
    // Fold the lease's final report into the committed totals: this is
    // what keeps the lifetime view monotonic across the handoff.
    record.committed_slots += record.last.slots;
    record.committed_dcis += record.last.dcis;
    record.committed_retx += record.last.retx_dcis;
    record.committed_restarts += record.last.restarts;
  }
  record.last = CellReport{};
  record.has_report = false;
  leases_.release(cell_index, penalize, now);
  ReplicaEvent event;
  event.kind = ReplicaEventKind::kLeaseRelease;
  event.cell_index = cell_index;
  event.lease_state =
      static_cast<std::uint8_t>(LeaseState::kUnassigned);
  event.handoffs = leases_.cell(cell_index).handoffs;
  event.committed_slots = record.committed_slots;
  event.committed_dcis = record.committed_dcis;
  event.committed_retx = record.committed_retx;
  event.committed_restarts = record.committed_restarts;
  replicate(std::move(event));
}

void FleetCoordinator::try_assign(std::uint32_t cell_index,
                                  Clock::time_point now) {
  const auto worker_id = catalog_.pick_least_loaded();
  if (!worker_id) {
    return;  // fleet saturated or empty; retry next timer pass
  }
  WorkerEntry* entry = catalog_.find(*worker_id);
  Lease& lease = leases_.cell(cell_index);
  const unsigned incarnation = lease.handoffs;
  CellRecord& record = records_[cell_index];
  record.lease_base_slot = record.committed_slots;
  const std::uint64_t lease_id =
      leases_.grant(cell_index, *worker_id, now);
  entry->cells.insert(cell_index);
  m_leases_granted_->inc();
  ReplicaEvent event;
  event.kind = ReplicaEventKind::kLeaseGrant;
  event.cell_index = cell_index;
  event.lease_id = lease_id;
  event.worker_id = *worker_id;
  event.lease_state = static_cast<std::uint8_t>(LeaseState::kPending);
  event.handoffs = incarnation;
  event.lease_base_slot = record.lease_base_slot;
  replicate(std::move(event));
  LeaseGrant grant;
  grant.lease_id = lease_id;
  grant.ttl_ms = config_.lease_ttl_ms;
  grant.base_slot = record.lease_base_slot;
  grant.epoch = epoch_;
  grant.spec = wire_spec(cell_index, incarnation);
  send_to_worker(*worker_id, lease_frame(grant));
}

void FleetCoordinator::rebalance(Clock::time_point now) {
  const std::size_t alive = catalog_.alive_count();
  if (alive == 0) {
    return;
  }
  const std::size_t target =
      (leases_.n_cells() + alive - 1) / alive;  // ceil
  // Snapshot ids first: send_to_worker can declare a worker dead, which
  // erases it from the map we would otherwise be iterating.
  std::vector<std::uint64_t> ids;
  ids.reserve(catalog_.size());
  for (const auto& [id, entry] : catalog_.workers()) {
    if (entry.alive && entry.fd >= 0) {
      ids.push_back(id);  // ghosts are re-confirmation targets, not shed
    }
  }
  for (const std::uint64_t id : ids) {
    WorkerEntry* entry = catalog_.find(id);
    if (entry == nullptr || !entry->alive || entry->load() <= target) {
      continue;
    }
    // Shed highest-index cells first (deterministic choice).
    std::vector<std::uint32_t> shed(entry->cells.rbegin(),
                                    entry->cells.rend());
    shed.resize(entry->load() - target);
    for (const std::uint32_t cell : shed) {
      const std::uint64_t lease_id = leases_.cell(cell).lease_id;
      m_revokes_->inc();
      if (WorkerEntry* holder = catalog_.find(id)) {
        holder->cells.erase(cell);
      }
      end_lease(cell, /*penalize=*/false, now);
      LeaseRevoke revoke;
      revoke.lease_id = lease_id;
      revoke.cell_index = cell;
      revoke.reason = "rebalance";
      revoke.epoch = epoch_;
      if (!send_to_worker(id, lease_revoke_frame(revoke))) {
        break;  // worker died mid-shed; its leases are already released
      }
    }
  }
}

bool FleetCoordinator::send_to_worker(
    std::uint64_t worker_id, const std::vector<std::uint8_t>& frame) {
  WorkerEntry* entry = catalog_.find(worker_id);
  if (entry == nullptr || !entry->alive || entry->fd < 0) {
    return false;
  }
  // A short write (kPartial) leaves a torn frame on the stream: the
  // connection is unusable for framed traffic, exactly like a hard
  // failure — never fall through and "succeed" with a truncated frame.
  if (send_exact(entry->fd, frame.data(), frame.size()) == SendResult::kOk) {
    return true;
  }
  declare_worker_dead(worker_id, "send failed");
  return false;
}

WireCellSpec FleetCoordinator::wire_spec(std::uint32_t cell_index,
                                         unsigned incarnation) const {
  const CellRecord& record = records_[cell_index];
  WireCellSpec spec;
  spec.cell_index = cell_index;
  spec.name = record.spec.name;
  spec.preset = record.spec.preset;
  spec.pci = record.spec.pci;
  spec.n_ues = record.spec.n_ues;
  spec.ue_rate_bps = record.spec.ue_rate_bps;
  spec.ue_snr_db = record.spec.ue_snr_db;
  spec.sniffer_snr_db = record.spec.sniffer_snr_db;
  spec.seed = record.seed_base;
  spec.incarnation = incarnation;
  return spec;
}

// ---- Replication: primary side ---------------------------------------

bool FleetCoordinator::has_replica() const {
  for (const auto& conn : connections_) {
    if (conn->is_replica && conn->fd >= 0) {
      return true;
    }
  }
  return false;
}

void FleetCoordinator::replicate(ReplicaEvent event) {
  event.epoch = epoch_;
  std::vector<std::uint8_t> frame;  // encoded lazily, once
  for (auto& conn : connections_) {
    if (!conn->is_replica || conn->fd < 0) {
      continue;
    }
    if (frame.empty()) {
      frame = replica_event_frame(event);
    }
    if (!send_all(conn->fd, frame.data(), frame.size())) {
      // Drop the tail; the standby redials and re-snapshots.
      close_connection(*conn);
      continue;
    }
    m_replica_events_tx_->inc();
  }
}

ReplicaSnapshot FleetCoordinator::build_snapshot() const {
  ReplicaSnapshot snapshot;
  snapshot.epoch = epoch_;
  snapshot.next_lease_id = leases_.next_lease_id();
  for (const auto& [id, entry] : catalog_.workers()) {
    if (!entry.alive) {
      continue;
    }
    ReplicaWorker worker;
    worker.worker_id = id;
    worker.name = entry.name;
    worker.capacity = entry.capacity;
    snapshot.workers.push_back(std::move(worker));
  }
  snapshot.cells.reserve(records_.size());
  for (std::uint32_t i = 0; i < records_.size(); ++i) {
    const CellRecord& record = records_[i];
    const Lease& lease = leases_.cell(i);
    ReplicaCell cell;
    cell.spec = wire_spec(i, lease.handoffs);
    cell.lease_state = static_cast<std::uint8_t>(lease.state);
    cell.lease_id = lease.lease_id;
    cell.worker_id = lease.worker_id;
    cell.handoffs = lease.handoffs;
    cell.committed_slots = record.committed_slots;
    cell.committed_dcis = record.committed_dcis;
    cell.committed_retx = record.committed_retx;
    cell.committed_restarts = record.committed_restarts;
    cell.lease_base_slot = record.lease_base_slot;
    cell.has_report = record.has_report;
    cell.live = record.last;
    cell.live.rows.clear();
    snapshot.cells.push_back(std::move(cell));
  }
  return snapshot;
}

void FleetCoordinator::fence_self(std::uint64_t /*seen_epoch*/) {
  if (deposed_) {
    return;
  }
  deposed_ = true;
  m_deposed_ctr_->inc();
}

// ---- Replication: standby side ---------------------------------------

void FleetCoordinator::maybe_connect_upstream() {
  if (role_ != CoordinatorRole::kStandby || upstream_fd_ >= 0 ||
      stopping_.load()) {
    return;
  }
  const auto now = Clock::now();
  if (now < upstream_retry_at_) {
    return;
  }
  // Schedule the next attempt up front so every failure path below is
  // covered; a success resets the escalation.
  const BackoffPolicy policy{config_.standby_backoff_initial_s,
                             config_.standby_backoff_max_s, 2.0, 0.5};
  const double delay =
      jittered_backoff_delay(policy, upstream_attempts_, jitter_rng_);
  upstream_retry_at_ = now + to_duration(delay);
  ++upstream_attempts_;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(upstream_port_);
  if (::inet_pton(AF_INET, upstream_host_.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  timeval send_timeout{};
  send_timeout.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &send_timeout,
               sizeof(send_timeout));
  StandbyHello hello;
  hello.name = "standby:" + std::to_string(port_);
  const std::vector<std::uint8_t> frame = standby_hello_frame(hello);
  if (!send_all(fd, frame.data(), frame.size())) {
    ::close(fd);
    return;
  }
  std::lock_guard lock(state_mutex_);
  upstream_fd_ = fd;
  upstream_parser_ = FrameParser{};
  upstream_last_rx_ = Clock::now();
  upstream_attempts_ = 0;
}

void FleetCoordinator::read_upstream() {
  std::uint8_t buf[65536];
  const ssize_t n = ::recv(upstream_fd_, buf, sizeof(buf), 0);
  const auto now = Clock::now();
  if (n <= 0) {
    if (n < 0 &&
        (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
      return;
    }
    // EOF: the primary died (or dropped us).  Promotion is standby_timers'
    // decision — it waits promote_after_s in case this was a blip.
    drop_upstream(now);
    return;
  }
  upstream_last_rx_ = now;
  upstream_parser_.feed({buf, static_cast<std::size_t>(n)});
  while (auto frame = upstream_parser_.next()) {
    handle_replication_frame(*frame);
    if (upstream_fd_ < 0 || role_ != CoordinatorRole::kStandby) {
      return;  // dropped (kNotPrimary) or promoted mid-batch
    }
  }
  if (upstream_parser_.error()) {
    drop_upstream(now);
  }
}

void FleetCoordinator::handle_replication_frame(const Frame& frame) {
  switch (frame.type) {
    case FrameType::kReplicaSnapshot: {
      if (auto snapshot = decode_replica_snapshot(frame.payload)) {
        m_replica_snapshots_rx_->inc();
        apply_snapshot(*snapshot, Clock::now());
      } else {
        drop_upstream(Clock::now());
      }
      return;
    }
    case FrameType::kReplicaEvent: {
      if (auto event = decode_replica_event(frame.payload)) {
        m_replica_events_rx_->inc();
        apply_event(*event, Clock::now());
      } else {
        drop_upstream(Clock::now());
      }
      return;
    }
    case FrameType::kHeartbeat:
      return;  // keepalive; upstream_last_rx_ already advanced
    case FrameType::kNotPrimary:
      // We dialed something that is not the acting primary (another
      // standby, or a deposed resurrection).  Drop and redial — it may
      // promote, or our address list may be racing a failover.
      drop_upstream(Clock::now());
      return;
    default:
      return;
  }
}

void FleetCoordinator::apply_snapshot(const ReplicaSnapshot& snapshot,
                                      Clock::time_point now) {
  records_.clear();
  records_.reserve(snapshot.cells.size());
  leases_.reset(snapshot.cells.size());
  catalog_.clear();
  for (const ReplicaWorker& worker : snapshot.workers) {
    catalog_.restore(worker.worker_id, worker.name,
                     std::max<std::uint32_t>(1, worker.capacity), now);
  }
  for (std::uint32_t i = 0; i < snapshot.cells.size(); ++i) {
    const ReplicaCell& cell = snapshot.cells[i];
    CellRecord record;
    record.spec.name = cell.spec.name;
    record.spec.preset = cell.spec.preset;
    record.spec.pci = cell.spec.pci;
    record.spec.n_ues = cell.spec.n_ues;
    record.spec.ue_rate_bps = cell.spec.ue_rate_bps;
    record.spec.ue_snr_db = cell.spec.ue_snr_db;
    record.spec.sniffer_snr_db = cell.spec.sniffer_snr_db;
    record.seed_base = cell.spec.seed;
    record.committed_slots = cell.committed_slots;
    record.committed_dcis = cell.committed_dcis;
    record.committed_retx = cell.committed_retx;
    record.committed_restarts = cell.committed_restarts;
    record.lease_base_slot = cell.lease_base_slot;
    record.last = cell.live;
    record.has_report = cell.has_report;
    records_.push_back(std::move(record));
    leases_.restore(i, to_lease_state(cell.lease_state), cell.lease_id,
                    cell.worker_id, cell.handoffs, now);
    if (cell.worker_id != 0 &&
        to_lease_state(cell.lease_state) != LeaseState::kUnassigned) {
      if (WorkerEntry* holder = catalog_.find(cell.worker_id)) {
        holder->cells.insert(i);
      }
    }
  }
  leases_.set_next_lease_id(snapshot.next_lease_id);
  if (snapshot.epoch > epoch_) {
    epoch_ = snapshot.epoch;
    m_epoch_gauge_->set(static_cast<std::int64_t>(epoch_));
  }
  synced_ = true;
}

void FleetCoordinator::apply_event(const ReplicaEvent& event,
                                   Clock::time_point now) {
  switch (event.kind) {
    case ReplicaEventKind::kWorkerJoin:
      catalog_.restore(event.worker_id, event.worker_name,
                       std::max<std::uint32_t>(1, event.capacity), now);
      break;
    case ReplicaEventKind::kWorkerLeave:
      catalog_.remove(event.worker_id);
      break;
    case ReplicaEventKind::kLeaseGrant:
    case ReplicaEventKind::kLeaseRenew: {
      if (event.cell_index >= records_.size()) {
        break;
      }
      const std::uint64_t prev = leases_.cell(event.cell_index).worker_id;
      if (prev != 0 && prev != event.worker_id) {
        if (WorkerEntry* old_holder = catalog_.find(prev)) {
          old_holder->cells.erase(event.cell_index);
        }
      }
      const LeaseState state = event.kind == ReplicaEventKind::kLeaseGrant
                                   ? LeaseState::kPending
                                   : to_lease_state(event.lease_state);
      leases_.restore(event.cell_index, state, event.lease_id,
                      event.worker_id, event.handoffs, now);
      leases_.set_next_lease_id(event.lease_id);
      if (event.kind == ReplicaEventKind::kLeaseGrant) {
        records_[event.cell_index].lease_base_slot = event.lease_base_slot;
      }
      if (WorkerEntry* holder = catalog_.find(event.worker_id)) {
        holder->cells.insert(event.cell_index);
      }
      break;
    }
    case ReplicaEventKind::kLeaseRelease: {
      if (event.cell_index >= records_.size()) {
        break;
      }
      const std::uint64_t prev = leases_.cell(event.cell_index).worker_id;
      if (prev != 0) {
        if (WorkerEntry* old_holder = catalog_.find(prev)) {
          old_holder->cells.erase(event.cell_index);
        }
      }
      leases_.restore(event.cell_index, LeaseState::kUnassigned, 0, 0,
                      event.handoffs, now);
      CellRecord& record = records_[event.cell_index];
      record.committed_slots = event.committed_slots;
      record.committed_dcis = event.committed_dcis;
      record.committed_retx = event.committed_retx;
      record.committed_restarts = event.committed_restarts;
      record.last = CellReport{};
      record.has_report = false;
      break;
    }
    case ReplicaEventKind::kCellTotals: {
      if (event.cell_index >= records_.size()) {
        break;
      }
      CellRecord& record = records_[event.cell_index];
      record.committed_slots = event.committed_slots;
      record.committed_dcis = event.committed_dcis;
      record.committed_retx = event.committed_retx;
      record.committed_restarts = event.committed_restarts;
      record.lease_base_slot = event.lease_base_slot;
      record.last = event.live;
      record.has_report = event.has_report;
      break;
    }
    case ReplicaEventKind::kStoreRows:
      apply_store_rows(event.cell_index, event.rows);
      break;
  }
  if (event.epoch > epoch_) {
    epoch_ = event.epoch;
    m_epoch_gauge_->set(static_cast<std::int64_t>(epoch_));
  }
}

void FleetCoordinator::apply_store_rows(
    std::uint32_t cell_index, const std::vector<StoreRowUpdate>& rows) {
  if (cell_index >= records_.size()) {
    return;
  }
  CellRecord& record = records_[cell_index];
  std::uint64_t ingested = 0;
  for (const StoreRowUpdate& row : rows) {
    if (!store_metric_valid(row.metric)) {
      continue;
    }
    SeriesKey key;
    key.cell = cell_index;
    key.rnti = row.rnti;
    key.metric = static_cast<StoreMetric>(row.metric);
    auto& cursor = record.cursors[key.packed()];
    if (cursor.series == nullptr) {
      cursor.series = store_.series(key);
      if (cursor.series == nullptr) {
        continue;  // max_series shedding
      }
    }
    // Slots arrive already rebased; the clamp only defends against a
    // cursor reset after a replication reconnect.
    std::uint64_t slot = row.slot;
    if (cursor.started && slot < cursor.last_slot) {
      slot = cursor.last_slot;
    }
    cursor.series->append(slot, row.value);
    cursor.last_slot = slot;
    cursor.started = true;
    ++ingested;
  }
  if (ingested > 0) {
    store_.note_rows_ingested(ingested);
  }
}

void FleetCoordinator::drop_upstream(Clock::time_point /*now*/) {
  if (upstream_fd_ >= 0) {
    ::close(upstream_fd_);
    upstream_fd_ = -1;
  }
  upstream_parser_ = FrameParser{};
  // upstream_retry_at_ is already in the past (it was scheduled at the
  // last successful connect), so the redial starts immediately and the
  // backoff escalates only across consecutive failures.
}

void FleetCoordinator::standby_timers(Clock::time_point now) {
  if (upstream_fd_ >= 0 &&
      now - upstream_last_rx_ >
          to_duration(config_.replication_timeout_s)) {
    drop_upstream(now);  // silent link: the primary is wedged or gone
  }
  if (upstream_fd_ < 0 && synced_ &&
      now - upstream_last_rx_ >= to_duration(config_.promote_after_s)) {
    promote(now);
  }
}

void FleetCoordinator::promote(Clock::time_point now) {
  role_ = CoordinatorRole::kPrimary;
  // The epoch bump is the fence: every grant/renewal we issue now carries
  // a term the deposed primary has never seen.
  epoch_ += 1;
  deposed_ = false;
  ++promotions_;
  m_promotions_ctr_->inc();
  m_epoch_gauge_->set(static_cast<std::int64_t>(epoch_));
  // First act: extend, don't reassign.  Healthy workers kept their cells
  // running on the lease TTL; give every mirrored lease (and every ghost
  // catalog entry) a full fresh window to reconnect and re-confirm.
  leases_.extend_all(now);
  catalog_.touch_all(now);
  rebalance_hold_until_ =
      now + to_duration(config_.lease_ttl_ms / 1000.0);
  next_replica_heartbeat_ = now;
  if (upstream_fd_ >= 0) {
    ::close(upstream_fd_);
    upstream_fd_ = -1;
  }
}

// ---- Snapshots -------------------------------------------------------

std::size_t FleetCoordinator::worker_count() const {
  std::lock_guard lock(state_mutex_);
  return catalog_.alive_count();
}

std::vector<DistWorkerStatus> FleetCoordinator::workers() const {
  std::lock_guard lock(state_mutex_);
  std::vector<DistWorkerStatus> out;
  out.reserve(catalog_.size());
  for (const auto& [id, entry] : catalog_.workers()) {
    DistWorkerStatus status;
    status.id = id;
    status.name = entry.name;
    status.capacity = entry.capacity;
    status.alive = entry.alive;
    status.cells.assign(entry.cells.begin(), entry.cells.end());
    out.push_back(std::move(status));
  }
  return out;
}

std::vector<DistCellStatus> FleetCoordinator::cells() const {
  std::lock_guard lock(state_mutex_);
  std::vector<DistCellStatus> out;
  out.reserve(records_.size());
  for (std::uint32_t i = 0; i < records_.size(); ++i) {
    const CellRecord& record = records_[i];
    const Lease& lease = leases_.cell(i);
    DistCellStatus status;
    status.cell_index = i;
    status.name = record.spec.name;
    status.lease_state = lease.state;
    status.lease_id = lease.lease_id;
    status.worker_id = lease.worker_id;
    status.handoffs = lease.handoffs;
    status.slots = record.committed_slots +
                   (record.has_report ? record.last.slots : 0);
    status.dcis =
        record.committed_dcis + (record.has_report ? record.last.dcis : 0);
    status.cell_state = record.has_report ? record.last.cell_state : 1;
    out.push_back(std::move(status));
  }
  return out;
}

FleetSummary FleetCoordinator::summary() const {
  std::lock_guard lock(state_mutex_);
  FleetSummary s;
  std::vector<std::pair<double, std::uint32_t>> spare;
  spare.reserve(records_.size());
  s.cells.reserve(records_.size());
  for (std::uint32_t i = 0; i < records_.size(); ++i) {
    const CellRecord& record = records_[i];
    const Lease& lease = leases_.cell(i);
    const bool live =
        lease.state == LeaseState::kActive && record.has_report;
    CellSummary cs;
    cs.cell_index = i;
    cs.name = record.spec.name;
    // kBackoff is the honest description of an unassigned cell: down now,
    // the supervisor (here: the lease table) intends to bring it back.
    cs.state = live ? record.last.cell_state : 1;
    cs.slots = record.committed_slots +
               (record.has_report ? record.last.slots : 0);
    cs.dcis =
        record.committed_dcis + (record.has_report ? record.last.dcis : 0);
    cs.restarts = record.committed_restarts + lease.handoffs +
                  (record.has_report ? record.last.restarts : 0);
    cs.active_ues = live ? record.last.active_ues : 0;
    cs.dl_mbps = live ? record.last.dl_mbps : 0.0;
    cs.ul_mbps = live ? record.last.ul_mbps : 0.0;
    cs.retx_rate = live ? record.last.retx_rate : 0.0;
    cs.utilization = live ? record.last.utilization : 0.0;
    s.slot = std::max(s.slot, cs.slots);
    s.dcis_total += cs.dcis;
    s.restarts_total += cs.restarts;
    s.dl_mbps_total += cs.dl_mbps;
    s.ul_mbps_total += cs.ul_mbps;
    spare.emplace_back(live ? record.last.spare_prb_rate : 0.0, i);
    s.cells.push_back(std::move(cs));
  }
  double retx_sum = 0.0;
  std::uint64_t dcis = 0;
  for (const CellSummary& cs : s.cells) {
    retx_sum += cs.retx_rate * static_cast<double>(cs.dcis);
    dcis += cs.dcis;
  }
  s.retx_rate = dcis > 0 ? retx_sum / static_cast<double>(dcis) : 0.0;
  std::stable_sort(spare.begin(), spare.end(),
                   [](const auto& a, const auto& b) {
                     return a.first > b.first;
                   });
  s.spare_ranking.reserve(spare.size());
  for (const auto& [rate, index] : spare) {
    s.spare_ranking.push_back(index);
  }
  return s;
}

std::uint64_t FleetCoordinator::reassignments() const {
  return m_reassignments_->value();
}

bool FleetCoordinator::all_cells_active() const {
  std::lock_guard lock(state_mutex_);
  for (std::uint32_t i = 0; i < records_.size(); ++i) {
    if (leases_.cell(i).state != LeaseState::kActive) {
      return false;
    }
    if (!records_[i].has_report || records_[i].last.cell_state != 0) {
      return false;
    }
  }
  return true;
}

CoordinatorRole FleetCoordinator::role() const {
  std::lock_guard lock(state_mutex_);
  return role_;
}

std::uint64_t FleetCoordinator::epoch() const {
  std::lock_guard lock(state_mutex_);
  return epoch_;
}

bool FleetCoordinator::synced() const {
  std::lock_guard lock(state_mutex_);
  return synced_;
}

bool FleetCoordinator::deposed() const {
  std::lock_guard lock(state_mutex_);
  return deposed_;
}

std::uint64_t FleetCoordinator::promotions() const {
  std::lock_guard lock(state_mutex_);
  return promotions_;
}

std::uint64_t FleetCoordinator::reconfirmations() const {
  std::lock_guard lock(state_mutex_);
  return reconfirmations_;
}

}  // namespace nrs
