#include "dist/worker.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <utility>

#include "analysis/prediction_sink.h"
#include "common/backoff.h"
#include "dist/coordinator.h"  // parse_host_port
#include "gnb/presets.h"
#include "net/socket_io.h"
#include "nr/dci.h"
#include "store/history_store.h"

namespace nrs {

namespace {

/// Resolve a coordinator-chosen preset name to its CellConfig.  Returns
/// false (and leaves `out` untouched) for a name this build does not know
/// — the lease is refused with a structured reason instead of crashing.
bool find_cell_preset(const std::string& name, CellConfig& out) {
  if (name == "srsran") {
    out = srsran_cell();
  } else if (name == "mosolab") {
    out = mosolab_cell();
  } else if (name == "amarisoft") {
    out = amarisoft_cell();
  } else if (name == "tmobile1") {
    out = tmobile_cell1();
  } else if (name == "tmobile2") {
    out = tmobile_cell2();
  } else {
    return false;
  }
  return true;
}

std::chrono::steady_clock::duration secs(double s) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(s));
}

/// One StoreRowUpdate on the wire: rnti u16 + metric u8 + slot u64 +
/// value f64.
constexpr std::size_t kRowWireBytes = 2 + 1 + 8 + 8;

std::uint64_t derive_jitter_seed(const void* self) {
  return reinterpret_cast<std::uintptr_t>(self) ^
         static_cast<std::uint64_t>(
             std::chrono::steady_clock::now().time_since_epoch().count());
}

}  // namespace

// Buffers the three cell-level store rows per tracking slot for the next
// kCellReport.  The slot counter counts EVERY delivered slot (tracking or
// not), mirroring the aggregator's lifetime slot axis, and survives the
// cell's pipeline incarnations (worker-local restarts) because the
// collector itself is owned by the lease, not the pipeline.
class FleetWorker::RowCollector : public SlotSink {
 public:
  explicit RowCollector(unsigned n_prb) : n_prb_(n_prb) {}

  void on_slot(const SlotResult& result) override {
    std::lock_guard lock(mutex_);
    const std::uint64_t slot = slot_counter_++;
    if (result.sync_state != SyncState::kTracking) {
      return;
    }
    unsigned used = 0;
    for (const DecodedDci& dci : result.dcis) {
      if (is_downlink(dci.grant.format)) {
        used += dci.grant.prb_len;
      }
    }
    used = std::min(used, n_prb_);
    rows_.push_back({kStoreCellRnti,
                     static_cast<std::uint8_t>(StoreMetric::kCellDcis), slot,
                     static_cast<double>(result.dcis.size())});
    rows_.push_back({kStoreCellRnti,
                     static_cast<std::uint8_t>(StoreMetric::kCellUsedPrbs),
                     slot, static_cast<double>(used)});
    rows_.push_back({kStoreCellRnti,
                     static_cast<std::uint8_t>(StoreMetric::kCellSparePrbs),
                     slot, static_cast<double>(n_prb_ - used)});
  }

  /// Move out up to `max_rows` buffered rows (oldest dropped beyond the
  /// cap — under backlog the freshest telemetry wins).
  [[nodiscard]] std::vector<StoreRowUpdate> drain(std::size_t max_rows) {
    std::lock_guard lock(mutex_);
    std::vector<StoreRowUpdate> out;
    if (rows_.size() > max_rows) {
      out.assign(rows_.end() - static_cast<std::ptrdiff_t>(max_rows),
                 rows_.end());
    } else {
      out = std::move(rows_);
    }
    rows_.clear();
    return out;
  }

 private:
  const unsigned n_prb_;
  std::mutex mutex_;
  std::uint64_t slot_counter_ = 0;
  std::vector<StoreRowUpdate> rows_;
};

// The PredictionSink's emitter copies each emitted set here (collector
// thread); send_reports() forwards the freshest one per report interval
// (run thread) — latest-wins, like the heartbeat's lease status.
struct FleetWorker::PredictionBuffer {
  std::mutex mutex;
  PredictionSet latest;
  bool fresh = false;
};

FleetWorker::FleetWorker(WorkerConfig config, MetricsRegistry* registry)
    : config_(std::move(config)),
      own_registry_(registry == nullptr ? std::make_unique<MetricsRegistry>()
                                        : nullptr),
      registry_(registry != nullptr ? registry : own_registry_.get()) {
  m_leases_accepted_ = &registry_->counter("dist.worker.leases_accepted");
  m_leases_refused_ = &registry_->counter("dist.worker.leases_refused");
  m_revokes_ = &registry_->counter("dist.worker.revokes");
  m_expiries_ = &registry_->counter("dist.worker.lease_expiries");
  m_reconnects_ = &registry_->counter("dist.worker.reconnects");
  m_heartbeats_ = &registry_->counter("dist.worker.heartbeats");
  m_reports_ = &registry_->counter("dist.worker.reports");
  m_report_batches_ = &registry_->counter("dist.worker.report_batches");
  m_predictions_sent_ = &registry_->counter("dist.worker.predictions_sent");
  m_report_bytes_ = &registry_->counter("dist.worker.report_bytes");
  m_stale_epoch_ =
      &registry_->counter("dist.worker.stale_epoch_rejected");
  m_not_primary_rx_ = &registry_->counter("dist.worker.not_primary_rx");
  m_cells_ = &registry_->gauge("dist.worker.cells");
  for (const std::string& endpoint : config_.coordinators) {
    std::string host;
    std::uint16_t port = 0;
    if (parse_host_port(endpoint, host, port)) {
      endpoints_.emplace_back(std::move(host), port);
    }
  }
  if (endpoints_.empty()) {
    endpoints_.emplace_back(config_.host, config_.port);
  }
  if (config_.enable_prediction) {
    PredictorWeights weights =
        PredictorWeights::baseline(config_.prediction_horizon_slots);
    if (!config_.predictor_weights_path.empty()) {
      if (auto loaded =
              PredictorWeights::load(config_.predictor_weights_path)) {
        weights = std::move(*loaded);
      }
    }
    predictor_ = std::make_shared<const ThroughputPredictor>(weights);
  }
  thread_ = std::thread([this] { run(); });
}

FleetWorker::~FleetWorker() { stop(); }

void FleetWorker::stop() {
  stop_.store(true);
  std::lock_guard lock(join_mutex_);
  if (thread_.joinable()) {
    thread_.join();
  }
}

void FleetWorker::kill() {
  killed_.store(true);
  stop_.store(true);
  const int fd = fd_.load();
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
  }
  std::lock_guard lock(join_mutex_);
  if (thread_.joinable()) {
    thread_.join();
  }
}

std::string FleetWorker::protocol_error() const {
  std::lock_guard lock(protocol_error_mutex_);
  return protocol_error_;
}

void FleetWorker::setup_orchestrator() {
  FleetConfig fleet;
  fleet.pool_threads = config_.pool_threads;
  fleet.slots_per_tick = config_.slots_per_tick;
  orch_ = std::make_unique<FleetOrchestrator>(std::move(fleet), *registry_);
  // Register the row-collector factory before any lease adds a cell, so
  // every incarnation of every leased cell feeds its collector.
  orch_->add_sink("dist-rows", [this](std::uint32_t local_index)
                                   -> std::shared_ptr<SlotSink> {
    const auto it = collectors_.find(local_index);
    return it == collectors_.end() ? nullptr : it->second;
  });
  if (config_.enable_prediction) {
    orch_->add_sink("dist-predict", [this](std::uint32_t local_index)
                                        -> std::shared_ptr<SlotSink> {
      const auto it = prediction_sinks_.find(local_index);
      return it == prediction_sinks_.end() ? nullptr : it->second;
    });
  }
}

void FleetWorker::teardown_orchestrator() {
  if (orch_ != nullptr) {
    for (const auto& [id, lease] : leases_) {
      dropped_slots_ += orch_->cell_slots(lease.local_index);
    }
  }
  orch_.reset();
  leases_.clear();
  collectors_.clear();
  prediction_sinks_.clear();
  n_cells_.store(0);
  m_cells_->set(0);
}

bool FleetWorker::connect_once() {
  const auto& [host, port] = endpoints_[endpoint_index_];
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    rotate_coordinator();  // dead endpoint: try the next candidate
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  timeval send_timeout{};
  send_timeout.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &send_timeout,
               sizeof(send_timeout));

  fd_.store(fd);
  parser_ = std::make_unique<FrameParser>();
  WorkerHello hello;
  hello.name = config_.name;
  hello.capacity = config_.capacity;
  hello.pool_threads = config_.pool_threads;
  hello.epoch = epoch_.load();
  if (!send_frame(worker_hello_frame(hello))) {
    disconnect();
    return false;
  }
  connected_.store(true);
  return true;
}

void FleetWorker::rotate_coordinator() {
  endpoint_index_ = (endpoint_index_ + 1) % endpoints_.size();
}

void FleetWorker::disconnect() {
  const int fd = fd_.exchange(-1);
  if (fd >= 0) {
    ::close(fd);
  }
  const bool was_connected = connected_.exchange(false);
  parser_.reset();
  if (was_connected) {
    // The coordinator may have failed over: try the next candidate first.
    // Leased cells KEEP RUNNING on their local lease TTLs — if we reach
    // the new primary before they lapse, the leases are re-confirmed and
    // the cells never notice the failover.
    rotate_coordinator();
  }
}

bool FleetWorker::send_frame(const std::vector<std::uint8_t>& frame) {
  const int fd = fd_.load();
  if (fd < 0) {
    return false;
  }
  // kPartial (short write on the SO_SNDTIMEO-bounded socket) leaves a
  // torn frame: the stream is poisoned, treat it as a hard failure.
  return send_exact(fd, frame.data(), frame.size()) == SendResult::kOk;
}

void FleetWorker::drain_socket() {
  const int fd = fd_.load();
  if (fd < 0) {
    return;
  }
  std::uint8_t buf[65536];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
    if (n > 0) {
      parser_->feed({buf, static_cast<std::size_t>(n)});
      while (auto frame = parser_->next()) {
        handle_frame(*frame);
        if (fd_.load() < 0) {
          return;
        }
      }
      if (parser_->error()) {
        disconnect();
        return;
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    disconnect();  // EOF or hard error: coordinator is gone
    return;
  }
}

void FleetWorker::handle_frame(const Frame& frame) {
  switch (frame.type) {
    case FrameType::kLease: {
      if (auto grant = decode_lease(frame.payload)) {
        handle_lease(*grant);
      }
      return;
    }
    case FrameType::kLeaseRevoke: {
      if (auto revoke = decode_lease_revoke(frame.payload)) {
        handle_revoke(*revoke);
      }
      return;
    }
    case FrameType::kNotPrimary: {
      if (auto info = decode_not_primary(frame.payload)) {
        handle_not_primary(*info);
      }
      return;
    }
    case FrameType::kUnsupportedVersion: {
      std::string message = "coordinator rejected our protocol version";
      if (auto reject = decode_version_reject(frame.payload)) {
        message = "coordinator rejected protocol version " +
                  std::to_string(reject->rejected) + " (supports " +
                  std::to_string(reject->min_version) + ".." +
                  std::to_string(reject->max_version) + ")";
      }
      {
        std::lock_guard lock(protocol_error_mutex_);
        protocol_error_ = std::move(message);
      }
      stop_.store(true);  // reconnecting cannot fix a version mismatch
      return;
    }
    default:
      return;  // tolerate anything else well-framed
  }
}

void FleetWorker::handle_not_primary(const NotPrimary& info) {
  m_not_primary_rx_->inc();
  if (info.epoch > epoch_.load()) {
    epoch_.store(info.epoch);
  }
  disconnect();  // this endpoint cannot serve leases; try the next one
}

void FleetWorker::handle_lease(const LeaseGrant& grant) {
  if (grant.epoch < epoch_.load()) {
    // A deposed primary (lower term than one we have already served)
    // must not be allowed to re-grant cells the new primary owns.
    stale_epoch_rejected_.fetch_add(1);
    m_stale_epoch_->inc();
    LeaseAck ack;
    ack.lease_id = grant.lease_id;
    ack.cell_index = grant.spec.cell_index;
    ack.accepted = false;
    ack.message = "stale epoch";
    ack.epoch = epoch_.load();
    send_frame(lease_ack_frame(ack));
    disconnect();  // go find the real primary
    return;
  }
  if (grant.epoch > epoch_.load()) {
    epoch_.store(grant.epoch);
  }
  const auto now = Clock::now();
  const auto it = leases_.find(grant.lease_id);
  if (it != leases_.end()) {
    // Renewal: same lease id, restart the local TTL clock.
    it->second.expires_at = now + secs(grant.ttl_ms / 1000.0);
    return;
  }
  // The same cell re-granted under a fresh lease id (the coordinator
  // reassigned it back to us): drop the stale local lease first so the
  // cell is not run twice.
  for (const auto& [id, held] : leases_) {
    if (held.cell_index == grant.spec.cell_index && id != grant.lease_id) {
      drop_lease(id);
      break;
    }
  }
  LeaseAck ack;
  ack.lease_id = grant.lease_id;
  ack.cell_index = grant.spec.cell_index;
  ack.epoch = epoch_.load();
  if (leases_.size() >= config_.capacity) {
    ack.accepted = false;
    ack.message = "over capacity";
    m_leases_refused_->inc();
    if (!send_frame(lease_ack_frame(ack))) {
      disconnect();
    }
    return;
  }
  FleetCellSpec spec;
  if (!find_cell_preset(grant.spec.preset, spec.cell)) {
    ack.accepted = false;
    ack.message = "unknown preset '" + grant.spec.preset + "'";
    m_leases_refused_->inc();
    if (!send_frame(lease_ack_frame(ack))) {
      disconnect();
    }
    return;
  }
  if (grant.spec.pci != 0) {
    spec.cell.pci = grant.spec.pci;
  }
  spec.n_ues = grant.spec.n_ues;
  spec.ue_rate_bps = grant.spec.ue_rate_bps;
  spec.ue_snr_db = grant.spec.ue_snr_db;
  spec.sniffer_snr_db = grant.spec.sniffer_snr_db;
  spec.n_demod_workers = config_.n_demod_workers;
  spec.n_dci_threads = config_.n_dci_threads;
  spec.seed = grant.spec.seed;

  HeldLease lease;
  lease.lease_id = grant.lease_id;
  lease.cell_index = grant.spec.cell_index;
  lease.expires_at = now + secs(grant.ttl_ms / 1000.0);
  lease.collector = std::make_shared<RowCollector>(spec.cell.n_prb);
  // The collector must be findable by the sink factory before add_cell
  // builds the cell's pipeline; new cells land at index n_cells().
  const std::uint32_t local =
      static_cast<std::uint32_t>(orch_->n_cells());
  collectors_[local] = lease.collector;
  if (config_.enable_prediction && predictor_ != nullptr) {
    auto buffer = std::make_shared<PredictionBuffer>();
    PredictionSinkConfig pcfg;
    pcfg.cell_index = grant.spec.cell_index;
    pcfg.features.scs = spec.cell.scs;
    pcfg.features.n_prb = spec.cell.n_prb;
    pcfg.period_slots = config_.prediction_period_slots;
    lease.prediction_sink = std::make_shared<PredictionSink>(
        predictor_, pcfg, registry_,
        [buffer](const PredictionSet& set) {
          std::lock_guard lock(buffer->mutex);
          buffer->latest = set;
          buffer->fresh = true;
        });
    lease.prediction_buffer = std::move(buffer);
    prediction_sinks_[local] = lease.prediction_sink;
  }
  lease.local_index = orch_->add_cell(std::move(spec),
                                      grant.spec.incarnation);
  leases_[grant.lease_id] = std::move(lease);
  n_cells_.store(leases_.size());
  m_cells_->set(static_cast<std::int64_t>(leases_.size()));
  m_leases_accepted_->inc();

  ack.accepted = true;
  if (!send_frame(lease_ack_frame(ack))) {
    disconnect();
  }
}

void FleetWorker::handle_revoke(const LeaseRevoke& revoke) {
  if (revoke.epoch != 0 && revoke.epoch < epoch_.load()) {
    // A deposed primary cannot tear down a cell the new primary leases.
    stale_epoch_rejected_.fetch_add(1);
    m_stale_epoch_->inc();
    return;
  }
  m_revokes_->inc();
  drop_lease(revoke.lease_id);
}

void FleetWorker::drop_lease(std::uint64_t lease_id) {
  const auto it = leases_.find(lease_id);
  if (it == leases_.end()) {
    return;
  }
  dropped_slots_ += orch_->cell_slots(it->second.local_index);
  orch_->remove_cell(it->second.local_index);
  collectors_.erase(it->second.local_index);
  prediction_sinks_.erase(it->second.local_index);
  leases_.erase(it);
  n_cells_.store(leases_.size());
  m_cells_->set(static_cast<std::int64_t>(leases_.size()));
}

void FleetWorker::expire_leases(Clock::time_point now) {
  std::vector<std::uint64_t> expired;
  for (const auto& [id, lease] : leases_) {
    if (now >= lease.expires_at) {
      expired.push_back(id);
    }
  }
  for (const std::uint64_t id : expired) {
    // The coordinator stopped renewing (or we lost it and never reached
    // a successor inside the TTL): it may have reassigned the cell.
    // Stop running it rather than risk two workers feeding one cell.
    m_expiries_->inc();
    drop_lease(id);
  }
}

void FleetWorker::send_heartbeat() {
  WorkerHeartbeat hb;
  hb.seq = ++heartbeat_seq_;
  hb.epoch = epoch_.load();
  hb.leases.reserve(leases_.size());
  for (const auto& [id, lease] : leases_) {
    LeaseStatus status;
    status.lease_id = id;
    status.cell_index = lease.cell_index;
    status.slots = orch_->cell_slots(lease.local_index);
    status.cell_state =
        static_cast<std::uint8_t>(orch_->cell_state(lease.local_index));
    hb.leases.push_back(status);
  }
  if (send_frame(worker_heartbeat_frame(hb))) {
    m_heartbeats_->inc();
  } else {
    disconnect();
  }
}

void FleetWorker::send_reports() {
  if (leases_.empty()) {
    return;
  }
  // All leases' reports ride in ONE kCellReportBatch frame per interval:
  // a worker running N cells costs one send on the WAN link, not N.
  const FleetRollup rollup = orch_->rollup();
  CellReportBatch batch;
  batch.reports.reserve(leases_.size());
  for (const auto& [id, lease] : leases_) {
    if (lease.local_index >= rollup.cells.size()) {
      continue;
    }
    const CellRollup& cell = rollup.cells[lease.local_index];
    CellReport report;
    report.lease_id = id;
    report.epoch = epoch_.load();
    report.cell_index = lease.cell_index;
    report.cell_state =
        static_cast<std::uint8_t>(orch_->cell_state(lease.local_index));
    report.slots = cell.slots;
    report.dcis = cell.dcis;
    report.retx_dcis = static_cast<std::uint64_t>(
        std::llround(cell.retx_rate * static_cast<double>(cell.dcis)));
    report.restarts = cell.restarts;
    report.active_ues = cell.active_ues;
    report.dl_mbps = cell.dl_mbps;
    report.ul_mbps = cell.ul_mbps;
    report.retx_rate = cell.retx_rate;
    report.utilization = cell.utilization;
    report.spare_prb_rate = cell.spare_prb_rate;
    report.rows = lease.collector->drain(config_.max_rows_per_report);
    batch.reports.push_back(std::move(report));
  }
  if (batch.reports.empty()) {
    return;
  }
  // WAN bound: shed oldest rows (largest report first) until the encoded
  // frame fits max_report_bytes.  Fresh rows and the scalar telemetry
  // always survive — only history backlog is thinned.
  std::vector<std::uint8_t> frame = cell_report_batch_frame(batch);
  while (frame.size() > config_.max_report_bytes) {
    CellReport* largest = nullptr;
    for (CellReport& report : batch.reports) {
      if (!report.rows.empty() &&
          (largest == nullptr || report.rows.size() > largest->rows.size())) {
        largest = &report;
      }
    }
    if (largest == nullptr) {
      break;  // nothing left to shed; send the structural minimum
    }
    const std::size_t excess = frame.size() - config_.max_report_bytes;
    const std::size_t drop = std::min(
        largest->rows.size(), excess / kRowWireBytes + 1);
    largest->rows.erase(largest->rows.begin(),
                        largest->rows.begin() +
                            static_cast<std::ptrdiff_t>(drop));
    frame = cell_report_batch_frame(batch);
  }
  const std::size_t n_reports = batch.reports.size();
  const std::size_t frame_bytes = frame.size();
  if (!send_frame(frame)) {
    disconnect();
    return;
  }
  m_report_batches_->inc();
  m_reports_->inc(n_reports);
  m_report_bytes_->inc(static_cast<std::uint64_t>(frame_bytes));

  // Forward each cell's freshest prediction set (when the sink produced
  // one since the last interval).
  for (const auto& [id, lease] : leases_) {
    if (lease.prediction_buffer == nullptr) {
      continue;
    }
    PredictionSet set;
    {
      std::lock_guard lock(lease.prediction_buffer->mutex);
      if (!lease.prediction_buffer->fresh) {
        continue;
      }
      set = lease.prediction_buffer->latest;
      lease.prediction_buffer->fresh = false;
    }
    if (!send_frame(prediction_frame(set))) {
      disconnect();
      return;
    }
    m_predictions_sent_->inc();
  }
}

void FleetWorker::run() {
  setup_orchestrator();
  const BackoffPolicy policy{config_.reconnect_backoff_s,
                             std::max(config_.reconnect_backoff_max_s,
                                      config_.reconnect_backoff_s),
                             2.0, config_.backoff_jitter};
  Rng jitter_rng(config_.backoff_seed != 0 ? config_.backoff_seed
                                           : derive_jitter_seed(this));
  int failed_connects = 0;
  unsigned consecutive_failures = 0;
  auto next_connect = Clock::now();
  auto next_heartbeat = Clock::now();
  auto next_report = Clock::now();
  while (!stop_.load()) {
    if (fd_.load() < 0 && Clock::now() >= next_connect) {
      if (config_.max_reconnect_attempts >= 0 &&
          failed_connects > config_.max_reconnect_attempts) {
        break;
      }
      if (connect_once()) {
        failed_connects = 0;
        consecutive_failures = 0;
        m_reconnects_->inc();
        next_heartbeat = Clock::now();
        next_report = Clock::now() + secs(config_.report_period_s);
      } else {
        ++failed_connects;
        const double delay =
            jittered_backoff_delay(policy, consecutive_failures, jitter_rng);
        ++consecutive_failures;
        next_connect = Clock::now() + secs(delay);
      }
    }

    if (fd_.load() >= 0) {
      drain_socket();
    }
    if (stop_.load()) {
      break;
    }

    const auto now = Clock::now();
    // Leases expire locally even while disconnected: if no successor
    // coordinator re-confirms within the TTL, stop running the cell
    // rather than risk two workers feeding it (split-brain guard).
    expire_leases(now);
    if (fd_.load() >= 0 && now >= next_heartbeat) {
      send_heartbeat();
      next_heartbeat = now + secs(config_.heartbeat_period_s);
    }
    if (fd_.load() >= 0 && now >= next_report) {
      send_reports();
      next_report = now + secs(config_.report_period_s);
    }

    if (orch_ != nullptr && !leases_.empty()) {
      orch_->tick();  // advances every running cell by slots_per_tick
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    std::uint64_t live = 0;
    for (const auto& [id, lease] : leases_) {
      live += orch_->cell_slots(lease.local_index);
    }
    slots_total_.store(dropped_slots_ + live);
  }
  // Graceful path: drain cells so their final telemetry lands in the
  // aggregator; kill() skips nothing here either — the socket is already
  // dead, which is all the coordinator observes.
  disconnect();
  teardown_orchestrator();
  done_.store(true);
}

}  // namespace nrs
