// Worker catalog for the distributed fleet coordinator: who is connected,
// how many cells each worker can carry, which cells it currently holds,
// and when it last proved it was alive.  The catalog is a plain data
// structure — all mutation happens on the coordinator's io thread — so it
// is unit-testable without sockets.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace nrs {

struct WorkerEntry {
  std::uint64_t id = 0;
  std::string name;
  std::uint32_t capacity = 1;      ///< max concurrent cell leases
  std::uint32_t pool_threads = 0;  ///< informational, from WorkerHello
  int fd = -1;                     ///< the worker's socket (not owned)
  bool alive = true;
  std::chrono::steady_clock::time_point last_seen{};
  std::set<std::uint32_t> cells;  ///< cell indices currently leased to it

  [[nodiscard]] std::size_t load() const { return cells.size(); }
  [[nodiscard]] bool has_capacity() const {
    return alive && cells.size() < capacity;
  }
};

class WorkerCatalog {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  /// Register a freshly-greeted worker; returns its catalog id (never 0).
  std::uint64_t add(std::string name, std::uint32_t capacity,
                    std::uint32_t pool_threads, int fd, TimePoint now);

  /// Mirror a replicated catalog entry under its original id (standby
  /// apply path).  The entry has no socket (fd = -1) — after a promotion
  /// it is a "ghost" that holds its cells until the real worker reconnects
  /// and its leases are rebound, or the heartbeat timeout declares it
  /// dead.  Ratchets next_id_ past `id` so fresh joins never collide.
  void restore(std::uint64_t id, std::string name, std::uint32_t capacity,
               TimePoint now);

  /// Drop every entry (standby re-applying a fresh snapshot).
  void clear();

  /// Restart every entry's liveness clock (promotion grace: ghosts get a
  /// full heartbeat timeout to re-appear before being declared dead).
  void touch_all(TimePoint now);

  [[nodiscard]] WorkerEntry* find(std::uint64_t id);
  [[nodiscard]] const WorkerEntry* find(std::uint64_t id) const;
  [[nodiscard]] WorkerEntry* find_by_fd(int fd);

  /// Record proof of life (a heartbeat or any inbound frame).
  void touch(std::uint64_t id, TimePoint now);

  /// Declare a worker dead.  Its cell set is left for the caller to walk
  /// (the lease table owns the reassignment); remove() erases the entry
  /// once the caller is done with it.
  void mark_dead(std::uint64_t id);
  void remove(std::uint64_t id);

  /// The alive *connected* worker with free capacity carrying the fewest
  /// cells (ties: lowest id, so placement is deterministic).  Ghost
  /// entries (fd < 0, mirrored from a dead primary) are skipped — there is
  /// no socket to send a grant on.  nullopt when the fleet is saturated or
  /// empty.
  [[nodiscard]] std::optional<std::uint64_t> pick_least_loaded() const;

  /// Workers that have been silent for longer than `timeout_s`.
  [[nodiscard]] std::vector<std::uint64_t> silent_since(
      TimePoint now, double timeout_s) const;

  [[nodiscard]] std::size_t alive_count() const;
  [[nodiscard]] std::size_t size() const { return workers_.size(); }
  [[nodiscard]] const std::map<std::uint64_t, WorkerEntry>& workers() const {
    return workers_;
  }

 private:
  std::map<std::uint64_t, WorkerEntry> workers_;
  std::uint64_t next_id_ = 0;
};

}  // namespace nrs
