// FleetCoordinator: the process-level master of the distributed sniffer
// fleet (ROADMAP "coordinator/worker split", Work-Queue style).  It owns a
// listening socket; FleetWorker processes connect, announce capacity with
// kWorkerHello, and are granted per-cell leases (kLease) with TTLs.
// Workers renew their leases with kWorkerHeartbeat, stream telemetry back
// as kCellReport frames, and can be told to drop a cell with kLeaseRevoke
// (rebalancing toward a newly joined worker).
//
// Failure model: a worker that disappears (socket EOF, send failure) or
// goes silent past heartbeat_timeout_s is declared dead; its leases are
// released with the lease table's bounded exponential backoff and
// reassigned to surviving workers with free capacity — the same
// backoff/incarnation discipline the in-process fleet supervisor applies
// to crashed cells, lifted to the process level.  A worker speaking an
// incompatible wire version receives a structured kUnsupportedVersion
// frame before the drop.
//
// Continuity: the coordinator keeps per-cell COMMITTED totals (the sum of
// all ended leases) plus the live report of the current lease; the totals
// exposed in summary() only ever grow, so the fleet view stays monotonic
// across a reassignment.  Forwarded store rows are rebased onto each
// cell's lifetime slot axis and ingested into an embedded HistoryStore —
// post-kill queries return rows from before and after the handoff.
//
// High availability: a second FleetCoordinator started with
// `standby_of = "host:port"` runs as a replicated STANDBY — it dials the
// primary, attaches as a replication tail (kStandbyHello), mirrors the
// full coordinator state (one kReplicaSnapshot, then incremental
// kReplicaEvents: catalog joins/leaves, lease grants/renewals/releases,
// committed per-cell totals, rebased history rows), and answers any
// worker that dials it early with kNotPrimary.  When the primary dies
// (EOF on the replication link, or replication silence), the standby
// PROMOTES: it bumps the epoch (a monotonically increasing term carried
// on every lease, heartbeat and report), restarts every mirrored lease's
// TTL clock and waits for the healthy workers to reconnect — their
// heartbeats list lease ids the standby already knows, so the leases are
// RE-CONFIRMED (rebound to the new connection) rather than reassigned:
// zero handoffs, zero cell restarts, totals and history continuous.  A
// deposed primary that resurrects sees the higher epoch on worker hellos
// and fences itself instead of competing for the fleet.
//
// Threads: ONE io thread owns every socket and all coordination state;
// public accessors copy snapshots out under a mutex.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "dist/catalog.h"
#include "dist/lease.h"
#include "net/wire.h"
#include "store/history_store.h"

namespace nrs {

/// One cell the coordinator wants running somewhere: a preset name plus
/// overrides (the same shape the wire-level WireCellSpec carries).
struct CoordinatorCellSpec {
  std::string name;
  std::string preset = "srsran";
  std::uint16_t pci = 0;  ///< 0 = keep the preset's PCI
  unsigned n_ues = 2;
  double ue_rate_bps = 2e6;
  double ue_snr_db = 18.0;
  double sniffer_snr_db = 28.0;
};

/// Whether a coordinator currently serves leases or tails a primary.
enum class CoordinatorRole : std::uint8_t {
  kPrimary = 0,
  kStandby = 1,
};

const char* to_string(CoordinatorRole role);

/// Split "host:port" (host may be empty for the default 127.0.0.1).
/// False on a missing/invalid port.
bool parse_host_port(const std::string& endpoint, std::string& host,
                     std::uint16_t& port);

struct CoordinatorConfig {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral (see port())
  std::vector<CoordinatorCellSpec> cells;
  std::uint64_t seed = 1;  ///< per-cell seed bases derive from it

  /// Non-empty ("host:port") -> start as a replicated standby tailing
  /// that primary.  A standby needs no `cells` of its own: the snapshot
  /// replicates the specs (and seeds), so the promoted standby grants
  /// byte-identical cell streams.
  std::string standby_of;
  /// First primary term.  A promoted standby uses replicated_epoch + 1.
  std::uint64_t initial_epoch = 1;
  /// Primary -> replica keepalive period (lets the standby tell a wedged
  /// primary from an idle one).
  double replication_heartbeat_s = 0.05;
  /// Standby: no replication traffic for this long -> the link is dead.
  double replication_timeout_s = 0.6;
  /// Standby: how long the primary must stay unreachable (after a synced
  /// tail) before promotion.  Guards against promoting on a transient
  /// replication-link blip while the primary is still serving workers.
  double promote_after_s = 0.3;
  // Standby upstream redial backoff (jittered like every other path).
  double standby_backoff_initial_s = 0.05;
  double standby_backoff_max_s = 0.5;

  std::uint32_t lease_ttl_ms = 1500;
  /// A worker silent for this long is dead (heartbeats are expected every
  /// worker heartbeat_period_s, typically 100 ms).
  double heartbeat_timeout_s = 1.0;
  // Reassignment backoff (per cell, escalating on repeated failures).
  double backoff_initial_s = 0.05;
  double backoff_max_s = 1.0;
  double backoff_factor = 2.0;
  /// When a worker joins, revoke leases from overloaded workers so the
  /// fleet converges toward an even split.
  bool rebalance_on_join = true;

  std::size_t max_workers = 64;
  HistoryStoreConfig store;  ///< retention of the embedded history store
};

/// Point-in-time view of one cell's distribution state.
struct DistCellStatus {
  std::uint32_t cell_index = 0;
  std::string name;
  LeaseState lease_state = LeaseState::kUnassigned;
  std::uint64_t lease_id = 0;
  std::uint64_t worker_id = 0;  ///< holder's catalog id (0 = none)
  unsigned handoffs = 0;        ///< completed lease handoffs
  std::uint64_t slots = 0;      ///< lifetime (committed + current lease)
  std::uint64_t dcis = 0;
  std::uint8_t cell_state = 0;  ///< raw FleetCellState from the last report
};

/// Point-in-time view of one catalog entry.
struct DistWorkerStatus {
  std::uint64_t id = 0;
  std::string name;
  std::uint32_t capacity = 0;
  bool alive = false;
  std::vector<std::uint32_t> cells;
};

class FleetCoordinator {
 public:
  /// Binds, listens, and starts the io thread immediately (throws
  /// std::runtime_error when the socket cannot be bound).  `registry`
  /// (optional) receives the dist.* metrics and the embedded store's
  /// store.* metrics.
  explicit FleetCoordinator(CoordinatorConfig config,
                            MetricsRegistry* registry = nullptr);
  ~FleetCoordinator();

  FleetCoordinator(const FleetCoordinator&) = delete;
  FleetCoordinator& operator=(const FleetCoordinator&) = delete;

  /// Stop the io thread, close every socket.  Idempotent.
  void stop();

  [[nodiscard]] std::uint16_t port() const { return port_; }

  // ---- Snapshots (any thread) ----
  [[nodiscard]] std::size_t worker_count() const;
  [[nodiscard]] std::vector<DistWorkerStatus> workers() const;
  [[nodiscard]] std::vector<DistCellStatus> cells() const;
  /// Wire-ready aggregate built from committed + live per-cell totals;
  /// monotonic across reassignments.  cells[i].state carries the worker's
  /// FleetCellState byte; an unassigned cell reports kBackoff.
  [[nodiscard]] FleetSummary summary() const;
  /// Leases released due to worker death or expiry (not rebalancing).
  [[nodiscard]] std::uint64_t reassignments() const;
  /// True when every cell's lease is kActive and its last report shows a
  /// running cell.
  [[nodiscard]] bool all_cells_active() const;

  // ---- High availability (any thread) ----
  /// Current role: a standby flips to kPrimary at promotion.
  [[nodiscard]] CoordinatorRole role() const;
  /// Current epoch (term).  0 on a standby that has not synced yet.
  [[nodiscard]] std::uint64_t epoch() const;
  /// Standby: true once the first snapshot has been applied (the mirror
  /// is complete and promotion is possible).
  [[nodiscard]] bool synced() const;
  /// True once this (former) primary has seen a higher epoch and fenced
  /// itself: it stops granting and answers worker hellos with kNotPrimary.
  [[nodiscard]] bool deposed() const;
  /// Standby -> primary promotions performed by this instance (0 or 1).
  [[nodiscard]] std::uint64_t promotions() const;
  /// Leases re-confirmed (rebound, not reassigned) after a promotion.
  [[nodiscard]] std::uint64_t reconfirmations() const;

  /// The embedded history store (fleet-lifetime slot axis).  Readers are
  /// lock-free; the io thread is the single writer.  Outlives queries made
  /// through it as long as the coordinator is alive.
  [[nodiscard]] const HistoryStore& store() const { return store_; }

  /// Latest per-UE throughput PredictionSet forwarded by each cell's
  /// worker (empty until a v4 worker with prediction enabled reports).
  /// Keyed by fleet-global cell index — the fleet-wide prediction view.
  [[nodiscard]] std::map<std::uint32_t, PredictionSet> predictions() const;

 private:
  using Clock = std::chrono::steady_clock;

  /// One accepted connection (worker, replica tail, or not-yet-greeted
  /// peer).
  struct Connection {
    int fd = -1;
    FrameParser parser;
    std::uint64_t worker_id = 0;  ///< 0 until kWorkerHello registers it
    bool is_replica = false;      ///< attached with kStandbyHello
  };

  /// Per-cell aggregation state: committed totals from ended leases plus
  /// the live report of the current lease.
  struct CellRecord {
    CoordinatorCellSpec spec;
    std::uint64_t seed_base = 0;  ///< per-cell seed base (derived once)
    // Committed (ended leases only; grows monotonically).
    std::uint64_t committed_slots = 0;
    std::uint64_t committed_dcis = 0;
    std::uint64_t committed_retx = 0;
    std::uint64_t committed_restarts = 0;
    /// Store-axis base of the current lease (= committed_slots at grant).
    std::uint64_t lease_base_slot = 0;
    CellReport last;  ///< latest report under the current lease
    bool has_report = false;
    /// Per-series ingest cursor: cached series pointer + last global slot,
    /// clamped non-decreasing across lease handoffs.
    struct SeriesCursor {
      StoreSeries* series = nullptr;
      std::uint64_t last_slot = 0;
      bool started = false;
    };
    std::map<std::uint64_t, SeriesCursor> cursors;  ///< by SeriesKey::packed
  };

  void io_loop();
  void handle_accept();
  void read_connection(Connection& conn);
  void handle_frame(Connection& conn, const Frame& frame);
  void handle_worker_hello(Connection& conn, const WorkerHello& hello);
  void handle_lease_ack(Connection& conn, const LeaseAck& ack);
  void handle_heartbeat(Connection& conn, const WorkerHeartbeat& hb);
  void handle_cell_report(Connection& conn, const CellReport& report);
  void handle_prediction(Connection& conn, const PredictionSet& set);
  /// Timers: dead-worker scan, lease expiry, assignment of unassigned
  /// cells, rebalancing.
  void run_timers(Clock::time_point now);

  // -- Replication: primary side --
  void handle_standby_hello(Connection& conn, const StandbyHello& hello);
  /// Fan one mutation event out to every attached replica tail (the
  /// event's epoch is stamped here).  A failed send drops that tail; the
  /// standby redials and re-snapshots.
  void replicate(ReplicaEvent event);
  [[nodiscard]] ReplicaSnapshot build_snapshot() const;
  /// We saw a frame from a higher epoch: a promoted standby owns the
  /// fleet now.  Stop granting, answer hellos with kNotPrimary.
  void fence_self(std::uint64_t seen_epoch);

  // -- Replication: standby side --
  /// Dial the primary when the upstream link is down and the (jittered)
  /// backoff has elapsed.  Called on the io thread with the state lock
  /// NOT held — connect() blocks.
  void maybe_connect_upstream();
  void read_upstream();
  void handle_replication_frame(const Frame& frame);
  void apply_snapshot(const ReplicaSnapshot& snapshot,
                      Clock::time_point now);
  void apply_event(const ReplicaEvent& event, Clock::time_point now);
  void apply_store_rows(std::uint32_t cell_index,
                        const std::vector<StoreRowUpdate>& rows);
  void drop_upstream(Clock::time_point now);
  /// Standby timers: replication-silence detection and promotion.
  void standby_timers(Clock::time_point now);
  /// Take over the fleet: bump the epoch, restart lease TTL and catalog
  /// liveness clocks, hold rebalancing for one TTL so reconnecting
  /// workers re-confirm instead of getting shuffled.
  void promote(Clock::time_point now);

  void declare_worker_dead(std::uint64_t worker_id, const char* why);
  /// Release the cell's lease, folding its last report into the committed
  /// totals so the lifetime view never rewinds.
  void end_lease(std::uint32_t cell_index, bool penalize,
                 Clock::time_point now);
  void try_assign(std::uint32_t cell_index, Clock::time_point now);
  void rebalance(Clock::time_point now);
  /// Ingest a report's rows into the embedded store.  When `replicated`
  /// is non-null, the rows actually appended are copied there with their
  /// slots rebased to the cell's global lifetime axis (kStoreRows feed).
  void ingest_rows(std::uint32_t cell_index, CellRecord& record,
                   const CellReport& report,
                   std::vector<StoreRowUpdate>* replicated);
  [[nodiscard]] bool has_replica() const;
  /// Synchronous best-effort send on the io thread (SO_SNDTIMEO-bounded);
  /// a failure declares the worker dead.
  bool send_to_worker(std::uint64_t worker_id,
                      const std::vector<std::uint8_t>& frame);
  void close_connection(Connection& conn);
  [[nodiscard]] WireCellSpec wire_spec(std::uint32_t cell_index,
                                       unsigned incarnation) const;

  CoordinatorConfig config_;
  std::unique_ptr<MetricsRegistry> own_registry_;
  MetricsRegistry* registry_ = nullptr;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread io_;

  // Coordination state: mutated only on the io thread, read by accessors
  // under the mutex.
  mutable std::mutex state_mutex_;
  WorkerCatalog catalog_;
  LeaseTable leases_;
  std::vector<CellRecord> records_;
  std::vector<std::unique_ptr<Connection>> connections_;
  std::map<std::uint32_t, PredictionSet> predictions_;  ///< by cell index

  // -- High-availability state (same locking rules) --
  CoordinatorRole role_ = CoordinatorRole::kPrimary;
  std::uint64_t epoch_ = 0;       ///< current term (0 = unsynced standby)
  bool deposed_ = false;          ///< fenced by a higher epoch
  bool synced_ = false;           ///< standby: snapshot applied
  std::uint64_t promotions_ = 0;
  std::uint64_t reconfirmations_ = 0;
  /// Replication link to the primary (standby only; io thread owns it).
  int upstream_fd_ = -1;
  FrameParser upstream_parser_;
  Clock::time_point upstream_last_rx_{};
  Clock::time_point upstream_retry_at_{};
  unsigned upstream_attempts_ = 0;
  std::string upstream_host_;
  std::uint16_t upstream_port_ = 0;
  Rng jitter_rng_{1};
  /// Post-promotion grace: no join-triggered rebalancing until here, so
  /// reconnecting workers re-confirm their leases undisturbed.
  Clock::time_point rebalance_hold_until_{};
  Clock::time_point next_replica_heartbeat_{};

  HistoryStore store_;

  Counter* m_leases_granted_ = nullptr;
  Counter* m_leases_expired_ = nullptr;
  Counter* m_lease_refusals_ = nullptr;
  Counter* m_reassignments_ = nullptr;
  Counter* m_workers_dead_ = nullptr;
  Counter* m_stale_reports_ = nullptr;
  Counter* m_predictions_rx_ = nullptr;
  Counter* m_version_rejects_ = nullptr;
  Counter* m_revokes_ = nullptr;
  Counter* m_promotions_ctr_ = nullptr;
  Counter* m_reconfirmed_ = nullptr;
  Counter* m_deposed_ctr_ = nullptr;
  Counter* m_not_primary_tx_ = nullptr;
  Counter* m_replica_events_tx_ = nullptr;
  Counter* m_replica_events_rx_ = nullptr;
  Counter* m_replica_snapshots_tx_ = nullptr;
  Counter* m_replica_snapshots_rx_ = nullptr;
  Gauge* m_workers_alive_ = nullptr;
  Gauge* m_cells_active_ = nullptr;
  Gauge* m_epoch_gauge_ = nullptr;
};

}  // namespace nrs
