#include "dist/catalog.h"

#include <algorithm>
#include <utility>

namespace nrs {

std::uint64_t WorkerCatalog::add(std::string name, std::uint32_t capacity,
                                 std::uint32_t pool_threads, int fd,
                                 TimePoint now) {
  const std::uint64_t id = ++next_id_;
  WorkerEntry entry;
  entry.id = id;
  entry.name = std::move(name);
  entry.capacity = capacity;
  entry.pool_threads = pool_threads;
  entry.fd = fd;
  entry.alive = true;
  entry.last_seen = now;
  workers_.emplace(id, std::move(entry));
  return id;
}

void WorkerCatalog::restore(std::uint64_t id, std::string name,
                            std::uint32_t capacity, TimePoint now) {
  WorkerEntry entry;
  entry.id = id;
  entry.name = std::move(name);
  entry.capacity = capacity;
  entry.fd = -1;
  entry.alive = true;
  entry.last_seen = now;
  workers_.insert_or_assign(id, std::move(entry));
  next_id_ = std::max(next_id_, id);
}

void WorkerCatalog::clear() { workers_.clear(); }

void WorkerCatalog::touch_all(TimePoint now) {
  for (auto& [id, entry] : workers_) {
    entry.last_seen = now;
  }
}

WorkerEntry* WorkerCatalog::find(std::uint64_t id) {
  const auto it = workers_.find(id);
  return it == workers_.end() ? nullptr : &it->second;
}

const WorkerEntry* WorkerCatalog::find(std::uint64_t id) const {
  const auto it = workers_.find(id);
  return it == workers_.end() ? nullptr : &it->second;
}

WorkerEntry* WorkerCatalog::find_by_fd(int fd) {
  for (auto& [id, entry] : workers_) {
    if (entry.fd == fd && entry.alive) {
      return &entry;
    }
  }
  return nullptr;
}

void WorkerCatalog::touch(std::uint64_t id, TimePoint now) {
  if (WorkerEntry* entry = find(id)) {
    entry->last_seen = now;
  }
}

void WorkerCatalog::mark_dead(std::uint64_t id) {
  if (WorkerEntry* entry = find(id)) {
    entry->alive = false;
  }
}

void WorkerCatalog::remove(std::uint64_t id) { workers_.erase(id); }

std::optional<std::uint64_t> WorkerCatalog::pick_least_loaded() const {
  std::optional<std::uint64_t> best;
  std::size_t best_load = 0;
  for (const auto& [id, entry] : workers_) {
    if (!entry.has_capacity() || entry.fd < 0) {
      continue;
    }
    if (!best || entry.load() < best_load) {
      best = id;
      best_load = entry.load();
    }
  }
  return best;
}

std::vector<std::uint64_t> WorkerCatalog::silent_since(
    TimePoint now, double timeout_s) const {
  const auto timeout = std::chrono::duration_cast<TimePoint::duration>(
      std::chrono::duration<double>(timeout_s));
  std::vector<std::uint64_t> silent;
  for (const auto& [id, entry] : workers_) {
    if (entry.alive && now - entry.last_seen > timeout) {
      silent.push_back(id);
    }
  }
  return silent;
}

std::size_t WorkerCatalog::alive_count() const {
  std::size_t n = 0;
  for (const auto& [id, entry] : workers_) {
    n += entry.alive ? 1 : 0;
  }
  return n;
}

}  // namespace nrs
