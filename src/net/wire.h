// Versioned, length-prefixed binary wire protocol for live telemetry
// streaming.  A TelemetryStreamServer serializes each SlotResult (and
// periodic MetricsSnapshots) into self-delimiting frames; any remote
// consumer that speaks this protocol — TelemetryStreamClient here, or a
// foreign-language tool — can reconstruct the per-TTI feed the paper's
// downstream applications (e.g. the cloud-gaming work) consume.
//
// Frame layout (all integers little-endian, assembled byte by byte so the
// encoding is identical on any host):
//
//   | magic u32 | version u16 | type u16 | payload_len u32 | payload ... |
//
// Decoding never throws and never reads past the buffer: truncated or
// corrupt input yields std::nullopt (WireReader carries a sticky error
// flag), which is what the round-trip/truncation fuzz tests in
// tests/net/test_wire.cc lock down.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "nrscope/nrscope.h"

namespace nrs {

inline constexpr std::uint32_t kWireMagic = 0x4E525357;  // "NRSW"
/// v2 added the request/response query frames (kQuery / kQueryResult).
inline constexpr std::uint16_t kWireVersion = 2;
/// Upper bound on a sane payload; a bigger announced length means the
/// stream is corrupt (or hostile) and the connection should be dropped.
inline constexpr std::uint32_t kWireMaxPayload = 64u * 1024u * 1024u;
/// Bytes before the payload: magic + version + type + payload_len.
inline constexpr std::size_t kWireHeaderSize = 12;

enum class FrameType : std::uint16_t {
  kHello = 1,      ///< server -> client greeting right after accept
  kSlot = 2,       ///< one serialized SlotResult
  kMetrics = 3,    ///< one serialized MetricsSnapshot
  kHeartbeat = 4,  ///< keep-alive when the stream is idle (empty payload)
  kEnd = 5,        ///< end of stream: the run finished (empty payload)
  kFleet = 6,      ///< one serialized FleetSummary (cross-cell rollup)
  kQuery = 7,        ///< client -> server: one QueryRequest
  kQueryResult = 8,  ///< server -> client: the matching QueryResponse
};

const char* to_string(FrameType type);

/// Greeting payload: lets a (re)connecting client learn where the live
/// stream currently stands.
struct HelloInfo {
  std::uint16_t version = kWireVersion;
  std::uint64_t next_slot = 0;  ///< next slot index the server will send
  [[nodiscard]] bool operator==(const HelloInfo&) const = default;
};

/// One cell's entry in the fleet aggregate frame (FrameType::kFleet).
/// `state` is the fleet-layer FleetCellState as a raw byte — the wire
/// layer does not depend on src/fleet; consumers that care cast it back.
struct CellSummary {
  std::uint32_t cell_index = 0;
  std::string name;
  std::uint8_t state = 0;
  std::uint64_t slots = 0;  ///< slots processed (lifetime, across restarts)
  std::uint64_t dcis = 0;
  std::uint64_t restarts = 0;
  std::uint32_t active_ues = 0;
  double dl_mbps = 0.0;       ///< trailing-window downlink throughput
  double ul_mbps = 0.0;
  double retx_rate = 0.0;     ///< retransmitted / observed DCIs
  double utilization = 0.0;   ///< granted PRB-slots / downlink capacity
  [[nodiscard]] bool operator==(const CellSummary&) const = default;
};

/// Cross-cell rollup the fleet orchestrator broadcasts periodically: fleet
/// totals, one CellSummary per cell, and the spare-capacity ranking (cell
/// indices, most spare capacity first — the section 5.4.1 use case lifted
/// from one cell to the fleet).
struct FleetSummary {
  std::uint64_t slot = 0;  ///< fleet slots processed when this was emitted
  std::uint64_t dcis_total = 0;
  std::uint64_t restarts_total = 0;
  double dl_mbps_total = 0.0;
  double ul_mbps_total = 0.0;
  double retx_rate = 0.0;
  std::vector<std::uint32_t> spare_ranking;
  std::vector<CellSummary> cells;
  [[nodiscard]] bool operator==(const FleetSummary&) const = default;
};

// ---- Query request/response ------------------------------------------
//
// The wire layer defines the query *shapes* only; executing them against a
// history store lives in src/store (run_query), wired into the server as
// an opaque handler so nrs_net never depends on the store.

enum class QueryKind : std::uint8_t {
  kRange = 0,      ///< raw (slot, value) rows of one series in [from, to)
  kAggregate = 1,  ///< per-bucket count/sum/avg/max downsampling
  kTopK = 2,       ///< series ranked by mean value over [from, to)
};

const char* to_string(QueryKind kind);

/// Which per-bucket statistic the caller cares about (the response carries
/// all of them; this records intent for display layers).
enum class AggregateOp : std::uint8_t {
  kSum = 0,
  kAvg = 1,
  kMax = 2,
};

/// One telemetry history query.  `cell`/`rnti`/`metric` select the series
/// (raw StoreMetric value; the wire layer does not depend on src/store).
/// kTopK treats `cell` == 0xFFFFFFFF as "every cell" and ignores `rnti`,
/// ranking all series of `metric` — e.g. metric = cell_spare_prbs over all
/// cells is the fleet-wide spare-capacity ranking.
struct QueryRequest {
  std::uint64_t correlation_id = 0;  ///< echoed verbatim in the response
  QueryKind kind = QueryKind::kRange;
  std::uint32_t cell = 0;
  std::uint16_t rnti = 0;
  std::uint8_t metric = 0;
  std::uint64_t slot_from = 0;
  std::uint64_t slot_to = 0;        ///< exclusive
  std::uint64_t bucket_slots = 0;   ///< kAggregate: bucket width in slots
  std::uint32_t k = 0;              ///< kTopK: ranking size
  AggregateOp op = AggregateOp::kAvg;
  [[nodiscard]] bool operator==(const QueryRequest&) const = default;
};

/// One raw row of a range scan.
struct QueryRowWire {
  std::uint64_t slot = 0;
  double value = 0.0;
  [[nodiscard]] bool operator==(const QueryRowWire&) const = default;
};

/// One downsampling bucket [start, start + width).
struct QueryBucket {
  std::uint64_t slot_start = 0;
  std::uint64_t count = 0;
  double sum = 0.0;
  double avg = 0.0;
  double max = 0.0;
  [[nodiscard]] bool operator==(const QueryBucket&) const = default;
};

/// One ranked series in a top-K response, best first.
struct TopKEntry {
  std::uint32_t cell = 0;
  std::uint16_t rnti = 0;
  double score = 0.0;       ///< mean value over the queried range
  std::uint64_t rows = 0;   ///< rows the score was computed from
  [[nodiscard]] bool operator==(const TopKEntry&) const = default;
};

enum class QueryStatus : std::uint8_t {
  kOk = 0,
  kBadRequest = 1,    ///< malformed parameters (bad metric, empty range)
  kNotFound = 2,      ///< no such series
  kUnavailable = 3,   ///< server has no query handler attached
};

const char* to_string(QueryStatus status);

struct QueryResponse {
  std::uint64_t correlation_id = 0;
  QueryStatus status = QueryStatus::kOk;
  QueryKind kind = QueryKind::kRange;
  std::string error;  ///< human-readable detail when status != kOk
  std::vector<QueryRowWire> rows;       ///< kRange
  std::vector<QueryBucket> buckets;     ///< kAggregate
  std::vector<TopKEntry> ranking;       ///< kTopK
  [[nodiscard]] bool operator==(const QueryResponse&) const = default;
};

// ---- Byte-level primitives -------------------------------------------

/// Appends little-endian fields to a byte buffer.
class WireWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  /// u16 length prefix + raw bytes.
  void str(const std::string& s);
  void bytes(std::span<const std::uint8_t> data);

  [[nodiscard]] const std::vector<std::uint8_t>& data() const {
    return out_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(out_); }

 private:
  std::vector<std::uint8_t> out_;
};

/// Reads little-endian fields from a byte buffer.  Reading past the end
/// sets a sticky error flag and returns zeros; callers check ok() once at
/// the end instead of guarding every field.
class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  std::string str();

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  /// True when the whole buffer was consumed without error (a decode that
  /// leaves trailing bytes saw a different layout than the encoder wrote).
  [[nodiscard]] bool done() const { return ok_ && remaining() == 0; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// ---- Frames ----------------------------------------------------------

/// One parsed frame; `payload` is a copy, safe to keep after the parser
/// buffer changes.
struct Frame {
  FrameType type = FrameType::kHeartbeat;
  std::vector<std::uint8_t> payload;
};

/// Wrap a payload in a framed header.
std::vector<std::uint8_t> encode_frame(FrameType type,
                                       std::span<const std::uint8_t> payload);

/// Incremental frame parser for a TCP byte stream: feed() arbitrary chunks,
/// pop complete frames with next().  A malformed header (bad magic, wrong
/// version, oversized payload) puts the parser in a sticky error state —
/// on a reliable transport that means protocol mismatch, and the right
/// response is to drop the connection.
class FrameParser {
 public:
  void feed(std::span<const std::uint8_t> data);
  std::optional<Frame> next();

  [[nodiscard]] bool error() const { return !error_.empty(); }
  [[nodiscard]] const std::string& error_message() const { return error_; }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;
  std::string error_;
};

// ---- Payload codecs --------------------------------------------------

void encode_hello(const HelloInfo& hello, WireWriter& w);
std::optional<HelloInfo> decode_hello(std::span<const std::uint8_t> payload);

void encode_slot(const SlotResult& result, WireWriter& w);
std::optional<SlotResult> decode_slot(std::span<const std::uint8_t> payload);

void encode_metrics(const MetricsSnapshot& snapshot, WireWriter& w);
std::optional<MetricsSnapshot> decode_metrics(
    std::span<const std::uint8_t> payload);

void encode_fleet(const FleetSummary& summary, WireWriter& w);
std::optional<FleetSummary> decode_fleet(
    std::span<const std::uint8_t> payload);

void encode_query(const QueryRequest& request, WireWriter& w);
std::optional<QueryRequest> decode_query(
    std::span<const std::uint8_t> payload);

void encode_query_result(const QueryResponse& response, WireWriter& w);
std::optional<QueryResponse> decode_query_result(
    std::span<const std::uint8_t> payload);

//// Convenience: payload codec + framing in one call.
std::vector<std::uint8_t> hello_frame(const HelloInfo& hello);
std::vector<std::uint8_t> slot_frame(const SlotResult& result);
std::vector<std::uint8_t> metrics_frame(const MetricsSnapshot& snapshot);
std::vector<std::uint8_t> fleet_frame(const FleetSummary& summary);
std::vector<std::uint8_t> query_frame(const QueryRequest& request);
std::vector<std::uint8_t> query_result_frame(const QueryResponse& response);
std::vector<std::uint8_t> heartbeat_frame();
std::vector<std::uint8_t> end_frame();

}  // namespace nrs
