// Versioned, length-prefixed binary wire protocol for live telemetry
// streaming.  A TelemetryStreamServer serializes each SlotResult (and
// periodic MetricsSnapshots) into self-delimiting frames; any remote
// consumer that speaks this protocol — TelemetryStreamClient here, or a
// foreign-language tool — can reconstruct the per-TTI feed the paper's
// downstream applications (e.g. the cloud-gaming work) consume.
//
// Frame layout (all integers little-endian, assembled byte by byte so the
// encoding is identical on any host):
//
//   | magic u32 | version u16 | type u16 | payload_len u32 | payload ... |
//
// Decoding never throws and never reads past the buffer: truncated or
// corrupt input yields std::nullopt (WireReader carries a sticky error
// flag), which is what the round-trip/truncation fuzz tests in
// tests/net/test_wire.cc lock down.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "nrscope/nrscope.h"

namespace nrs {

inline constexpr std::uint32_t kWireMagic = 0x4E525357;  // "NRSW"
/// v2 added the request/response query frames (kQuery / kQueryResult);
/// v3 added the distributed-fleet work-assignment frames (worker hello,
/// leases, heartbeats, cell reports) and the structured version-reject
/// frame; v4 added the online-prediction frame (kPrediction) and the
/// batched multi-cell report (kCellReportBatch); v5 added coordinator
/// high availability: replication frames (kStandbyHello /
/// kReplicaSnapshot / kReplicaEvent / kNotPrimary) and a mandatory
/// `epoch` term on every lease, heartbeat and report so a deposed
/// primary is fenced after failover.
inline constexpr std::uint16_t kWireVersion = 5;
/// Oldest peer version still accepted.  v1 predates the query frames and
/// the correlation-ID discipline, so it is no longer interoperable; a v1
/// peer is answered with a kUnsupportedVersion frame and disconnected.
inline constexpr std::uint16_t kWireMinVersion = 2;
/// Upper bound on a sane payload; a bigger announced length means the
/// stream is corrupt (or hostile) and the connection should be dropped.
inline constexpr std::uint32_t kWireMaxPayload = 64u * 1024u * 1024u;
/// Bytes before the payload: magic + version + type + payload_len.
inline constexpr std::size_t kWireHeaderSize = 12;

enum class FrameType : std::uint16_t {
  kHello = 1,      ///< server -> client greeting right after accept
  kSlot = 2,       ///< one serialized SlotResult
  kMetrics = 3,    ///< one serialized MetricsSnapshot
  kHeartbeat = 4,  ///< keep-alive when the stream is idle (empty payload)
  kEnd = 5,        ///< end of stream: the run finished (empty payload)
  kFleet = 6,      ///< one serialized FleetSummary (cross-cell rollup)
  kQuery = 7,        ///< client -> server: one QueryRequest
  kQueryResult = 8,  ///< server -> client: the matching QueryResponse
  // Distributed fleet (coordinator/worker work assignment), v3.
  kWorkerHello = 9,       ///< worker -> coordinator: join the fleet
  kLease = 10,            ///< coordinator -> worker: grant/renew one cell
  kLeaseAck = 11,         ///< worker -> coordinator: accept/refuse a lease
  kWorkerHeartbeat = 12,  ///< worker -> coordinator: liveness + lease state
  kCellReport = 13,       ///< worker -> coordinator: per-cell telemetry
  kLeaseRevoke = 14,      ///< coordinator -> worker: stop running a cell
  /// Structured protocol-mismatch error: sent (best effort) to a peer whose
  /// frames carry a version outside [kWireMinVersion, kWireVersion] right
  /// before the connection is dropped, so old clients see a clear error
  /// instead of a silent disconnect.
  kUnsupportedVersion = 15,
  // Online prediction + WAN batching, v4.
  kPrediction = 16,       ///< one serialized PredictionSet (analysis sink)
  kCellReportBatch = 17,  ///< worker -> coordinator: many CellReports at once
  // Coordinator high availability (replication + epoch fencing), v5.
  kStandbyHello = 18,     ///< standby -> primary: attach as replication tail
  kReplicaSnapshot = 19,  ///< primary -> standby: full coordinator state
  kReplicaEvent = 20,     ///< primary -> standby: one incremental mutation
  kNotPrimary = 21,       ///< standby -> worker: not serving leases here
};

const char* to_string(FrameType type);

/// Greeting payload: lets a (re)connecting client learn where the live
/// stream currently stands.
struct HelloInfo {
  std::uint16_t version = kWireVersion;
  std::uint64_t next_slot = 0;  ///< next slot index the server will send
  [[nodiscard]] bool operator==(const HelloInfo&) const = default;
};

/// One cell's entry in the fleet aggregate frame (FrameType::kFleet).
/// `state` is the fleet-layer FleetCellState as a raw byte — the wire
/// layer does not depend on src/fleet; consumers that care cast it back.
struct CellSummary {
  std::uint32_t cell_index = 0;
  std::string name;
  std::uint8_t state = 0;
  std::uint64_t slots = 0;  ///< slots processed (lifetime, across restarts)
  std::uint64_t dcis = 0;
  std::uint64_t restarts = 0;
  std::uint32_t active_ues = 0;
  double dl_mbps = 0.0;       ///< trailing-window downlink throughput
  double ul_mbps = 0.0;
  double retx_rate = 0.0;     ///< retransmitted / observed DCIs
  double utilization = 0.0;   ///< granted PRB-slots / downlink capacity
  [[nodiscard]] bool operator==(const CellSummary&) const = default;
};

/// Cross-cell rollup the fleet orchestrator broadcasts periodically: fleet
/// totals, one CellSummary per cell, and the spare-capacity ranking (cell
/// indices, most spare capacity first — the section 5.4.1 use case lifted
/// from one cell to the fleet).
struct FleetSummary {
  std::uint64_t slot = 0;  ///< fleet slots processed when this was emitted
  std::uint64_t dcis_total = 0;
  std::uint64_t restarts_total = 0;
  double dl_mbps_total = 0.0;
  double ul_mbps_total = 0.0;
  double retx_rate = 0.0;
  std::vector<std::uint32_t> spare_ranking;
  std::vector<CellSummary> cells;
  [[nodiscard]] bool operator==(const FleetSummary&) const = default;
};

// ---- Query request/response ------------------------------------------
//
// The wire layer defines the query *shapes* only; executing them against a
// history store lives in src/store (run_query), wired into the server as
// an opaque handler so nrs_net never depends on the store.

enum class QueryKind : std::uint8_t {
  kRange = 0,      ///< raw (slot, value) rows of one series in [from, to)
  kAggregate = 1,  ///< per-bucket count/sum/avg/max downsampling
  kTopK = 2,       ///< series ranked by mean value over [from, to)
};

const char* to_string(QueryKind kind);

/// Which per-bucket statistic the caller cares about (the response carries
/// all of them; this records intent for display layers).
enum class AggregateOp : std::uint8_t {
  kSum = 0,
  kAvg = 1,
  kMax = 2,
};

/// One telemetry history query.  `cell`/`rnti`/`metric` select the series
/// (raw StoreMetric value; the wire layer does not depend on src/store).
/// kTopK treats `cell` == 0xFFFFFFFF as "every cell" and ignores `rnti`,
/// ranking all series of `metric` — e.g. metric = cell_spare_prbs over all
/// cells is the fleet-wide spare-capacity ranking.
struct QueryRequest {
  std::uint64_t correlation_id = 0;  ///< echoed verbatim in the response
  QueryKind kind = QueryKind::kRange;
  std::uint32_t cell = 0;
  std::uint16_t rnti = 0;
  std::uint8_t metric = 0;
  std::uint64_t slot_from = 0;
  std::uint64_t slot_to = 0;        ///< exclusive
  std::uint64_t bucket_slots = 0;   ///< kAggregate: bucket width in slots
  std::uint32_t k = 0;              ///< kTopK: ranking size
  AggregateOp op = AggregateOp::kAvg;
  [[nodiscard]] bool operator==(const QueryRequest&) const = default;
};

/// One raw row of a range scan.
struct QueryRowWire {
  std::uint64_t slot = 0;
  double value = 0.0;
  [[nodiscard]] bool operator==(const QueryRowWire&) const = default;
};

/// One downsampling bucket [start, start + width).
struct QueryBucket {
  std::uint64_t slot_start = 0;
  std::uint64_t count = 0;
  double sum = 0.0;
  double avg = 0.0;
  double max = 0.0;
  [[nodiscard]] bool operator==(const QueryBucket&) const = default;
};

/// One ranked series in a top-K response, best first.
struct TopKEntry {
  std::uint32_t cell = 0;
  std::uint16_t rnti = 0;
  double score = 0.0;       ///< mean value over the queried range
  std::uint64_t rows = 0;   ///< rows the score was computed from
  [[nodiscard]] bool operator==(const TopKEntry&) const = default;
};

enum class QueryStatus : std::uint8_t {
  kOk = 0,
  kBadRequest = 1,    ///< malformed parameters (bad metric, empty range)
  kNotFound = 2,      ///< no such series
  kUnavailable = 3,   ///< server has no query handler attached
};

const char* to_string(QueryStatus status);

struct QueryResponse {
  std::uint64_t correlation_id = 0;
  QueryStatus status = QueryStatus::kOk;
  QueryKind kind = QueryKind::kRange;
  std::string error;  ///< human-readable detail when status != kOk
  std::vector<QueryRowWire> rows;       ///< kRange
  std::vector<QueryBucket> buckets;     ///< kAggregate
  std::vector<TopKEntry> ranking;       ///< kTopK
  [[nodiscard]] bool operator==(const QueryResponse&) const = default;
};

// ---- Distributed fleet (coordinator/worker) --------------------------
//
// The wire layer defines the work-assignment *shapes* only; granting,
// renewing and revoking leases is src/dist's business.  Cell specs travel
// as (preset name + overrides) rather than a full CellConfig dump: both
// ends of the protocol link the preset table, and an unknown preset is a
// lease refusal, not a decode error.

/// Payload of FrameType::kUnsupportedVersion.
struct VersionReject {
  std::uint16_t rejected = 0;  ///< the version the peer spoke
  std::uint16_t min_version = kWireMinVersion;
  std::uint16_t max_version = kWireVersion;
  std::string message;
  [[nodiscard]] bool operator==(const VersionReject&) const = default;
};

/// Worker -> coordinator greeting: who I am and how many cells I can run.
/// `epoch` is the highest coordinator term the worker has seen (0 on a
/// fresh worker); a coordinator receiving a hello from a *newer* epoch
/// knows it has been deposed and fences itself instead of registering the
/// worker.
struct WorkerHello {
  std::string name;
  std::uint32_t capacity = 1;  ///< max concurrent cell leases
  std::uint16_t version = kWireVersion;
  std::uint32_t pool_threads = 0;  ///< informational (capacity planning)
  std::uint64_t epoch = 0;         ///< highest coordinator term seen
  [[nodiscard]] bool operator==(const WorkerHello&) const = default;
};

/// Everything a worker needs to run one cell: a preset name plus the
/// overrides the coordinator chose.  `incarnation` is the cell's handoff
/// count — seeds derive from (seed, incarnation), so a reassigned cell
/// draws a fresh but reproducible stream on its new worker.
struct WireCellSpec {
  std::uint32_t cell_index = 0;  ///< fleet-global index
  std::string name;
  std::string preset;
  std::uint16_t pci = 0;  ///< 0 = keep the preset's PCI
  std::uint32_t n_ues = 2;
  double ue_rate_bps = 2e6;
  double ue_snr_db = 18.0;
  double sniffer_snr_db = 28.0;
  std::uint64_t seed = 1;
  std::uint32_t incarnation = 0;
  [[nodiscard]] bool operator==(const WireCellSpec&) const = default;
};

/// Coordinator -> worker: run `spec` under lease `lease_id` for `ttl_ms`.
/// A grant for a lease_id the worker already holds is a renewal (the TTL
/// clock restarts); the spec is identical by construction.
struct LeaseGrant {
  std::uint64_t lease_id = 0;
  std::uint32_t ttl_ms = 0;
  /// Coordinator-side lifetime slots already credited to this cell by
  /// earlier leases (informational: lets a worker log global positions).
  std::uint64_t base_slot = 0;
  /// Coordinator term the grant was issued under.  Workers adopt higher
  /// epochs and refuse grants from a lower one (deposed primary).
  std::uint64_t epoch = 0;
  WireCellSpec spec;
  [[nodiscard]] bool operator==(const LeaseGrant&) const = default;
};

/// Worker -> coordinator: lease accepted (cell is starting) or refused
/// (unknown preset, over capacity) with a reason.
struct LeaseAck {
  std::uint64_t lease_id = 0;
  std::uint32_t cell_index = 0;
  bool accepted = false;
  std::string message;
  std::uint64_t epoch = 0;  ///< the worker's current coordinator term
  [[nodiscard]] bool operator==(const LeaseAck&) const = default;
};

/// One held lease's state inside a worker heartbeat.
struct LeaseStatus {
  std::uint64_t lease_id = 0;
  std::uint32_t cell_index = 0;
  std::uint64_t slots = 0;      ///< slots delivered within this lease
  std::uint8_t cell_state = 0;  ///< raw FleetCellState
  [[nodiscard]] bool operator==(const LeaseStatus&) const = default;
};

/// Worker -> coordinator liveness.  Receiving one renews every listed
/// lease; a worker that goes silent past the heartbeat timeout is declared
/// dead and its cells are reassigned.
struct WorkerHeartbeat {
  std::uint64_t seq = 0;
  std::uint64_t epoch = 0;  ///< highest coordinator term the worker saw
  std::vector<LeaseStatus> leases;
  [[nodiscard]] bool operator==(const WorkerHeartbeat&) const = default;
};

/// One history-store row forwarded inside a cell report.  `slot` is
/// lease-local; the coordinator rebases it onto the cell's lifetime slot
/// axis before ingest.
struct StoreRowUpdate {
  std::uint16_t rnti = 0;
  std::uint8_t metric = 0;  ///< raw StoreMetric
  std::uint64_t slot = 0;
  double value = 0.0;
  [[nodiscard]] bool operator==(const StoreRowUpdate&) const = default;
};

/// Worker -> coordinator: one cell's telemetry under one lease.  Counters
/// are lease-local lifetime totals (monotonic within the lease); the
/// coordinator adds them to the totals committed by earlier leases, which
/// is what keeps the fleet view monotonic across a reassignment.
struct CellReport {
  std::uint64_t lease_id = 0;
  std::uint64_t epoch = 0;  ///< coordinator term the lease was granted under
  std::uint32_t cell_index = 0;
  std::uint8_t cell_state = 0;  ///< raw FleetCellState
  std::uint64_t slots = 0;
  std::uint64_t dcis = 0;
  std::uint64_t retx_dcis = 0;
  std::uint64_t restarts = 0;  ///< worker-supervisor restarts, this lease
  std::uint32_t active_ues = 0;
  double dl_mbps = 0.0;
  double ul_mbps = 0.0;
  double retx_rate = 0.0;
  double utilization = 0.0;
  double spare_prb_rate = 0.0;
  std::vector<StoreRowUpdate> rows;
  [[nodiscard]] bool operator==(const CellReport&) const = default;
};

/// Worker -> coordinator: every live lease's CellReport folded into one
/// frame per report interval (FrameType::kCellReportBatch), so a worker
/// running N cells costs one send + one syscall per interval instead of N
/// — the WAN-headroom batching noted against the PR 7 fleet.
struct CellReportBatch {
  std::vector<CellReport> reports;
  [[nodiscard]] bool operator==(const CellReportBatch&) const = default;
};

/// One UE's row in a PredictionSet.  `predicted_bps` is the downlink
/// throughput the analysis predictor forecast over `horizon_slots`;
/// when `has_actual` is set the horizon has matured and `actual_bps` /
/// `abs_error_bps` carry the realized value and |predicted - actual|.
/// `degraded` marks forecasts made while the engine was resyncing
/// (SlotResult::degraded) — consumers should trust them less.
struct PredictionEntry {
  std::uint16_t rnti = 0;
  bool has_actual = false;
  bool degraded = false;
  double predicted_bps = 0.0;
  double actual_bps = 0.0;
  double abs_error_bps = 0.0;
  [[nodiscard]] bool operator==(const PredictionEntry&) const = default;
};

/// Periodic output of the analysis PredictionSink
/// (FrameType::kPrediction): fresh per-UE throughput forecasts plus the
/// predicted-vs-actual scoring of forecasts whose horizon just matured.
/// `model_version` stamps which trained weights produced the numbers so
/// fleet-wide consumers can tell cells running stale models apart.
struct PredictionSet {
  std::uint32_t cell_index = 0;
  std::uint64_t slot = 0;  ///< sink-local slot the set was emitted at
  std::uint32_t horizon_slots = 0;
  std::uint32_t model_version = 0;
  std::vector<PredictionEntry> entries;
  [[nodiscard]] bool operator==(const PredictionSet&) const = default;
};

/// Coordinator -> worker: stop running this cell (rebalance toward a
/// newly joined worker, or an operator decision).  The worker tears the
/// cell down and stops reporting under this lease.
struct LeaseRevoke {
  std::uint64_t lease_id = 0;
  std::uint32_t cell_index = 0;
  std::string reason;
  std::uint64_t epoch = 0;  ///< coordinator term; stale revokes are ignored
  [[nodiscard]] bool operator==(const LeaseRevoke&) const = default;
};

// ---- Coordinator replication (v5) ------------------------------------
//
// A standby coordinator attaches to the primary with kStandbyHello and
// receives one kReplicaSnapshot (the full mirrored state) followed by a
// stream of kReplicaEvent mutations.  On primary death the standby bumps
// the epoch and takes over; a worker that dials the standby *before* the
// promotion is answered with kNotPrimary and tries the next address.

/// Standby -> primary: attach this connection as a replication tail.
struct StandbyHello {
  std::string name;
  std::uint16_t version = kWireVersion;
  [[nodiscard]] bool operator==(const StandbyHello&) const = default;
};

/// Coordinator -> worker (or to a second standby): this endpoint is not
/// the acting primary.  `epoch` lets the caller learn how stale its view
/// is; `message` is human-readable detail ("standby", "deposed").
struct NotPrimary {
  std::uint64_t epoch = 0;
  std::string message;
  [[nodiscard]] bool operator==(const NotPrimary&) const = default;
};

/// One mirrored catalog entry inside a ReplicaSnapshot.
struct ReplicaWorker {
  std::uint64_t worker_id = 0;
  std::string name;
  std::uint32_t capacity = 1;
  [[nodiscard]] bool operator==(const ReplicaWorker&) const = default;
};

/// One cell's full replicated state: the spec (so a standby needs no cell
/// list of its own), the lease binding, the committed lifetime totals and
/// the live in-flight report.  `live` always has empty rows — history rows
/// replicate separately (already rebased) via kStoreRows events.
struct ReplicaCell {
  WireCellSpec spec;
  std::uint8_t lease_state = 0;  ///< raw dist LeaseState
  std::uint64_t lease_id = 0;
  std::uint64_t worker_id = 0;
  std::uint32_t handoffs = 0;
  std::uint64_t committed_slots = 0;
  std::uint64_t committed_dcis = 0;
  std::uint64_t committed_retx = 0;
  std::uint64_t committed_restarts = 0;
  std::uint64_t lease_base_slot = 0;
  bool has_report = false;
  CellReport live;  ///< rows always empty on the wire
  [[nodiscard]] bool operator==(const ReplicaCell&) const = default;
};

/// Primary -> standby: the complete coordinator state, sent once right
/// after kStandbyHello (and again after a replication reconnect).
struct ReplicaSnapshot {
  std::uint64_t epoch = 0;
  /// Lease-id high-water mark (the highest id ever issued), so a promoted
  /// standby never reuses a live lease id.
  std::uint64_t next_lease_id = 0;
  std::vector<ReplicaWorker> workers;
  std::vector<ReplicaCell> cells;
  [[nodiscard]] bool operator==(const ReplicaSnapshot&) const = default;
};

/// What one kReplicaEvent mutates.  The event payload is a fixed superset
/// of every kind's fields (unused ones travel as zeros/empties) so the
/// codec stays a flat read with no kind-dependent branching — the same
/// every-truncation-fails discipline as the rest of the protocol.
enum class ReplicaEventKind : std::uint8_t {
  kWorkerJoin = 0,    ///< catalog add: worker_id, worker_name, capacity
  kWorkerLeave = 1,   ///< catalog remove: worker_id
  kLeaseGrant = 2,    ///< cell_index, lease_id, worker_id, lease_base_slot
  kLeaseRenew = 3,    ///< heartbeat renewal / ack: cell_index, lease_state
  kLeaseRelease = 4,  ///< lease ended: post-fold committed totals, handoffs
  kCellTotals = 5,    ///< report ingested: committed totals + live report
  kStoreRows = 6,     ///< history rows, already rebased to global slots
};

const char* to_string(ReplicaEventKind kind);

/// Primary -> standby: one incremental state mutation.
struct ReplicaEvent {
  ReplicaEventKind kind = ReplicaEventKind::kLeaseRenew;
  std::uint64_t epoch = 0;
  std::uint32_t cell_index = 0;
  std::uint64_t lease_id = 0;
  std::uint64_t worker_id = 0;
  std::uint8_t lease_state = 0;  ///< raw dist LeaseState
  std::uint32_t handoffs = 0;
  std::string worker_name;   ///< kWorkerJoin
  std::uint32_t capacity = 0;  ///< kWorkerJoin
  std::uint64_t committed_slots = 0;
  std::uint64_t committed_dcis = 0;
  std::uint64_t committed_retx = 0;
  std::uint64_t committed_restarts = 0;
  std::uint64_t lease_base_slot = 0;
  bool has_report = false;
  CellReport live;  ///< kCellTotals; rows always empty on the wire
  /// kStoreRows: rows with `slot` already rebased to the cell's global
  /// lifetime axis (unlike CellReport rows, which are lease-local).
  std::vector<StoreRowUpdate> rows;
  [[nodiscard]] bool operator==(const ReplicaEvent&) const = default;
};

// ---- Byte-level primitives -------------------------------------------

/// Appends little-endian fields to a byte buffer.
class WireWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  /// u16 length prefix + raw bytes.
  void str(const std::string& s);
  void bytes(std::span<const std::uint8_t> data);

  [[nodiscard]] const std::vector<std::uint8_t>& data() const {
    return out_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(out_); }

 private:
  std::vector<std::uint8_t> out_;
};

/// Reads little-endian fields from a byte buffer.  Reading past the end
/// sets a sticky error flag and returns zeros; callers check ok() once at
/// the end instead of guarding every field.
class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  std::string str();

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  /// True when the whole buffer was consumed without error (a decode that
  /// leaves trailing bytes saw a different layout than the encoder wrote).
  [[nodiscard]] bool done() const { return ok_ && remaining() == 0; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// ---- Frames ----------------------------------------------------------

/// One parsed frame; `payload` is a copy, safe to keep after the parser
/// buffer changes.
struct Frame {
  FrameType type = FrameType::kHeartbeat;
  std::vector<std::uint8_t> payload;
};

/// Wrap a payload in a framed header.
std::vector<std::uint8_t> encode_frame(FrameType type,
                                       std::span<const std::uint8_t> payload);

/// Like encode_frame but stamping an explicit protocol version into the
/// header.  Exists for mixed-version interop tests (impersonating an old
/// peer); production senders always use encode_frame.
std::vector<std::uint8_t> encode_frame_with_version(
    std::uint16_t version, FrameType type,
    std::span<const std::uint8_t> payload);

/// Incremental frame parser for a TCP byte stream: feed() arbitrary chunks,
/// pop complete frames with next().  A malformed header (bad magic, a
/// version outside [kWireMinVersion, kWireVersion], oversized payload) puts
/// the parser in a sticky error state — on a reliable transport that means
/// protocol mismatch, and the right response is to drop the connection.
/// When the failure was specifically a version mismatch, the offending
/// version is recorded so the owner can answer with a structured
/// kUnsupportedVersion frame before disconnecting.
class FrameParser {
 public:
  void feed(std::span<const std::uint8_t> data);
  std::optional<Frame> next();

  [[nodiscard]] bool error() const { return !error_.empty(); }
  [[nodiscard]] const std::string& error_message() const { return error_; }
  /// Set iff the sticky error is a protocol-version mismatch: the version
  /// the peer's header announced.
  [[nodiscard]] std::optional<std::uint16_t> rejected_version() const {
    return rejected_version_;
  }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;
  std::string error_;
  std::optional<std::uint16_t> rejected_version_;
};

// ---- Payload codecs --------------------------------------------------

void encode_hello(const HelloInfo& hello, WireWriter& w);
std::optional<HelloInfo> decode_hello(std::span<const std::uint8_t> payload);

void encode_slot(const SlotResult& result, WireWriter& w);
std::optional<SlotResult> decode_slot(std::span<const std::uint8_t> payload);

void encode_metrics(const MetricsSnapshot& snapshot, WireWriter& w);
std::optional<MetricsSnapshot> decode_metrics(
    std::span<const std::uint8_t> payload);

void encode_fleet(const FleetSummary& summary, WireWriter& w);
std::optional<FleetSummary> decode_fleet(
    std::span<const std::uint8_t> payload);

void encode_query(const QueryRequest& request, WireWriter& w);
std::optional<QueryRequest> decode_query(
    std::span<const std::uint8_t> payload);

void encode_query_result(const QueryResponse& response, WireWriter& w);
std::optional<QueryResponse> decode_query_result(
    std::span<const std::uint8_t> payload);

void encode_version_reject(const VersionReject& reject, WireWriter& w);
std::optional<VersionReject> decode_version_reject(
    std::span<const std::uint8_t> payload);

void encode_worker_hello(const WorkerHello& hello, WireWriter& w);
std::optional<WorkerHello> decode_worker_hello(
    std::span<const std::uint8_t> payload);

void encode_lease(const LeaseGrant& lease, WireWriter& w);
std::optional<LeaseGrant> decode_lease(std::span<const std::uint8_t> payload);

void encode_lease_ack(const LeaseAck& ack, WireWriter& w);
std::optional<LeaseAck> decode_lease_ack(
    std::span<const std::uint8_t> payload);

void encode_worker_heartbeat(const WorkerHeartbeat& hb, WireWriter& w);
std::optional<WorkerHeartbeat> decode_worker_heartbeat(
    std::span<const std::uint8_t> payload);

void encode_cell_report(const CellReport& report, WireWriter& w);
std::optional<CellReport> decode_cell_report(
    std::span<const std::uint8_t> payload);

void encode_lease_revoke(const LeaseRevoke& revoke, WireWriter& w);
std::optional<LeaseRevoke> decode_lease_revoke(
    std::span<const std::uint8_t> payload);

void encode_cell_report_batch(const CellReportBatch& batch, WireWriter& w);
std::optional<CellReportBatch> decode_cell_report_batch(
    std::span<const std::uint8_t> payload);

void encode_prediction(const PredictionSet& set, WireWriter& w);
std::optional<PredictionSet> decode_prediction(
    std::span<const std::uint8_t> payload);

void encode_standby_hello(const StandbyHello& hello, WireWriter& w);
std::optional<StandbyHello> decode_standby_hello(
    std::span<const std::uint8_t> payload);

void encode_not_primary(const NotPrimary& info, WireWriter& w);
std::optional<NotPrimary> decode_not_primary(
    std::span<const std::uint8_t> payload);

void encode_replica_snapshot(const ReplicaSnapshot& snapshot, WireWriter& w);
std::optional<ReplicaSnapshot> decode_replica_snapshot(
    std::span<const std::uint8_t> payload);

void encode_replica_event(const ReplicaEvent& event, WireWriter& w);
std::optional<ReplicaEvent> decode_replica_event(
    std::span<const std::uint8_t> payload);

//// Convenience: payload codec + framing in one call.
std::vector<std::uint8_t> hello_frame(const HelloInfo& hello);
std::vector<std::uint8_t> slot_frame(const SlotResult& result);
std::vector<std::uint8_t> metrics_frame(const MetricsSnapshot& snapshot);
std::vector<std::uint8_t> fleet_frame(const FleetSummary& summary);
std::vector<std::uint8_t> query_frame(const QueryRequest& request);
std::vector<std::uint8_t> query_result_frame(const QueryResponse& response);
std::vector<std::uint8_t> version_reject_frame(const VersionReject& reject);
std::vector<std::uint8_t> worker_hello_frame(const WorkerHello& hello);
std::vector<std::uint8_t> lease_frame(const LeaseGrant& lease);
std::vector<std::uint8_t> lease_ack_frame(const LeaseAck& ack);
std::vector<std::uint8_t> worker_heartbeat_frame(const WorkerHeartbeat& hb);
std::vector<std::uint8_t> cell_report_frame(const CellReport& report);
std::vector<std::uint8_t> lease_revoke_frame(const LeaseRevoke& revoke);
std::vector<std::uint8_t> cell_report_batch_frame(const CellReportBatch& batch);
std::vector<std::uint8_t> prediction_frame(const PredictionSet& set);
std::vector<std::uint8_t> standby_hello_frame(const StandbyHello& hello);
std::vector<std::uint8_t> not_primary_frame(const NotPrimary& info);
std::vector<std::uint8_t> replica_snapshot_frame(
    const ReplicaSnapshot& snapshot);
std::vector<std::uint8_t> replica_event_frame(const ReplicaEvent& event);
std::vector<std::uint8_t> heartbeat_frame();
std::vector<std::uint8_t> end_frame();

}  // namespace nrs
