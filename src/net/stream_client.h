// Reconnecting consumer of the telemetry wire protocol.  Owns one reader
// thread: it connects to a TelemetryStreamServer, parses frames, and hands
// decoded SlotResults / MetricsSnapshots to user callbacks.  Liveness is
// watched with a read timeout (the server heartbeats when idle, so a quiet
// socket means a dead peer, not a quiet cell); a lost connection is retried
// forever (or up to a configured attempt budget) with exponential backoff,
// which makes the client survive mid-stream server restarts: it simply
// resubscribes and resumes with the server's hello frame.
//
// The connection is also request/response-capable: query() sends a kQuery
// frame tagged with a fresh correlation ID and blocks the *calling* thread
// until the matching kQueryResult arrives (the reader thread pairs
// responses to waiters by ID), the per-request timeout expires, or the
// connection drops.  Because responses are correlated, any number of
// threads can query concurrently over the one socket, interleaved with the
// live slot stream.  Inbound frames are routed through a single dispatch
// table — the streaming callbacks, the heartbeat and the query responses
// are all just rows in it.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/metrics.h"
#include "net/wire.h"

namespace nrs {

struct StreamClientConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// No frame (not even a heartbeat) for this long -> the connection is
  /// declared dead and the reconnect loop takes over.  Must be comfortably
  /// larger than the server's heartbeat_period_s.
  double read_timeout_s = 2.0;
  double backoff_initial_s = 0.05;  ///< first reconnect delay
  double backoff_max_s = 1.0;       ///< exponential backoff ceiling
  /// Multiplicative reconnect jitter in [0, 1]: each delay is drawn
  /// uniformly from [base * (1 - jitter), base], so many clients losing
  /// one server together do not redial it in lockstep.  0 disables.
  double backoff_jitter = 0.5;
  /// Seed for the jitter draws; 0 derives a per-instance seed so distinct
  /// clients de-correlate even when configured identically.
  std::uint64_t backoff_seed = 0;
  /// Give up after this many consecutive failed connects (-1 = never).
  int max_reconnect_attempts = -1;
  /// Stop the reader thread once an end-of-stream frame arrives (a
  /// finished run); switch off to keep listening across runs.
  bool stop_on_end_of_stream = true;
};

/// Decoded-frame callbacks, all invoked on the client's reader thread.
/// Unset members are simply skipped.
struct StreamClientHandlers {
  std::function<void(const HelloInfo&)> on_connected;
  std::function<void(const SlotResult&)> on_slot;
  std::function<void(const MetricsSnapshot&)> on_metrics;
  std::function<void(const FleetSummary&)> on_fleet;
  /// One analysis PredictionSet (per-UE throughput forecasts and matured
  /// predicted-vs-actual scores) arrived on the stream.
  std::function<void(const PredictionSet&)> on_prediction;
  std::function<void()> on_disconnected;
  std::function<void()> on_end_of_stream;
  /// The server rejected this client's protocol version (a structured
  /// kUnsupportedVersion frame arrived).  The client records the reject
  /// (see protocol_error()) and stops — reconnecting cannot help, the two
  /// binaries disagree about the protocol.
  std::function<void(const VersionReject&)> on_protocol_error;
};

class TelemetryStreamClient {
 public:
  /// Starts the reader thread immediately.  `registry` (optional) receives
  /// the net.client.* metrics: connects, reconnect attempts, frames/bytes
  /// received, disconnects.
  TelemetryStreamClient(const StreamClientConfig& config,
                        StreamClientHandlers handlers,
                        MetricsRegistry* registry = nullptr);
  ~TelemetryStreamClient();

  TelemetryStreamClient(const TelemetryStreamClient&) = delete;
  TelemetryStreamClient& operator=(const TelemetryStreamClient&) = delete;

  /// Ask the reader thread to exit and join it.  Idempotent.
  void stop();

  /// Send one query over the live connection and wait for its response.
  /// The request's correlation_id is assigned here (any caller-set value
  /// is overwritten).  Returns nullopt when not connected, when the send
  /// fails, or when no response arrives within timeout_s (counted in
  /// net.client.query_timeouts; a response that limps in later is
  /// discarded).  A connection drop while waiting yields a response with
  /// status kUnavailable rather than a silent hang.  Thread-safe: any
  /// number of callers may have queries in flight concurrently.
  std::optional<QueryResponse> query(QueryRequest request,
                                     double timeout_s = 2.0);

  [[nodiscard]] bool connected() const { return connected_.load(); }
  /// True once an end-of-stream frame has been received.
  [[nodiscard]] bool end_of_stream() const { return saw_end_.load(); }
  /// Set when the server answered with kUnsupportedVersion: a
  /// human-readable description of the version mismatch.  Empty when no
  /// protocol error has occurred.  The reader thread has stopped (no
  /// reconnect) once this is non-empty.
  [[nodiscard]] std::string protocol_error() const;
  /// True when the reader thread has exited (end of stream, stop(), or
  /// the reconnect budget ran out).
  [[nodiscard]] bool finished() const { return finished_.load(); }

  /// Block until end_of_stream() (or the thread exits); false on timeout.
  bool wait_end_of_stream(double timeout_s);
  /// Block until connected() is true; false on timeout.
  bool wait_connected(double timeout_s);

 private:
  void run();
  /// One connection lifetime; returns true when the client should stop.
  bool serve_connection(int fd);
  [[nodiscard]] int connect_once() const;
  void note_state_change();

  /// Route one well-framed inbound frame through the dispatch table;
  /// returns true when the client should stop (end-of-stream row).
  bool dispatch_frame(const Frame& frame);
  bool handle_hello(const Frame& frame);
  bool handle_slot(const Frame& frame);
  bool handle_metrics(const Frame& frame);
  bool handle_fleet(const Frame& frame);
  bool handle_prediction(const Frame& frame);
  bool handle_heartbeat(const Frame& frame);
  bool handle_end(const Frame& frame);
  bool handle_query_result(const Frame& frame);
  bool handle_version_reject(const Frame& frame);

  /// Resolve every in-flight query with status kUnavailable (connection
  /// dropped / client stopping) so no caller blocks out its full timeout.
  void fail_pending_queries(const char* reason);

  StreamClientConfig config_;
  StreamClientHandlers handlers_;
  std::unique_ptr<MetricsRegistry> own_registry_;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> connected_{false};
  std::atomic<bool> saw_end_{false};
  std::atomic<bool> finished_{false};
  std::atomic<int> live_fd_{-1};  ///< shutdown() target for stop()

  std::mutex state_mutex_;
  std::condition_variable state_cv_;
  mutable std::mutex protocol_error_mutex_;
  std::string protocol_error_;

  // Request path: one writer at a time on the socket, and the reader
  // thread pairs kQueryResult frames to waiting callers by correlation ID.
  std::mutex send_mutex_;
  std::mutex pending_mutex_;
  std::unordered_map<std::uint64_t, std::promise<QueryResponse>> pending_;
  std::atomic<std::uint64_t> next_correlation_{0};

  std::thread reader_;

  Counter* m_connects_ = nullptr;
  Counter* m_reconnect_attempts_ = nullptr;
  Counter* m_disconnects_ = nullptr;
  Counter* m_frames_rx_ = nullptr;
  Counter* m_bytes_rx_ = nullptr;
  Counter* m_decode_errors_ = nullptr;
  Counter* m_queries_sent_ = nullptr;
  Counter* m_query_responses_ = nullptr;
  Counter* m_query_timeouts_ = nullptr;
  Counter* m_version_rejected_ = nullptr;
};

}  // namespace nrs
