// Shared blocking-socket send helper for every frame-writing path
// (stream server/client, fleet coordinator/worker).  The crucial rule on
// an SO_SNDTIMEO-bounded socket: a short write that cannot be completed
// leaves HALF A FRAME in the peer's stream, so the connection must be
// treated as broken — writing the next frame after a partial send would
// land mid-frame and corrupt the protocol stream.  send_exact() reports
// kPartial distinctly from kFailed so callers (and tests) can tell a torn
// stream from a frame that never hit the wire at all; either way the only
// safe follow-up is to close the connection.
#pragma once

#include <cstddef>
#include <cstdint>

namespace nrs {

enum class SendResult : std::uint8_t {
  kOk = 0,       ///< every byte written
  kFailed = 1,   ///< nothing written (frame never reached the stream)
  kPartial = 2,  ///< short write: the stream now carries a torn frame
};

/// write() the whole buffer, riding out EINTR and benign partial sends.
/// Uses MSG_NOSIGNAL so a vanished peer surfaces as EPIPE, not SIGPIPE.
/// On an SO_SNDTIMEO socket a wedged peer fails the send (EAGAIN) instead
/// of wedging the calling thread; if that happens after some bytes went
/// out the result is kPartial and the connection must be dropped.
SendResult send_exact(int fd, const std::uint8_t* data, std::size_t size);

/// Convenience: true iff the whole buffer was written.  Any false return
/// means the connection is no longer usable for framed traffic.
inline bool send_all(int fd, const std::uint8_t* data, std::size_t size) {
  return send_exact(fd, data, size) == SendResult::kOk;
}

}  // namespace nrs
