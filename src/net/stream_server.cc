#include "net/stream_server.h"

#include "net/socket_io.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

namespace nrs {

const char* to_string(BackpressurePolicy policy) {
  switch (policy) {
    case BackpressurePolicy::kDropOldest: return "drop-oldest";
    case BackpressurePolicy::kCoalesceLatest: return "coalesce-latest";
    case BackpressurePolicy::kDisconnectSlow: return "disconnect-slow";
  }
  return "unknown";
}

TelemetryStreamServer::TelemetryStreamServer(
    const StreamServerConfig& config, MetricsRegistry* registry)
    : config_(config) {
  if (config_.client_queue_frames == 0) {
    throw std::invalid_argument(
        "TelemetryStreamServer: client_queue_frames must be > 0");
  }
  if (registry != nullptr) {
    registry_ = registry;
    send_metrics_frames_ = config_.metrics_period_slots > 0;
  } else {
    own_registry_ = std::make_unique<MetricsRegistry>();
    registry_ = own_registry_.get();
  }
  m_bytes_sent_ = &registry_->counter("net.bytes_sent");
  m_frames_sent_ = &registry_->counter("net.frames_sent");
  m_heartbeats_sent_ = &registry_->counter("net.heartbeats_sent");
  m_drop_oldest_ = &registry_->counter("net.frames_dropped.drop_oldest");
  m_drop_coalesced_ = &registry_->counter("net.frames_dropped.coalesced");
  m_disconnect_slow_ =
      &registry_->counter("net.clients_disconnected_slow");
  m_connects_ = &registry_->counter("net.client_connects");
  m_disconnects_ = &registry_->counter("net.client_disconnects");
  m_send_errors_ = &registry_->counter("net.send_errors");
  m_version_rejects_ = &registry_->counter("net.version_rejects");
  m_clients_ = &registry_->gauge("net.clients");
  m_query_requests_ = &registry_->counter("query.requests");
  m_query_errors_ = &registry_->counter("query.errors");
  m_query_rejected_ = &registry_->counter("query.rejected");
  m_query_latency_us_ = &registry_->histogram("query.latency_us");
  m_query_inflight_ = &registry_->gauge("query.inflight");
  if (config_.query_handler) {
    query_pool_ =
        std::make_unique<WorkerPool>(std::max(1u, config_.query_threads));
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("TelemetryStreamServer: socket() failed");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    throw std::runtime_error("TelemetryStreamServer: bad bind address " +
                             config_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("TelemetryStreamServer: cannot listen on " +
                             config_.bind_address + ":" +
                             std::to_string(config_.port));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  acceptor_ = std::thread([this] { accept_loop(); });
}

TelemetryStreamServer::~TelemetryStreamServer() { stop(); }

void TelemetryStreamServer::stop() {
  if (stopping_.exchange(true)) {
    if (acceptor_.joinable()) {
      acceptor_.join();
    }
    return;
  }
  if (acceptor_.joinable()) {
    acceptor_.join();
  }
  // Drain the query pool before tearing clients down: in-flight responses
  // either land on a still-open queue or hit a closed one and vanish.
  query_pool_.reset();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::lock_guard lock(clients_mutex_);
  for (const auto& client : clients_) {
    client->queue.close();
    ::shutdown(client->fd, SHUT_RDWR);
  }
  for (const auto& client : clients_) {
    if (client->sender.joinable()) {
      client->sender.join();
    }
    ::close(client->fd);
    m_disconnects_->inc();
  }
  clients_.clear();
  m_clients_->set(0);
}

std::size_t TelemetryStreamServer::client_count() const {
  std::lock_guard lock(clients_mutex_);
  std::size_t alive = 0;
  for (const auto& client : clients_) {
    alive += client->dead.load() ? 0 : 1;
  }
  return alive;
}

void TelemetryStreamServer::kick_all_clients() {
  std::lock_guard lock(clients_mutex_);
  for (const auto& client : clients_) {
    client->dead.store(true);
    client->queue.close();
    ::shutdown(client->fd, SHUT_RDWR);
  }
}

void TelemetryStreamServer::accept_loop() {
  std::vector<pollfd> pfds;
  std::vector<std::shared_ptr<Client>> polled;
  while (!stopping_.load()) {
    pfds.clear();
    polled.clear();
    pfds.push_back(pollfd{listen_fd_, POLLIN, 0});
    {
      std::lock_guard lock(clients_mutex_);
      reap_dead_clients_locked();
      for (const auto& client : clients_) {
        if (!client->dead.load()) {
          pfds.push_back(pollfd{client->fd, POLLIN, 0});
          polled.push_back(client);
        }
      }
    }
    const int ready =
        ::poll(pfds.data(), pfds.size(), /*timeout_ms=*/50);
    if (ready <= 0) {
      continue;
    }
    // Client sockets first: inbound queries and half-closed peers.
    for (std::size_t i = 1; i < pfds.size(); ++i) {
      if (pfds[i].revents != 0) {
        read_client(polled[i - 1]);
      }
    }
    if ((pfds[0].revents & POLLIN) == 0) {
      continue;
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    std::lock_guard lock(clients_mutex_);
    if (clients_.size() >= config_.max_clients || stopping_.load()) {
      ::close(fd);
      continue;
    }
    auto client = std::make_shared<Client>(config_.client_queue_frames);
    client->fd = fd;
    // Greeting first, before the client is visible to broadcast(), so the
    // hello frame is always the first thing on the wire.
    HelloInfo hello;
    hello.next_slot = next_slot_.load();
    client->queue.try_push(
        std::make_shared<const std::vector<std::uint8_t>>(
            hello_frame(hello)));
    Client& ref = *client;
    client->sender = std::thread([this, &ref] { sender_loop(ref); });
    clients_.push_back(std::move(client));
    m_connects_->inc();
    m_clients_->set(static_cast<std::int64_t>(clients_.size()));
  }
}

void TelemetryStreamServer::reap_dead_clients_locked() {
  for (auto it = clients_.begin(); it != clients_.end();) {
    Client& client = **it;
    if (!client.dead.load()) {
      ++it;
      continue;
    }
    client.queue.close();
    ::shutdown(client.fd, SHUT_RDWR);
    if (client.sender.joinable()) {
      client.sender.join();
    }
    ::close(client.fd);
    it = clients_.erase(it);
    m_disconnects_->inc();
  }
  m_clients_->set(static_cast<std::int64_t>(clients_.size()));
}

void TelemetryStreamServer::read_client(
    const std::shared_ptr<Client>& client) {
  std::uint8_t buf[4096];
  const ssize_t n = ::recv(client->fd, buf, sizeof(buf), 0);
  if (n <= 0) {
    if (n < 0 && (errno == EINTR || errno == EAGAIN ||
                  errno == EWOULDBLOCK)) {
      return;
    }
    client->dead.store(true);  // peer closed (or hard error); reap next round
    client->queue.close();
    return;
  }
  client->parser.feed({buf, static_cast<std::size_t>(n)});
  while (auto frame = client->parser.next()) {
    if (frame->type != FrameType::kQuery) {
      continue;  // clients only speak queries upstream; ignore the rest
    }
    if (auto request = decode_query(frame->payload)) {
      dispatch_query(client, *request);
    } else {
      m_query_errors_->inc();
    }
  }
  if (client->parser.error()) {
    if (const auto rejected = client->parser.rejected_version()) {
      // The peer speaks a protocol version outside our window.  Tell it so
      // with a structured reject frame (best effort, synchronous — the
      // send mutex keeps the sender thread from interleaving a frame)
      // before dropping the connection, so old clients see a clear error
      // instead of a silent disconnect.
      m_version_rejects_->inc();
      VersionReject reject;
      reject.rejected = *rejected;
      reject.message = client->parser.error_message();
      const std::vector<std::uint8_t> frame = version_reject_frame(reject);
      std::lock_guard lock(client->send_mutex);
      send_all(client->fd, frame.data(), frame.size());
    } else {
      // Garbage on the request stream: the framing is unrecoverable, so
      // drop the connection rather than guess at resync.
      m_query_errors_->inc();
    }
    client->dead.store(true);
    client->queue.close();
  }
}

void TelemetryStreamServer::dispatch_query(
    const std::shared_ptr<Client>& client, const QueryRequest& request) {
  m_query_requests_->inc();
  if (!config_.query_handler || query_pool_ == nullptr) {
    m_query_rejected_->inc();
    QueryResponse response;
    response.correlation_id = request.correlation_id;
    response.kind = request.kind;
    response.status = QueryStatus::kUnavailable;
    response.error = "no query handler attached";
    const auto frame = std::make_shared<const std::vector<std::uint8_t>>(
        query_result_frame(response));
    std::lock_guard lock(clients_mutex_);
    if (!client->dead.load()) {
      enqueue(*client, frame);
    }
    return;
  }
  m_query_inflight_->add(1);
  query_pool_->submit([this, client, request] {
    QueryResponse response;
    {
      ScopedTimer timer(*m_query_latency_us_);
      try {
        response = config_.query_handler(request);
      } catch (const std::exception& e) {
        m_query_errors_->inc();
        response = QueryResponse{};
        response.status = QueryStatus::kUnavailable;
        response.error = e.what();
      } catch (...) {
        m_query_errors_->inc();
        response = QueryResponse{};
        response.status = QueryStatus::kUnavailable;
        response.error = "query handler threw";
      }
    }
    response.correlation_id = request.correlation_id;
    response.kind = request.kind;
    const auto frame = std::make_shared<const std::vector<std::uint8_t>>(
        query_result_frame(response));
    {
      // Same lock as broadcast(): the client object outlives a reap via
      // the shared_ptr, and `dead` gates enqueueing onto a closed queue.
      std::lock_guard lock(clients_mutex_);
      if (!client->dead.load()) {
        enqueue(*client, frame);
      }
    }
    m_query_inflight_->add(-1);
  });
}

void TelemetryStreamServer::sender_loop(Client& client) {
  const auto heartbeat_after = std::chrono::duration<double>(
      config_.heartbeat_period_s > 0 ? config_.heartbeat_period_s : 3600.0);
  while (!client.dead.load()) {
    std::optional<FramePtr> frame = client.queue.pop_for(heartbeat_after);
    if (!frame) {
      if (client.queue.closed()) {
        break;
      }
      // Idle: keep the connection observably alive.
      const std::vector<std::uint8_t> beat = heartbeat_frame();
      bool sent = false;
      {
        std::lock_guard lock(client.send_mutex);
        sent = send_all(client.fd, beat.data(), beat.size());
      }
      if (!sent) {
        m_send_errors_->inc();
        break;
      }
      m_heartbeats_sent_->inc();
      m_bytes_sent_->inc(beat.size());
      continue;
    }
    bool sent = false;
    {
      std::lock_guard lock(client.send_mutex);
      sent = send_all(client.fd, (*frame)->data(), (*frame)->size());
    }
    if (!sent) {
      m_send_errors_->inc();
      break;
    }
    m_frames_sent_->inc();
    m_bytes_sent_->inc((*frame)->size());
  }
  client.dead.store(true);  // the accept loop reaps and closes the fd
}

void TelemetryStreamServer::enqueue(Client& client, const FramePtr& frame) {
  while (true) {
    switch (client.queue.try_push_result(frame)) {
      case QueuePushResult::kOk:
      case QueuePushResult::kClosed:
        return;
      case QueuePushResult::kFull:
        break;
    }
    switch (config_.policy) {
      case BackpressurePolicy::kDropOldest:
        if (client.queue.try_pop()) {
          m_drop_oldest_->inc();
        }
        break;
      case BackpressurePolicy::kCoalesceLatest:
        while (client.queue.try_pop()) {
          m_drop_coalesced_->inc();
        }
        break;
      case BackpressurePolicy::kDisconnectSlow:
        m_disconnect_slow_->inc();
        client.dead.store(true);
        client.queue.close();
        ::shutdown(client.fd, SHUT_RDWR);
        return;
    }
  }
}

void TelemetryStreamServer::broadcast(const FramePtr& frame) {
  std::lock_guard lock(clients_mutex_);
  for (const auto& client : clients_) {
    if (!client->dead.load()) {
      enqueue(*client, frame);
    }
  }
}

void TelemetryStreamServer::broadcast_frame(std::vector<std::uint8_t> frame) {
  broadcast(
      std::make_shared<const std::vector<std::uint8_t>>(std::move(frame)));
}

void TelemetryStreamServer::on_slot(const SlotResult& result) {
  next_slot_.store(result.slot + 1);
  ++slots_seen_;
  const bool metrics_due =
      send_metrics_frames_ &&
      slots_seen_ % config_.metrics_period_slots == 0;
  {
    std::lock_guard lock(clients_mutex_);
    if (clients_.empty()) {
      return;  // nothing to serialize for
    }
  }
  broadcast(std::make_shared<const std::vector<std::uint8_t>>(
      slot_frame(result)));
  if (metrics_due) {
    broadcast(std::make_shared<const std::vector<std::uint8_t>>(
        metrics_frame(registry_->snapshot())));
  }
}

void TelemetryStreamServer::on_finish() {
  broadcast(std::make_shared<const std::vector<std::uint8_t>>(end_frame()));
}

}  // namespace nrs
