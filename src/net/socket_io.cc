#include "net/socket_io.h"

#include <cerrno>
#include <sys/socket.h>
#include <sys/types.h>

namespace nrs {

SendResult send_exact(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return sent == 0 ? SendResult::kFailed : SendResult::kPartial;
    }
    if (n == 0) {
      // A 0-byte send() on a stream socket should not happen, but treat
      // it as failure rather than spinning forever.
      return sent == 0 ? SendResult::kFailed : SendResult::kPartial;
    }
    sent += static_cast<std::size_t>(n);
  }
  return SendResult::kOk;
}

}  // namespace nrs
