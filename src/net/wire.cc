#include "net/wire.h"

#include <algorithm>
#include <bit>
#include <cstring>

namespace nrs {

const char* to_string(FrameType type) {
  switch (type) {
    case FrameType::kHello: return "hello";
    case FrameType::kSlot: return "slot";
    case FrameType::kMetrics: return "metrics";
    case FrameType::kHeartbeat: return "heartbeat";
    case FrameType::kEnd: return "end";
    case FrameType::kFleet: return "fleet";
    case FrameType::kQuery: return "query";
    case FrameType::kQueryResult: return "query_result";
    case FrameType::kWorkerHello: return "worker_hello";
    case FrameType::kLease: return "lease";
    case FrameType::kLeaseAck: return "lease_ack";
    case FrameType::kWorkerHeartbeat: return "worker_heartbeat";
    case FrameType::kCellReport: return "cell_report";
    case FrameType::kLeaseRevoke: return "lease_revoke";
    case FrameType::kUnsupportedVersion: return "unsupported_version";
    case FrameType::kPrediction: return "prediction";
    case FrameType::kCellReportBatch: return "cell_report_batch";
    case FrameType::kStandbyHello: return "standby_hello";
    case FrameType::kReplicaSnapshot: return "replica_snapshot";
    case FrameType::kReplicaEvent: return "replica_event";
    case FrameType::kNotPrimary: return "not_primary";
  }
  return "unknown";
}

const char* to_string(ReplicaEventKind kind) {
  switch (kind) {
    case ReplicaEventKind::kWorkerJoin: return "worker_join";
    case ReplicaEventKind::kWorkerLeave: return "worker_leave";
    case ReplicaEventKind::kLeaseGrant: return "lease_grant";
    case ReplicaEventKind::kLeaseRenew: return "lease_renew";
    case ReplicaEventKind::kLeaseRelease: return "lease_release";
    case ReplicaEventKind::kCellTotals: return "cell_totals";
    case ReplicaEventKind::kStoreRows: return "store_rows";
  }
  return "unknown";
}

const char* to_string(QueryKind kind) {
  switch (kind) {
    case QueryKind::kRange: return "range";
    case QueryKind::kAggregate: return "aggregate";
    case QueryKind::kTopK: return "topk";
  }
  return "unknown";
}

const char* to_string(QueryStatus status) {
  switch (status) {
    case QueryStatus::kOk: return "ok";
    case QueryStatus::kBadRequest: return "bad-request";
    case QueryStatus::kNotFound: return "not-found";
    case QueryStatus::kUnavailable: return "unavailable";
  }
  return "unknown";
}

// ---- WireWriter ------------------------------------------------------

void WireWriter::u16(std::uint16_t v) {
  out_.push_back(static_cast<std::uint8_t>(v));
  out_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void WireWriter::u32(std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void WireWriter::u64(std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void WireWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void WireWriter::str(const std::string& s) {
  u16(static_cast<std::uint16_t>(s.size()));
  out_.insert(out_.end(), s.begin(), s.end());
}

void WireWriter::bytes(std::span<const std::uint8_t> data) {
  out_.insert(out_.end(), data.begin(), data.end());
}

// ---- WireReader ------------------------------------------------------

std::uint8_t WireReader::u8() {
  if (pos_ + 1 > data_.size()) {
    ok_ = false;
    return 0;
  }
  return data_[pos_++];
}

std::uint16_t WireReader::u16() {
  if (pos_ + 2 > data_.size()) {
    ok_ = false;
    pos_ = data_.size();
    return 0;
  }
  const auto v = static_cast<std::uint16_t>(
      data_[pos_] | (static_cast<std::uint16_t>(data_[pos_ + 1]) << 8));
  pos_ += 2;
  return v;
}

std::uint32_t WireReader::u32() {
  if (pos_ + 4 > data_.size()) {
    ok_ = false;
    pos_ = data_.size();
    return 0;
  }
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  }
  pos_ += 4;
  return v;
}

std::uint64_t WireReader::u64() {
  if (pos_ + 8 > data_.size()) {
    ok_ = false;
    pos_ = data_.size();
    return 0;
  }
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  }
  pos_ += 8;
  return v;
}

double WireReader::f64() { return std::bit_cast<double>(u64()); }

std::string WireReader::str() {
  const std::uint16_t len = u16();
  if (!ok_ || pos_ + len > data_.size()) {
    ok_ = false;
    pos_ = data_.size();
    return {};
  }
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len);
  pos_ += len;
  return s;
}

// ---- Framing ---------------------------------------------------------

std::vector<std::uint8_t> encode_frame(
    FrameType type, std::span<const std::uint8_t> payload) {
  return encode_frame_with_version(kWireVersion, type, payload);
}

std::vector<std::uint8_t> encode_frame_with_version(
    std::uint16_t version, FrameType type,
    std::span<const std::uint8_t> payload) {
  WireWriter w;
  w.u32(kWireMagic);
  w.u16(version);
  w.u16(static_cast<std::uint16_t>(type));
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.bytes(payload);
  return w.take();
}

void FrameParser::feed(std::span<const std::uint8_t> data) {
  if (!error_.empty()) {
    return;
  }
  // Compact lazily: drop consumed bytes once they dominate the buffer.
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

std::optional<Frame> FrameParser::next() {
  if (!error_.empty()) {
    return std::nullopt;
  }
  const std::size_t avail = buffer_.size() - consumed_;
  if (avail < kWireHeaderSize) {
    return std::nullopt;
  }
  WireReader header(std::span<const std::uint8_t>(
      buffer_.data() + consumed_, kWireHeaderSize));
  const std::uint32_t magic = header.u32();
  const std::uint16_t version = header.u16();
  const std::uint16_t type = header.u16();
  const std::uint32_t len = header.u32();
  if (magic != kWireMagic) {
    error_ = "bad magic";
    return std::nullopt;
  }
  if (version < kWireMinVersion || version > kWireVersion) {
    error_ = "unsupported protocol version " + std::to_string(version) +
             " (supported " + std::to_string(kWireMinVersion) + ".." +
             std::to_string(kWireVersion) + ")";
    rejected_version_ = version;
    return std::nullopt;
  }
  if (len > kWireMaxPayload) {
    error_ = "payload length " + std::to_string(len) + " exceeds limit";
    return std::nullopt;
  }
  if (avail < kWireHeaderSize + len) {
    return std::nullopt;  // wait for more bytes
  }
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  const auto* begin = buffer_.data() + consumed_ + kWireHeaderSize;
  frame.payload.assign(begin, begin + len);
  consumed_ += kWireHeaderSize + len;
  return frame;
}

// ---- Payload codecs --------------------------------------------------

void encode_hello(const HelloInfo& hello, WireWriter& w) {
  w.u16(hello.version);
  w.u64(hello.next_slot);
}

std::optional<HelloInfo> decode_hello(
    std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  HelloInfo hello;
  hello.version = r.u16();
  hello.next_slot = r.u64();
  if (!r.done()) {
    return std::nullopt;
  }
  return hello;
}

namespace {

void encode_dci_fields(const Dci& dci, WireWriter& w) {
  w.u8(static_cast<std::uint8_t>(dci.format));
  w.u32(dci.freq_alloc_riv);
  w.u8(dci.time_alloc);
  w.u8(dci.mcs);
  w.u8(dci.ndi);
  w.u8(dci.rv);
  w.u8(dci.harq_id);
  w.u8(dci.dai);
  w.u8(dci.tpc);
  w.u8(dci.pucch_resource);
  w.u8(dci.harq_feedback);
  w.u8(dci.ports);
  w.u8(dci.srs_request);
  w.u8(dci.dmrs_id);
}

bool decode_dci_fields(WireReader& r, Dci& dci) {
  const std::uint8_t format = r.u8();
  if (format > static_cast<std::uint8_t>(DciFormat::kDl1_1)) {
    return false;
  }
  dci.format = static_cast<DciFormat>(format);
  dci.freq_alloc_riv = r.u32();
  dci.time_alloc = r.u8();
  dci.mcs = r.u8();
  dci.ndi = r.u8();
  dci.rv = r.u8();
  dci.harq_id = r.u8();
  dci.dai = r.u8();
  dci.tpc = r.u8();
  dci.pucch_resource = r.u8();
  dci.harq_feedback = r.u8();
  dci.ports = r.u8();
  dci.srs_request = r.u8();
  dci.dmrs_id = r.u8();
  return r.ok();
}

bool valid_modulation(std::uint8_t m) {
  switch (static_cast<Modulation>(m)) {
    case Modulation::kBpsk:
    case Modulation::kQpsk:
    case Modulation::kQam16:
    case Modulation::kQam64:
    case Modulation::kQam256:
      return true;
  }
  return false;
}

void encode_grant_fields(const Grant& grant, WireWriter& w) {
  w.u16(grant.rnti);
  w.u8(static_cast<std::uint8_t>(grant.format));
  w.u16(static_cast<std::uint16_t>(grant.prb_start));
  w.u16(static_cast<std::uint16_t>(grant.prb_len));
  w.u8(static_cast<std::uint8_t>(grant.start_symbol));
  w.u8(static_cast<std::uint8_t>(grant.n_symbols));
  w.u8(static_cast<std::uint8_t>(grant.mcs));
  w.u8(static_cast<std::uint8_t>(grant.modulation));
  w.f64(grant.code_rate);
  w.u8(static_cast<std::uint8_t>(grant.n_layers));
  w.u32(grant.tbs);
  w.u8(grant.ndi);
  w.u8(grant.rv);
  w.u8(grant.harq_id);
}

bool decode_grant_fields(WireReader& r, Grant& grant) {
  grant.rnti = r.u16();
  const std::uint8_t format = r.u8();
  if (format > static_cast<std::uint8_t>(DciFormat::kDl1_1)) {
    return false;
  }
  grant.format = static_cast<DciFormat>(format);
  grant.prb_start = r.u16();
  grant.prb_len = r.u16();
  grant.start_symbol = r.u8();
  grant.n_symbols = r.u8();
  grant.mcs = r.u8();
  const std::uint8_t modulation = r.u8();
  if (!r.ok() || !valid_modulation(modulation)) {
    return false;
  }
  grant.modulation = static_cast<Modulation>(modulation);
  grant.code_rate = r.f64();
  grant.n_layers = r.u8();
  grant.tbs = r.u32();
  grant.ndi = r.u8();
  grant.rv = r.u8();
  grant.harq_id = r.u8();
  return r.ok();
}

void encode_rrc_setup(const RrcSetup& rrc, WireWriter& w) {
  w.u8(rrc.ue_ss.ue_specific ? 1 : 0);
  w.u8(static_cast<std::uint8_t>(rrc.ue_ss.agg_levels.size()));
  for (const unsigned level : rrc.ue_ss.agg_levels) {
    w.u16(static_cast<std::uint16_t>(level));
  }
  w.u16(static_cast<std::uint16_t>(rrc.ue_ss.candidates_per_level));
  w.u8(static_cast<std::uint8_t>(rrc.dl_format));
  w.u8(static_cast<std::uint8_t>(rrc.mcs_table));
  w.u8(static_cast<std::uint8_t>(rrc.max_mimo_layers));
  w.u8(static_cast<std::uint8_t>(rrc.n_harq_processes));
}

bool decode_rrc_setup(WireReader& r, RrcSetup& rrc) {
  rrc.ue_ss.ue_specific = r.u8() != 0;
  const std::uint8_t n_levels = r.u8();
  rrc.ue_ss.agg_levels.clear();
  for (std::uint8_t i = 0; r.ok() && i < n_levels; ++i) {
    rrc.ue_ss.agg_levels.push_back(r.u16());
  }
  rrc.ue_ss.candidates_per_level = r.u16();
  const std::uint8_t format = r.u8();
  const std::uint8_t table = r.u8();
  if (!r.ok() || format > static_cast<std::uint8_t>(DciFormat::kDl1_1) ||
      table < static_cast<std::uint8_t>(McsTable::kQam64) ||
      table > static_cast<std::uint8_t>(McsTable::kQam64LowSe)) {
    return false;
  }
  rrc.dl_format = static_cast<DciFormat>(format);
  rrc.mcs_table = static_cast<McsTable>(table);
  rrc.max_mimo_layers = r.u8();
  rrc.n_harq_processes = r.u8();
  return r.ok();
}

}  // namespace

void encode_slot(const SlotResult& result, WireWriter& w) {
  w.u64(result.slot);
  w.f64(result.processing_time_us);
  std::uint8_t flags = 0;
  flags |= result.mib.has_value() ? 0x1 : 0;
  flags |= result.sib1_decoded ? 0x2 : 0;
  flags |= result.degraded ? 0x4 : 0;
  // Sync state rides in bits 4-5 (kSearching is 0, so pre-robustness
  // frames decode as a cold engine).
  flags |= static_cast<std::uint8_t>(
      (static_cast<std::uint8_t>(result.sync_state) & 0x3) << 4);
  w.u8(flags);
  if (result.mib) {
    w.u16(result.mib->sfn);
    w.u8(static_cast<std::uint8_t>(result.mib->scs_common));
    w.u8(result.mib->coreset0_rb_start);
    w.u8(result.mib->coreset0_n_prb6);
    w.u8(result.mib->coreset0_duration);
    w.u8(result.mib->searchspace0);
    w.u8(result.mib->cell_barred ? 1 : 0);
  }
  w.u32(static_cast<std::uint32_t>(result.dcis.size()));
  for (const DecodedDci& dci : result.dcis) {
    w.u64(dci.slot);
    w.u16(dci.rnti);
    encode_dci_fields(dci.dci, w);
    encode_grant_fields(dci.grant, w);
    w.u16(static_cast<std::uint16_t>(dci.agg_level));
    w.u16(static_cast<std::uint16_t>(dci.cce_start));
    w.u8(dci.is_retx ? 1 : 0);
  }
  w.u32(static_cast<std::uint32_t>(result.new_ues.size()));
  for (const NewUe& ue : result.new_ues) {
    w.u16(ue.c_rnti);
    w.u64(ue.slot);
    w.u8(ue.verified ? 1 : 0);
    encode_rrc_setup(ue.config, w);
  }
}

std::optional<SlotResult> decode_slot(
    std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  SlotResult result;
  result.slot = r.u64();
  result.processing_time_us = r.f64();
  const std::uint8_t flags = r.u8();
  result.sib1_decoded = (flags & 0x2) != 0;
  result.degraded = (flags & 0x4) != 0;
  result.sync_state = static_cast<SyncState>((flags >> 4) & 0x3);
  if ((flags & 0x1) != 0) {
    Mib mib;
    mib.sfn = r.u16();
    const std::uint8_t scs = r.u8();
    if (!r.ok() || scs > static_cast<std::uint8_t>(Scs::kHz60)) {
      return std::nullopt;
    }
    mib.scs_common = static_cast<Scs>(scs);
    mib.coreset0_rb_start = r.u8();
    mib.coreset0_n_prb6 = r.u8();
    mib.coreset0_duration = r.u8();
    mib.searchspace0 = r.u8();
    mib.cell_barred = r.u8() != 0;
    result.mib = mib;
  }
  const std::uint32_t n_dcis = r.u32();
  if (!r.ok() || n_dcis > r.remaining()) {  // every DCI is > 1 byte
    return std::nullopt;
  }
  result.dcis.reserve(n_dcis);
  for (std::uint32_t i = 0; i < n_dcis; ++i) {
    DecodedDci dci;
    dci.slot = r.u64();
    dci.rnti = r.u16();
    if (!decode_dci_fields(r, dci.dci) ||
        !decode_grant_fields(r, dci.grant)) {
      return std::nullopt;
    }
    dci.agg_level = r.u16();
    dci.cce_start = r.u16();
    dci.is_retx = r.u8() != 0;
    result.dcis.push_back(dci);
  }
  const std::uint32_t n_ues = r.u32();
  if (!r.ok() || n_ues > r.remaining()) {
    return std::nullopt;
  }
  result.new_ues.reserve(n_ues);
  for (std::uint32_t i = 0; i < n_ues; ++i) {
    NewUe ue;
    ue.c_rnti = r.u16();
    ue.slot = r.u64();
    ue.verified = r.u8() != 0;
    if (!decode_rrc_setup(r, ue.config)) {
      return std::nullopt;
    }
    result.new_ues.push_back(std::move(ue));
  }
  if (!r.done()) {
    return std::nullopt;
  }
  return result;
}

void encode_metrics(const MetricsSnapshot& snapshot, WireWriter& w) {
  w.u32(static_cast<std::uint32_t>(snapshot.counters.size()));
  for (const CounterSnapshot& c : snapshot.counters) {
    w.str(c.name);
    w.u64(c.value);
  }
  w.u32(static_cast<std::uint32_t>(snapshot.gauges.size()));
  for (const GaugeSnapshot& g : snapshot.gauges) {
    w.str(g.name);
    w.i64(g.value);
  }
  w.u32(static_cast<std::uint32_t>(snapshot.histograms.size()));
  for (const HistogramSnapshot& h : snapshot.histograms) {
    w.str(h.name);
    w.u64(h.count);
    w.f64(h.sum);
    w.f64(h.min);
    w.f64(h.max);
    w.u32(static_cast<std::uint32_t>(h.bounds.size()));
    for (const double b : h.bounds) {
      w.f64(b);
    }
    for (const std::uint64_t c : h.counts) {
      w.u64(c);
    }
  }
}

std::optional<MetricsSnapshot> decode_metrics(
    std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  MetricsSnapshot snapshot;
  const std::uint32_t n_counters = r.u32();
  if (!r.ok() || n_counters > r.remaining()) {
    return std::nullopt;
  }
  snapshot.counters.reserve(n_counters);
  for (std::uint32_t i = 0; i < n_counters; ++i) {
    CounterSnapshot c;
    c.name = r.str();
    c.value = r.u64();
    snapshot.counters.push_back(std::move(c));
  }
  const std::uint32_t n_gauges = r.u32();
  if (!r.ok() || n_gauges > r.remaining()) {
    return std::nullopt;
  }
  snapshot.gauges.reserve(n_gauges);
  for (std::uint32_t i = 0; i < n_gauges; ++i) {
    GaugeSnapshot g;
    g.name = r.str();
    g.value = r.i64();
    snapshot.gauges.push_back(std::move(g));
  }
  const std::uint32_t n_hists = r.u32();
  if (!r.ok() || n_hists > r.remaining()) {
    return std::nullopt;
  }
  snapshot.histograms.reserve(n_hists);
  for (std::uint32_t i = 0; i < n_hists; ++i) {
    HistogramSnapshot h;
    h.name = r.str();
    h.count = r.u64();
    h.sum = r.f64();
    h.min = r.f64();
    h.max = r.f64();
    const std::uint32_t n_bounds = r.u32();
    if (!r.ok() || n_bounds > r.remaining()) {
      return std::nullopt;
    }
    h.bounds.reserve(n_bounds);
    for (std::uint32_t b = 0; b < n_bounds; ++b) {
      h.bounds.push_back(r.f64());
    }
    h.counts.reserve(n_bounds + 1);
    for (std::uint32_t b = 0; b < n_bounds + 1; ++b) {
      h.counts.push_back(r.u64());
    }
    snapshot.histograms.push_back(std::move(h));
  }
  if (!r.done()) {
    return std::nullopt;
  }
  // Re-derive the fast-lookup flag rather than trusting the wire: the
  // peer's snapshot is registry-sorted in practice, but a hand-built one
  // must not get binary-searched.
  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  snapshot.sorted_by_name =
      std::is_sorted(snapshot.counters.begin(), snapshot.counters.end(),
                     by_name) &&
      std::is_sorted(snapshot.gauges.begin(), snapshot.gauges.end(),
                     by_name) &&
      std::is_sorted(snapshot.histograms.begin(), snapshot.histograms.end(),
                     by_name);
  return snapshot;
}

std::vector<std::uint8_t> hello_frame(const HelloInfo& hello) {
  WireWriter w;
  encode_hello(hello, w);
  return encode_frame(FrameType::kHello, w.data());
}

std::vector<std::uint8_t> slot_frame(const SlotResult& result) {
  WireWriter w;
  encode_slot(result, w);
  return encode_frame(FrameType::kSlot, w.data());
}

std::vector<std::uint8_t> metrics_frame(const MetricsSnapshot& snapshot) {
  WireWriter w;
  encode_metrics(snapshot, w);
  return encode_frame(FrameType::kMetrics, w.data());
}

void encode_fleet(const FleetSummary& summary, WireWriter& w) {
  w.u64(summary.slot);
  w.u64(summary.dcis_total);
  w.u64(summary.restarts_total);
  w.f64(summary.dl_mbps_total);
  w.f64(summary.ul_mbps_total);
  w.f64(summary.retx_rate);
  w.u32(static_cast<std::uint32_t>(summary.spare_ranking.size()));
  for (const std::uint32_t index : summary.spare_ranking) {
    w.u32(index);
  }
  w.u32(static_cast<std::uint32_t>(summary.cells.size()));
  for (const CellSummary& cell : summary.cells) {
    w.u32(cell.cell_index);
    w.str(cell.name);
    w.u8(cell.state);
    w.u64(cell.slots);
    w.u64(cell.dcis);
    w.u64(cell.restarts);
    w.u32(cell.active_ues);
    w.f64(cell.dl_mbps);
    w.f64(cell.ul_mbps);
    w.f64(cell.retx_rate);
    w.f64(cell.utilization);
  }
}

std::optional<FleetSummary> decode_fleet(
    std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  FleetSummary summary;
  summary.slot = r.u64();
  summary.dcis_total = r.u64();
  summary.restarts_total = r.u64();
  summary.dl_mbps_total = r.f64();
  summary.ul_mbps_total = r.f64();
  summary.retx_rate = r.f64();
  const std::uint32_t n_ranked = r.u32();
  if (!r.ok() || n_ranked > r.remaining()) {
    return std::nullopt;
  }
  summary.spare_ranking.reserve(n_ranked);
  for (std::uint32_t i = 0; i < n_ranked; ++i) {
    summary.spare_ranking.push_back(r.u32());
  }
  const std::uint32_t n_cells = r.u32();
  if (!r.ok() || n_cells > r.remaining()) {
    return std::nullopt;
  }
  summary.cells.reserve(n_cells);
  for (std::uint32_t i = 0; i < n_cells; ++i) {
    CellSummary cell;
    cell.cell_index = r.u32();
    cell.name = r.str();
    cell.state = r.u8();
    cell.slots = r.u64();
    cell.dcis = r.u64();
    cell.restarts = r.u64();
    cell.active_ues = r.u32();
    cell.dl_mbps = r.f64();
    cell.ul_mbps = r.f64();
    cell.retx_rate = r.f64();
    cell.utilization = r.f64();
    summary.cells.push_back(std::move(cell));
  }
  if (!r.done()) {
    return std::nullopt;
  }
  return summary;
}

void encode_query(const QueryRequest& request, WireWriter& w) {
  w.u64(request.correlation_id);
  w.u8(static_cast<std::uint8_t>(request.kind));
  w.u32(request.cell);
  w.u16(request.rnti);
  w.u8(request.metric);
  w.u64(request.slot_from);
  w.u64(request.slot_to);
  w.u64(request.bucket_slots);
  w.u32(request.k);
  w.u8(static_cast<std::uint8_t>(request.op));
}

std::optional<QueryRequest> decode_query(
    std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  QueryRequest request;
  request.correlation_id = r.u64();
  const std::uint8_t kind = r.u8();
  if (!r.ok() || kind > static_cast<std::uint8_t>(QueryKind::kTopK)) {
    return std::nullopt;
  }
  request.kind = static_cast<QueryKind>(kind);
  request.cell = r.u32();
  request.rnti = r.u16();
  request.metric = r.u8();
  request.slot_from = r.u64();
  request.slot_to = r.u64();
  request.bucket_slots = r.u64();
  request.k = r.u32();
  const std::uint8_t op = r.u8();
  if (!r.ok() || op > static_cast<std::uint8_t>(AggregateOp::kMax)) {
    return std::nullopt;
  }
  request.op = static_cast<AggregateOp>(op);
  if (!r.done()) {
    return std::nullopt;
  }
  return request;
}

void encode_query_result(const QueryResponse& response, WireWriter& w) {
  w.u64(response.correlation_id);
  w.u8(static_cast<std::uint8_t>(response.status));
  w.u8(static_cast<std::uint8_t>(response.kind));
  w.str(response.error);
  w.u32(static_cast<std::uint32_t>(response.rows.size()));
  for (const QueryRowWire& row : response.rows) {
    w.u64(row.slot);
    w.f64(row.value);
  }
  w.u32(static_cast<std::uint32_t>(response.buckets.size()));
  for (const QueryBucket& bucket : response.buckets) {
    w.u64(bucket.slot_start);
    w.u64(bucket.count);
    w.f64(bucket.sum);
    w.f64(bucket.avg);
    w.f64(bucket.max);
  }
  w.u32(static_cast<std::uint32_t>(response.ranking.size()));
  for (const TopKEntry& entry : response.ranking) {
    w.u32(entry.cell);
    w.u16(entry.rnti);
    w.f64(entry.score);
    w.u64(entry.rows);
  }
}

std::optional<QueryResponse> decode_query_result(
    std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  QueryResponse response;
  response.correlation_id = r.u64();
  const std::uint8_t status = r.u8();
  const std::uint8_t kind = r.u8();
  if (!r.ok() ||
      status > static_cast<std::uint8_t>(QueryStatus::kUnavailable) ||
      kind > static_cast<std::uint8_t>(QueryKind::kTopK)) {
    return std::nullopt;
  }
  response.status = static_cast<QueryStatus>(status);
  response.kind = static_cast<QueryKind>(kind);
  response.error = r.str();
  const std::uint32_t n_rows = r.u32();
  if (!r.ok() || n_rows > r.remaining()) {
    return std::nullopt;
  }
  response.rows.reserve(n_rows);
  for (std::uint32_t i = 0; i < n_rows; ++i) {
    QueryRowWire row;
    row.slot = r.u64();
    row.value = r.f64();
    response.rows.push_back(row);
  }
  const std::uint32_t n_buckets = r.u32();
  if (!r.ok() || n_buckets > r.remaining()) {
    return std::nullopt;
  }
  response.buckets.reserve(n_buckets);
  for (std::uint32_t i = 0; i < n_buckets; ++i) {
    QueryBucket bucket;
    bucket.slot_start = r.u64();
    bucket.count = r.u64();
    bucket.sum = r.f64();
    bucket.avg = r.f64();
    bucket.max = r.f64();
    response.buckets.push_back(bucket);
  }
  const std::uint32_t n_ranked = r.u32();
  if (!r.ok() || n_ranked > r.remaining()) {
    return std::nullopt;
  }
  response.ranking.reserve(n_ranked);
  for (std::uint32_t i = 0; i < n_ranked; ++i) {
    TopKEntry entry;
    entry.cell = r.u32();
    entry.rnti = r.u16();
    entry.score = r.f64();
    entry.rows = r.u64();
    response.ranking.push_back(entry);
  }
  if (!r.done()) {
    return std::nullopt;
  }
  return response;
}

std::vector<std::uint8_t> query_frame(const QueryRequest& request) {
  WireWriter w;
  encode_query(request, w);
  return encode_frame(FrameType::kQuery, w.data());
}

std::vector<std::uint8_t> query_result_frame(const QueryResponse& response) {
  WireWriter w;
  encode_query_result(response, w);
  return encode_frame(FrameType::kQueryResult, w.data());
}

std::vector<std::uint8_t> fleet_frame(const FleetSummary& summary) {
  WireWriter w;
  encode_fleet(summary, w);
  return encode_frame(FrameType::kFleet, w.data());
}

// ---- Distributed fleet codecs ----------------------------------------

void encode_version_reject(const VersionReject& reject, WireWriter& w) {
  w.u16(reject.rejected);
  w.u16(reject.min_version);
  w.u16(reject.max_version);
  w.str(reject.message);
}

std::optional<VersionReject> decode_version_reject(
    std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  VersionReject reject;
  reject.rejected = r.u16();
  reject.min_version = r.u16();
  reject.max_version = r.u16();
  reject.message = r.str();
  if (!r.done()) {
    return std::nullopt;
  }
  return reject;
}

void encode_worker_hello(const WorkerHello& hello, WireWriter& w) {
  w.str(hello.name);
  w.u32(hello.capacity);
  w.u16(hello.version);
  w.u32(hello.pool_threads);
  w.u64(hello.epoch);
}

std::optional<WorkerHello> decode_worker_hello(
    std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  WorkerHello hello;
  hello.name = r.str();
  hello.capacity = r.u32();
  hello.version = r.u16();
  hello.pool_threads = r.u32();
  hello.epoch = r.u64();
  if (!r.done()) {
    return std::nullopt;
  }
  return hello;
}

namespace {

void encode_cell_spec(const WireCellSpec& spec, WireWriter& w) {
  w.u32(spec.cell_index);
  w.str(spec.name);
  w.str(spec.preset);
  w.u16(spec.pci);
  w.u32(spec.n_ues);
  w.f64(spec.ue_rate_bps);
  w.f64(spec.ue_snr_db);
  w.f64(spec.sniffer_snr_db);
  w.u64(spec.seed);
  w.u32(spec.incarnation);
}

bool decode_cell_spec(WireReader& r, WireCellSpec& spec) {
  spec.cell_index = r.u32();
  spec.name = r.str();
  spec.preset = r.str();
  spec.pci = r.u16();
  spec.n_ues = r.u32();
  spec.ue_rate_bps = r.f64();
  spec.ue_snr_db = r.f64();
  spec.sniffer_snr_db = r.f64();
  spec.seed = r.u64();
  spec.incarnation = r.u32();
  return r.ok();
}

}  // namespace

void encode_lease(const LeaseGrant& lease, WireWriter& w) {
  w.u64(lease.lease_id);
  w.u32(lease.ttl_ms);
  w.u64(lease.base_slot);
  w.u64(lease.epoch);
  encode_cell_spec(lease.spec, w);
}

std::optional<LeaseGrant> decode_lease(
    std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  LeaseGrant lease;
  lease.lease_id = r.u64();
  lease.ttl_ms = r.u32();
  lease.base_slot = r.u64();
  lease.epoch = r.u64();
  if (!decode_cell_spec(r, lease.spec) || !r.done()) {
    return std::nullopt;
  }
  return lease;
}

void encode_lease_ack(const LeaseAck& ack, WireWriter& w) {
  w.u64(ack.lease_id);
  w.u32(ack.cell_index);
  w.u8(ack.accepted ? 1 : 0);
  w.str(ack.message);
  w.u64(ack.epoch);
}

std::optional<LeaseAck> decode_lease_ack(
    std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  LeaseAck ack;
  ack.lease_id = r.u64();
  ack.cell_index = r.u32();
  ack.accepted = r.u8() != 0;
  ack.message = r.str();
  ack.epoch = r.u64();
  if (!r.done()) {
    return std::nullopt;
  }
  return ack;
}

void encode_worker_heartbeat(const WorkerHeartbeat& hb, WireWriter& w) {
  w.u64(hb.seq);
  w.u64(hb.epoch);
  w.u32(static_cast<std::uint32_t>(hb.leases.size()));
  for (const LeaseStatus& lease : hb.leases) {
    w.u64(lease.lease_id);
    w.u32(lease.cell_index);
    w.u64(lease.slots);
    w.u8(lease.cell_state);
  }
}

std::optional<WorkerHeartbeat> decode_worker_heartbeat(
    std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  WorkerHeartbeat hb;
  hb.seq = r.u64();
  hb.epoch = r.u64();
  const std::uint32_t n_leases = r.u32();
  if (!r.ok() || n_leases > r.remaining()) {
    return std::nullopt;
  }
  hb.leases.reserve(n_leases);
  for (std::uint32_t i = 0; i < n_leases; ++i) {
    LeaseStatus lease;
    lease.lease_id = r.u64();
    lease.cell_index = r.u32();
    lease.slots = r.u64();
    lease.cell_state = r.u8();
    hb.leases.push_back(lease);
  }
  if (!r.done()) {
    return std::nullopt;
  }
  return hb;
}

void encode_cell_report(const CellReport& report, WireWriter& w) {
  w.u64(report.lease_id);
  w.u64(report.epoch);
  w.u32(report.cell_index);
  w.u8(report.cell_state);
  w.u64(report.slots);
  w.u64(report.dcis);
  w.u64(report.retx_dcis);
  w.u64(report.restarts);
  w.u32(report.active_ues);
  w.f64(report.dl_mbps);
  w.f64(report.ul_mbps);
  w.f64(report.retx_rate);
  w.f64(report.utilization);
  w.f64(report.spare_prb_rate);
  w.u32(static_cast<std::uint32_t>(report.rows.size()));
  for (const StoreRowUpdate& row : report.rows) {
    w.u16(row.rnti);
    w.u8(row.metric);
    w.u64(row.slot);
    w.f64(row.value);
  }
}

namespace {

// Reads one CellReport's fields from `r` without requiring the reader to
// be exhausted, so the same body serves both the single-report frame and
// each element of a kCellReportBatch.
bool read_cell_report_body(WireReader& r, CellReport& report) {
  report.lease_id = r.u64();
  report.epoch = r.u64();
  report.cell_index = r.u32();
  report.cell_state = r.u8();
  report.slots = r.u64();
  report.dcis = r.u64();
  report.retx_dcis = r.u64();
  report.restarts = r.u64();
  report.active_ues = r.u32();
  report.dl_mbps = r.f64();
  report.ul_mbps = r.f64();
  report.retx_rate = r.f64();
  report.utilization = r.f64();
  report.spare_prb_rate = r.f64();
  const std::uint32_t n_rows = r.u32();
  if (!r.ok() || n_rows > r.remaining()) {
    return false;
  }
  report.rows.reserve(n_rows);
  for (std::uint32_t i = 0; i < n_rows; ++i) {
    StoreRowUpdate row;
    row.rnti = r.u16();
    row.metric = r.u8();
    row.slot = r.u64();
    row.value = r.f64();
    report.rows.push_back(row);
  }
  return r.ok();
}

}  // namespace

std::optional<CellReport> decode_cell_report(
    std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  CellReport report;
  if (!read_cell_report_body(r, report) || !r.done()) {
    return std::nullopt;
  }
  return report;
}

void encode_lease_revoke(const LeaseRevoke& revoke, WireWriter& w) {
  w.u64(revoke.lease_id);
  w.u32(revoke.cell_index);
  w.str(revoke.reason);
  w.u64(revoke.epoch);
}

std::optional<LeaseRevoke> decode_lease_revoke(
    std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  LeaseRevoke revoke;
  revoke.lease_id = r.u64();
  revoke.cell_index = r.u32();
  revoke.reason = r.str();
  revoke.epoch = r.u64();
  if (!r.done()) {
    return std::nullopt;
  }
  return revoke;
}

void encode_cell_report_batch(const CellReportBatch& batch, WireWriter& w) {
  w.u32(static_cast<std::uint32_t>(batch.reports.size()));
  for (const CellReport& report : batch.reports) {
    encode_cell_report(report, w);
  }
}

std::optional<CellReportBatch> decode_cell_report_batch(
    std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  CellReportBatch batch;
  const std::uint32_t n_reports = r.u32();
  if (!r.ok() || n_reports > r.remaining()) {
    return std::nullopt;
  }
  batch.reports.reserve(n_reports);
  for (std::uint32_t i = 0; i < n_reports; ++i) {
    CellReport report;
    if (!read_cell_report_body(r, report)) {
      return std::nullopt;
    }
    batch.reports.push_back(std::move(report));
  }
  if (!r.done()) {
    return std::nullopt;
  }
  return batch;
}

void encode_prediction(const PredictionSet& set, WireWriter& w) {
  w.u32(set.cell_index);
  w.u64(set.slot);
  w.u32(set.horizon_slots);
  w.u32(set.model_version);
  w.u32(static_cast<std::uint32_t>(set.entries.size()));
  for (const PredictionEntry& e : set.entries) {
    w.u16(e.rnti);
    std::uint8_t flags = 0;
    if (e.has_actual) {
      flags |= 0x01;
    }
    if (e.degraded) {
      flags |= 0x02;
    }
    w.u8(flags);
    w.f64(e.predicted_bps);
    w.f64(e.actual_bps);
    w.f64(e.abs_error_bps);
  }
}

std::optional<PredictionSet> decode_prediction(
    std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  PredictionSet set;
  set.cell_index = r.u32();
  set.slot = r.u64();
  set.horizon_slots = r.u32();
  set.model_version = r.u32();
  const std::uint32_t n_entries = r.u32();
  if (!r.ok() || n_entries > r.remaining()) {
    return std::nullopt;
  }
  set.entries.reserve(n_entries);
  for (std::uint32_t i = 0; i < n_entries; ++i) {
    PredictionEntry e;
    e.rnti = r.u16();
    const std::uint8_t flags = r.u8();
    e.has_actual = (flags & 0x01) != 0;
    e.degraded = (flags & 0x02) != 0;
    e.predicted_bps = r.f64();
    e.actual_bps = r.f64();
    e.abs_error_bps = r.f64();
    set.entries.push_back(e);
  }
  if (!r.done()) {
    return std::nullopt;
  }
  return set;
}

// ---- Coordinator replication codecs (v5) -----------------------------

void encode_standby_hello(const StandbyHello& hello, WireWriter& w) {
  w.str(hello.name);
  w.u16(hello.version);
}

std::optional<StandbyHello> decode_standby_hello(
    std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  StandbyHello hello;
  hello.name = r.str();
  hello.version = r.u16();
  if (!r.done()) {
    return std::nullopt;
  }
  return hello;
}

void encode_not_primary(const NotPrimary& info, WireWriter& w) {
  w.u64(info.epoch);
  w.str(info.message);
}

std::optional<NotPrimary> decode_not_primary(
    std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  NotPrimary info;
  info.epoch = r.u64();
  info.message = r.str();
  if (!r.done()) {
    return std::nullopt;
  }
  return info;
}

namespace {

void write_replica_cell(const ReplicaCell& cell, WireWriter& w) {
  encode_cell_spec(cell.spec, w);
  w.u8(cell.lease_state);
  w.u64(cell.lease_id);
  w.u64(cell.worker_id);
  w.u32(cell.handoffs);
  w.u64(cell.committed_slots);
  w.u64(cell.committed_dcis);
  w.u64(cell.committed_retx);
  w.u64(cell.committed_restarts);
  w.u64(cell.lease_base_slot);
  w.u8(cell.has_report ? 1 : 0);
  encode_cell_report(cell.live, w);
}

bool read_replica_cell(WireReader& r, ReplicaCell& cell) {
  if (!decode_cell_spec(r, cell.spec)) {
    return false;
  }
  cell.lease_state = r.u8();
  cell.lease_id = r.u64();
  cell.worker_id = r.u64();
  cell.handoffs = r.u32();
  cell.committed_slots = r.u64();
  cell.committed_dcis = r.u64();
  cell.committed_retx = r.u64();
  cell.committed_restarts = r.u64();
  cell.lease_base_slot = r.u64();
  cell.has_report = r.u8() != 0;
  return read_cell_report_body(r, cell.live);
}

}  // namespace

void encode_replica_snapshot(const ReplicaSnapshot& snapshot, WireWriter& w) {
  w.u64(snapshot.epoch);
  w.u64(snapshot.next_lease_id);
  w.u32(static_cast<std::uint32_t>(snapshot.workers.size()));
  for (const ReplicaWorker& worker : snapshot.workers) {
    w.u64(worker.worker_id);
    w.str(worker.name);
    w.u32(worker.capacity);
  }
  w.u32(static_cast<std::uint32_t>(snapshot.cells.size()));
  for (const ReplicaCell& cell : snapshot.cells) {
    write_replica_cell(cell, w);
  }
}

std::optional<ReplicaSnapshot> decode_replica_snapshot(
    std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  ReplicaSnapshot snapshot;
  snapshot.epoch = r.u64();
  snapshot.next_lease_id = r.u64();
  const std::uint32_t n_workers = r.u32();
  if (!r.ok() || n_workers > r.remaining()) {
    return std::nullopt;
  }
  snapshot.workers.reserve(n_workers);
  for (std::uint32_t i = 0; i < n_workers; ++i) {
    ReplicaWorker worker;
    worker.worker_id = r.u64();
    worker.name = r.str();
    worker.capacity = r.u32();
    snapshot.workers.push_back(std::move(worker));
  }
  const std::uint32_t n_cells = r.u32();
  if (!r.ok() || n_cells > r.remaining()) {
    return std::nullopt;
  }
  snapshot.cells.reserve(n_cells);
  for (std::uint32_t i = 0; i < n_cells; ++i) {
    ReplicaCell cell;
    if (!read_replica_cell(r, cell)) {
      return std::nullopt;
    }
    snapshot.cells.push_back(std::move(cell));
  }
  if (!r.done()) {
    return std::nullopt;
  }
  return snapshot;
}

void encode_replica_event(const ReplicaEvent& event, WireWriter& w) {
  w.u8(static_cast<std::uint8_t>(event.kind));
  w.u64(event.epoch);
  w.u32(event.cell_index);
  w.u64(event.lease_id);
  w.u64(event.worker_id);
  w.u8(event.lease_state);
  w.u32(event.handoffs);
  w.str(event.worker_name);
  w.u32(event.capacity);
  w.u64(event.committed_slots);
  w.u64(event.committed_dcis);
  w.u64(event.committed_retx);
  w.u64(event.committed_restarts);
  w.u64(event.lease_base_slot);
  w.u8(event.has_report ? 1 : 0);
  encode_cell_report(event.live, w);
  w.u32(static_cast<std::uint32_t>(event.rows.size()));
  for (const StoreRowUpdate& row : event.rows) {
    w.u16(row.rnti);
    w.u8(row.metric);
    w.u64(row.slot);
    w.f64(row.value);
  }
}

std::optional<ReplicaEvent> decode_replica_event(
    std::span<const std::uint8_t> payload) {
  WireReader r(payload);
  ReplicaEvent event;
  const std::uint8_t kind = r.u8();
  if (!r.ok() || kind > static_cast<std::uint8_t>(ReplicaEventKind::kStoreRows)) {
    return std::nullopt;
  }
  event.kind = static_cast<ReplicaEventKind>(kind);
  event.epoch = r.u64();
  event.cell_index = r.u32();
  event.lease_id = r.u64();
  event.worker_id = r.u64();
  event.lease_state = r.u8();
  event.handoffs = r.u32();
  event.worker_name = r.str();
  event.capacity = r.u32();
  event.committed_slots = r.u64();
  event.committed_dcis = r.u64();
  event.committed_retx = r.u64();
  event.committed_restarts = r.u64();
  event.lease_base_slot = r.u64();
  event.has_report = r.u8() != 0;
  if (!read_cell_report_body(r, event.live)) {
    return std::nullopt;
  }
  const std::uint32_t n_rows = r.u32();
  if (!r.ok() || n_rows > r.remaining()) {
    return std::nullopt;
  }
  event.rows.reserve(n_rows);
  for (std::uint32_t i = 0; i < n_rows; ++i) {
    StoreRowUpdate row;
    row.rnti = r.u16();
    row.metric = r.u8();
    row.slot = r.u64();
    row.value = r.f64();
    event.rows.push_back(row);
  }
  if (!r.done()) {
    return std::nullopt;
  }
  return event;
}

std::vector<std::uint8_t> version_reject_frame(const VersionReject& reject) {
  WireWriter w;
  encode_version_reject(reject, w);
  return encode_frame(FrameType::kUnsupportedVersion, w.data());
}

std::vector<std::uint8_t> worker_hello_frame(const WorkerHello& hello) {
  WireWriter w;
  encode_worker_hello(hello, w);
  return encode_frame(FrameType::kWorkerHello, w.data());
}

std::vector<std::uint8_t> lease_frame(const LeaseGrant& lease) {
  WireWriter w;
  encode_lease(lease, w);
  return encode_frame(FrameType::kLease, w.data());
}

std::vector<std::uint8_t> lease_ack_frame(const LeaseAck& ack) {
  WireWriter w;
  encode_lease_ack(ack, w);
  return encode_frame(FrameType::kLeaseAck, w.data());
}

std::vector<std::uint8_t> worker_heartbeat_frame(const WorkerHeartbeat& hb) {
  WireWriter w;
  encode_worker_heartbeat(hb, w);
  return encode_frame(FrameType::kWorkerHeartbeat, w.data());
}

std::vector<std::uint8_t> cell_report_frame(const CellReport& report) {
  WireWriter w;
  encode_cell_report(report, w);
  return encode_frame(FrameType::kCellReport, w.data());
}

std::vector<std::uint8_t> lease_revoke_frame(const LeaseRevoke& revoke) {
  WireWriter w;
  encode_lease_revoke(revoke, w);
  return encode_frame(FrameType::kLeaseRevoke, w.data());
}

std::vector<std::uint8_t> cell_report_batch_frame(
    const CellReportBatch& batch) {
  WireWriter w;
  encode_cell_report_batch(batch, w);
  return encode_frame(FrameType::kCellReportBatch, w.data());
}

std::vector<std::uint8_t> prediction_frame(const PredictionSet& set) {
  WireWriter w;
  encode_prediction(set, w);
  return encode_frame(FrameType::kPrediction, w.data());
}

std::vector<std::uint8_t> standby_hello_frame(const StandbyHello& hello) {
  WireWriter w;
  encode_standby_hello(hello, w);
  return encode_frame(FrameType::kStandbyHello, w.data());
}

std::vector<std::uint8_t> not_primary_frame(const NotPrimary& info) {
  WireWriter w;
  encode_not_primary(info, w);
  return encode_frame(FrameType::kNotPrimary, w.data());
}

std::vector<std::uint8_t> replica_snapshot_frame(
    const ReplicaSnapshot& snapshot) {
  WireWriter w;
  encode_replica_snapshot(snapshot, w);
  return encode_frame(FrameType::kReplicaSnapshot, w.data());
}

std::vector<std::uint8_t> replica_event_frame(const ReplicaEvent& event) {
  WireWriter w;
  encode_replica_event(event, w);
  return encode_frame(FrameType::kReplicaEvent, w.data());
}

std::vector<std::uint8_t> heartbeat_frame() {
  return encode_frame(FrameType::kHeartbeat, {});
}

std::vector<std::uint8_t> end_frame() {
  return encode_frame(FrameType::kEnd, {});
}

}  // namespace nrs
