#include "net/stream_client.h"

#include "common/backoff.h"
#include "net/socket_io.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>

namespace nrs {

namespace {
using Clock = std::chrono::steady_clock;

/// Per-instance jitter seed when the config leaves it at 0: mix the
/// object identity with the monotonic clock so identically configured
/// clients still draw de-correlated backoff schedules.
std::uint64_t derive_jitter_seed(const void* self) {
  return reinterpret_cast<std::uintptr_t>(self) ^
         static_cast<std::uint64_t>(
             Clock::now().time_since_epoch().count());
}

}  // namespace

TelemetryStreamClient::TelemetryStreamClient(
    const StreamClientConfig& config, StreamClientHandlers handlers,
    MetricsRegistry* registry)
    : config_(config), handlers_(std::move(handlers)) {
  if (registry == nullptr) {
    own_registry_ = std::make_unique<MetricsRegistry>();
    registry = own_registry_.get();
  }
  m_connects_ = &registry->counter("net.client.connects");
  m_reconnect_attempts_ =
      &registry->counter("net.client.reconnect_attempts");
  m_disconnects_ = &registry->counter("net.client.disconnects");
  m_frames_rx_ = &registry->counter("net.client.frames_received");
  m_bytes_rx_ = &registry->counter("net.client.bytes_received");
  m_decode_errors_ = &registry->counter("net.client.decode_errors");
  m_queries_sent_ = &registry->counter("net.client.queries_sent");
  m_query_responses_ = &registry->counter("net.client.query_responses");
  m_query_timeouts_ = &registry->counter("net.client.query_timeouts");
  m_version_rejected_ = &registry->counter("net.client.version_rejected");
  reader_ = std::thread([this] { run(); });
}

TelemetryStreamClient::~TelemetryStreamClient() { stop(); }

void TelemetryStreamClient::stop() {
  stopping_.store(true);
  const int fd = live_fd_.load();
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);  // wake a blocked poll()/recv()
  }
  note_state_change();
  if (reader_.joinable()) {
    reader_.join();
  }
  fail_pending_queries("client stopped");
}

std::optional<QueryResponse> TelemetryStreamClient::query(
    QueryRequest request, double timeout_s) {
  const std::uint64_t id = next_correlation_.fetch_add(1) + 1;
  request.correlation_id = id;
  std::future<QueryResponse> future;
  {
    std::lock_guard lock(pending_mutex_);
    future = pending_[id].get_future();
  }
  const std::vector<std::uint8_t> frame = query_frame(request);
  bool sent = false;
  {
    std::lock_guard lock(send_mutex_);
    const int fd = live_fd_.load();
    if (fd >= 0 && connected_.load()) {
      sent = send_all(fd, frame.data(), frame.size());
    }
  }
  if (!sent) {
    std::lock_guard lock(pending_mutex_);
    pending_.erase(id);
    return std::nullopt;
  }
  m_queries_sent_->inc();
  if (future.wait_for(std::chrono::duration<double>(timeout_s)) !=
      std::future_status::ready) {
    m_query_timeouts_->inc();
    // Abandon the waiter; a late response finds no pending entry and is
    // dropped by the reader.
    std::lock_guard lock(pending_mutex_);
    pending_.erase(id);
    return std::nullopt;
  }
  return future.get();
}

std::string TelemetryStreamClient::protocol_error() const {
  std::lock_guard lock(protocol_error_mutex_);
  return protocol_error_;
}

void TelemetryStreamClient::fail_pending_queries(const char* reason) {
  std::lock_guard lock(pending_mutex_);
  for (auto& [id, promise] : pending_) {
    QueryResponse response;
    response.correlation_id = id;
    response.status = QueryStatus::kUnavailable;
    response.error = reason;
    promise.set_value(std::move(response));
  }
  pending_.clear();
}

void TelemetryStreamClient::note_state_change() {
  std::lock_guard lock(state_mutex_);
  state_cv_.notify_all();
}

bool TelemetryStreamClient::wait_end_of_stream(double timeout_s) {
  std::unique_lock lock(state_mutex_);
  state_cv_.wait_for(lock, std::chrono::duration<double>(timeout_s), [this] {
    return saw_end_.load() || finished_.load();
  });
  return saw_end_.load();
}

bool TelemetryStreamClient::wait_connected(double timeout_s) {
  std::unique_lock lock(state_mutex_);
  state_cv_.wait_for(lock, std::chrono::duration<double>(timeout_s), [this] {
    return connected_.load() || finished_.load();
  });
  return connected_.load();
}

int TelemetryStreamClient::connect_once() const {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

void TelemetryStreamClient::run() {
  const BackoffPolicy policy{config_.backoff_initial_s,
                             config_.backoff_max_s, 2.0,
                             config_.backoff_jitter};
  Rng jitter_rng(config_.backoff_seed != 0 ? config_.backoff_seed
                                           : derive_jitter_seed(this));
  unsigned consecutive_failures = 0;
  int failed_attempts = 0;
  bool first_attempt = true;
  while (!stopping_.load()) {
    const int fd = connect_once();
    if (fd < 0) {
      ++failed_attempts;
      if (!first_attempt) {
        m_reconnect_attempts_->inc();
      }
      first_attempt = false;
      if (config_.max_reconnect_attempts >= 0 &&
          failed_attempts > config_.max_reconnect_attempts) {
        break;
      }
      // Jittered exponential backoff, sliced so stop() stays responsive.
      const double backoff_s =
          jittered_backoff_delay(policy, consecutive_failures, jitter_rng);
      const auto deadline =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(backoff_s));
      while (!stopping_.load() && Clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
      ++consecutive_failures;
      continue;
    }
    failed_attempts = 0;
    first_attempt = false;
    consecutive_failures = 0;
    live_fd_.store(fd);
    connected_.store(true);
    m_connects_->inc();
    note_state_change();

    const bool done = serve_connection(fd);

    connected_.store(false);
    {
      // No query() may still hold this fd once it is closed (the fd
      // number could be reused); senders take the same lock.
      std::lock_guard lock(send_mutex_);
      live_fd_.store(-1);
    }
    ::close(fd);
    fail_pending_queries("disconnected");
    m_disconnects_->inc();
    if (handlers_.on_disconnected && !stopping_.load() && !done) {
      handlers_.on_disconnected();
    }
    note_state_change();
    if (done) {
      break;
    }
  }
  finished_.store(true);
  note_state_change();
}

bool TelemetryStreamClient::serve_connection(int fd) {
  FrameParser parser;
  std::uint8_t buf[16384];
  auto last_frame = Clock::now();
  const auto timeout = std::chrono::duration<double>(config_.read_timeout_s);
  while (!stopping_.load()) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/50);
    if (ready < 0 && errno != EINTR) {
      return false;
    }
    if (ready > 0) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) {
        return false;  // peer closed or hard error
      }
      m_bytes_rx_->inc(static_cast<std::uint64_t>(n));
      parser.feed(std::span<const std::uint8_t>(buf, static_cast<std::size_t>(n)));
      while (auto frame = parser.next()) {
        last_frame = Clock::now();
        m_frames_rx_->inc();
        if (dispatch_frame(*frame)) {
          return true;
        }
      }
      if (parser.error()) {
        m_decode_errors_->inc();
        return false;  // protocol mismatch: drop and reconnect
      }
    }
    if (Clock::now() - last_frame > timeout) {
      return false;  // silent peer: heartbeats stopped, declare it dead
    }
  }
  return true;
}

bool TelemetryStreamClient::dispatch_frame(const Frame& frame) {
  using Handler = bool (TelemetryStreamClient::*)(const Frame&);
  // One row per inbound frame type; the heartbeat is the trivial liveness
  // row (the read-timeout clock was already reset by the caller).  An
  // unknown-but-well-framed type is skipped: newer servers may speak
  // frame types this client does not know.
  static constexpr struct {
    FrameType type;
    Handler handler;
  } kTable[] = {
      {FrameType::kHello, &TelemetryStreamClient::handle_hello},
      {FrameType::kSlot, &TelemetryStreamClient::handle_slot},
      {FrameType::kMetrics, &TelemetryStreamClient::handle_metrics},
      {FrameType::kFleet, &TelemetryStreamClient::handle_fleet},
      {FrameType::kPrediction, &TelemetryStreamClient::handle_prediction},
      {FrameType::kHeartbeat, &TelemetryStreamClient::handle_heartbeat},
      {FrameType::kEnd, &TelemetryStreamClient::handle_end},
      {FrameType::kQueryResult,
       &TelemetryStreamClient::handle_query_result},
      {FrameType::kUnsupportedVersion,
       &TelemetryStreamClient::handle_version_reject},
  };
  for (const auto& row : kTable) {
    if (row.type == frame.type) {
      return (this->*row.handler)(frame);
    }
  }
  return false;
}

bool TelemetryStreamClient::handle_hello(const Frame& frame) {
  if (auto hello = decode_hello(frame.payload)) {
    if (handlers_.on_connected) {
      handlers_.on_connected(*hello);
    }
  } else {
    m_decode_errors_->inc();
  }
  return false;
}

bool TelemetryStreamClient::handle_slot(const Frame& frame) {
  if (auto slot = decode_slot(frame.payload)) {
    if (handlers_.on_slot) {
      handlers_.on_slot(*slot);
    }
  } else {
    m_decode_errors_->inc();
  }
  return false;
}

bool TelemetryStreamClient::handle_metrics(const Frame& frame) {
  if (auto metrics = decode_metrics(frame.payload)) {
    if (handlers_.on_metrics) {
      handlers_.on_metrics(*metrics);
    }
  } else {
    m_decode_errors_->inc();
  }
  return false;
}

bool TelemetryStreamClient::handle_fleet(const Frame& frame) {
  if (auto fleet = decode_fleet(frame.payload)) {
    if (handlers_.on_fleet) {
      handlers_.on_fleet(*fleet);
    }
  } else {
    m_decode_errors_->inc();
  }
  return false;
}

bool TelemetryStreamClient::handle_prediction(const Frame& frame) {
  if (auto set = decode_prediction(frame.payload)) {
    if (handlers_.on_prediction) {
      handlers_.on_prediction(*set);
    }
  } else {
    m_decode_errors_->inc();
  }
  return false;
}

bool TelemetryStreamClient::handle_heartbeat(const Frame&) {
  return false;  // liveness only
}

bool TelemetryStreamClient::handle_end(const Frame&) {
  saw_end_.store(true);
  note_state_change();
  if (handlers_.on_end_of_stream) {
    handlers_.on_end_of_stream();
  }
  return config_.stop_on_end_of_stream;
}

bool TelemetryStreamClient::handle_version_reject(const Frame& frame) {
  VersionReject reject;
  if (auto decoded = decode_version_reject(frame.payload)) {
    reject = std::move(*decoded);
  } else {
    m_decode_errors_->inc();
    reject.message = "server rejected protocol version (unreadable detail)";
  }
  m_version_rejected_->inc();
  {
    std::lock_guard lock(protocol_error_mutex_);
    protocol_error_ = "server rejected protocol version " +
                      std::to_string(reject.rejected) + " (supports " +
                      std::to_string(reject.min_version) + ".." +
                      std::to_string(reject.max_version) + ")";
    if (!reject.message.empty()) {
      protocol_error_ += ": " + reject.message;
    }
  }
  if (handlers_.on_protocol_error) {
    handlers_.on_protocol_error(reject);
  }
  // Reconnecting cannot fix a version mismatch: stop the reader for good.
  return true;
}

bool TelemetryStreamClient::handle_query_result(const Frame& frame) {
  auto response = decode_query_result(frame.payload);
  if (!response) {
    m_decode_errors_->inc();
    return false;
  }
  std::lock_guard lock(pending_mutex_);
  const auto it = pending_.find(response->correlation_id);
  if (it != pending_.end()) {
    it->second.set_value(std::move(*response));
    pending_.erase(it);
    m_query_responses_->inc();
  }
  // No waiter: the caller already timed out; drop the stale response.
  return false;
}

}  // namespace nrs
