#include "net/stream_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>

namespace nrs {

namespace {
using Clock = std::chrono::steady_clock;
}  // namespace

TelemetryStreamClient::TelemetryStreamClient(
    const StreamClientConfig& config, StreamClientHandlers handlers,
    MetricsRegistry* registry)
    : config_(config), handlers_(std::move(handlers)) {
  if (registry == nullptr) {
    own_registry_ = std::make_unique<MetricsRegistry>();
    registry = own_registry_.get();
  }
  m_connects_ = &registry->counter("net.client.connects");
  m_reconnect_attempts_ =
      &registry->counter("net.client.reconnect_attempts");
  m_disconnects_ = &registry->counter("net.client.disconnects");
  m_frames_rx_ = &registry->counter("net.client.frames_received");
  m_bytes_rx_ = &registry->counter("net.client.bytes_received");
  m_decode_errors_ = &registry->counter("net.client.decode_errors");
  reader_ = std::thread([this] { run(); });
}

TelemetryStreamClient::~TelemetryStreamClient() { stop(); }

void TelemetryStreamClient::stop() {
  stopping_.store(true);
  const int fd = live_fd_.load();
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);  // wake a blocked poll()/recv()
  }
  note_state_change();
  if (reader_.joinable()) {
    reader_.join();
  }
}

void TelemetryStreamClient::note_state_change() {
  std::lock_guard lock(state_mutex_);
  state_cv_.notify_all();
}

bool TelemetryStreamClient::wait_end_of_stream(double timeout_s) {
  std::unique_lock lock(state_mutex_);
  state_cv_.wait_for(lock, std::chrono::duration<double>(timeout_s), [this] {
    return saw_end_.load() || finished_.load();
  });
  return saw_end_.load();
}

bool TelemetryStreamClient::wait_connected(double timeout_s) {
  std::unique_lock lock(state_mutex_);
  state_cv_.wait_for(lock, std::chrono::duration<double>(timeout_s), [this] {
    return connected_.load() || finished_.load();
  });
  return connected_.load();
}

int TelemetryStreamClient::connect_once() const {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

void TelemetryStreamClient::run() {
  double backoff_s = config_.backoff_initial_s;
  int failed_attempts = 0;
  bool first_attempt = true;
  while (!stopping_.load()) {
    const int fd = connect_once();
    if (fd < 0) {
      ++failed_attempts;
      if (!first_attempt) {
        m_reconnect_attempts_->inc();
      }
      first_attempt = false;
      if (config_.max_reconnect_attempts >= 0 &&
          failed_attempts > config_.max_reconnect_attempts) {
        break;
      }
      // Exponential backoff, sliced so stop() stays responsive.
      const auto deadline =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(backoff_s));
      while (!stopping_.load() && Clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
      backoff_s = std::min(backoff_s * 2.0, config_.backoff_max_s);
      continue;
    }
    failed_attempts = 0;
    first_attempt = false;
    backoff_s = config_.backoff_initial_s;
    live_fd_.store(fd);
    connected_.store(true);
    m_connects_->inc();
    note_state_change();

    const bool done = serve_connection(fd);

    connected_.store(false);
    live_fd_.store(-1);
    ::close(fd);
    m_disconnects_->inc();
    if (handlers_.on_disconnected && !stopping_.load() && !done) {
      handlers_.on_disconnected();
    }
    note_state_change();
    if (done) {
      break;
    }
  }
  finished_.store(true);
  note_state_change();
}

bool TelemetryStreamClient::serve_connection(int fd) {
  FrameParser parser;
  std::uint8_t buf[16384];
  auto last_frame = Clock::now();
  const auto timeout = std::chrono::duration<double>(config_.read_timeout_s);
  while (!stopping_.load()) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/50);
    if (ready < 0 && errno != EINTR) {
      return false;
    }
    if (ready > 0) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) {
        return false;  // peer closed or hard error
      }
      m_bytes_rx_->inc(static_cast<std::uint64_t>(n));
      parser.feed(std::span<const std::uint8_t>(buf, static_cast<std::size_t>(n)));
      while (auto frame = parser.next()) {
        last_frame = Clock::now();
        m_frames_rx_->inc();
        switch (frame->type) {
          case FrameType::kHello:
            if (auto hello = decode_hello(frame->payload)) {
              if (handlers_.on_connected) {
                handlers_.on_connected(*hello);
              }
            } else {
              m_decode_errors_->inc();
            }
            break;
          case FrameType::kSlot:
            if (auto slot = decode_slot(frame->payload)) {
              if (handlers_.on_slot) {
                handlers_.on_slot(*slot);
              }
            } else {
              m_decode_errors_->inc();
            }
            break;
          case FrameType::kMetrics:
            if (auto metrics = decode_metrics(frame->payload)) {
              if (handlers_.on_metrics) {
                handlers_.on_metrics(*metrics);
              }
            } else {
              m_decode_errors_->inc();
            }
            break;
          case FrameType::kFleet:
            if (auto fleet = decode_fleet(frame->payload)) {
              if (handlers_.on_fleet) {
                handlers_.on_fleet(*fleet);
              }
            } else {
              m_decode_errors_->inc();
            }
            break;
          case FrameType::kHeartbeat:
            break;  // liveness only
          case FrameType::kEnd:
            saw_end_.store(true);
            note_state_change();
            if (handlers_.on_end_of_stream) {
              handlers_.on_end_of_stream();
            }
            if (config_.stop_on_end_of_stream) {
              return true;
            }
            break;
        }
      }
      if (parser.error()) {
        m_decode_errors_->inc();
        return false;  // protocol mismatch: drop and reconnect
      }
    }
    if (Clock::now() - last_frame > timeout) {
      return false;  // silent peer: heartbeats stopped, declare it dead
    }
  }
  return true;
}

}  // namespace nrs
