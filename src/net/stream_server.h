// Multi-client live telemetry streaming server: a SlotSink that serializes
// each SlotResult once and fans the frame out to every connected TCP
// client.  The collector thread (the pipeline hot loop) only ever touches
// per-client bounded queues — a slow or dead consumer can never block the
// sniffer; what happens when a client falls behind is the configured
// BackpressurePolicy, and every shed frame is counted in the metrics
// registry (net.frames_dropped.*).
//
// The stream is also request/response-capable: clients may send kQuery
// frames, which the accept/housekeeping thread parses and hands to a
// dedicated query thread pool; the configured query_handler (typically
// history_query_handler() over a HistoryStore) produces the
// QueryResponse, and the result frame rides the client's ordinary send
// queue.  Queries therefore never touch the collector thread and never
// block the fan-out path; latency and volume land in the query.* metrics.
//
// Threads: one accept/housekeeping thread (also reads client sockets,
// reaps dead clients and schedules idle heartbeats), one sender thread per
// client, and the query pool — all owned by this object and joined in
// stop()/the destructor.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/queue.h"
#include "common/worker_pool.h"
#include "net/wire.h"
#include "nrscope/slot_sink.h"

namespace nrs {

/// What to do with a client whose send queue is full when a new frame
/// arrives (i.e. the consumer is slower than the cell).
enum class BackpressurePolicy : std::uint8_t {
  kDropOldest,       ///< shed the oldest queued frame, keep the stream fresh
  kCoalesceLatest,   ///< drop everything queued; deliver only the newest
  kDisconnectSlow,   ///< drop the client instead of any frame
};

const char* to_string(BackpressurePolicy policy);

struct StreamServerConfig {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = pick an ephemeral port (see port())
  BackpressurePolicy policy = BackpressurePolicy::kDropOldest;
  std::size_t client_queue_frames = 256;  ///< per-client send queue bound
  /// Send a MetricsSnapshot frame every N slots (0 disables).  Requires a
  /// registry to snapshot (the one passed to the constructor).
  std::uint64_t metrics_period_slots = 0;
  /// Idle keep-alive: a heartbeat frame when nothing was queued for this
  /// long, so clients can tell "quiet cell" from "dead server".
  double heartbeat_period_s = 0.5;
  std::size_t max_clients = 64;

  /// Answers kQuery frames (see src/store's history_query_handler).  Runs
  /// on the query pool threads; must be thread-safe.  When unset, queries
  /// are answered with status kUnavailable.
  std::function<QueryResponse(const QueryRequest&)> query_handler;
  /// Query pool size (only spawned when query_handler is set).
  unsigned query_threads = 2;
};

class TelemetryStreamServer : public SlotSink {
 public:
  /// Binds and starts listening immediately (throws std::runtime_error if
  /// the socket cannot be bound).  `registry` receives the net.* metrics
  /// and is the source of periodic metrics frames; when null, an internal
  /// registry is used and no metrics frames are sent.
  explicit TelemetryStreamServer(const StreamServerConfig& config,
                                 MetricsRegistry* registry = nullptr);
  ~TelemetryStreamServer() override;

  TelemetryStreamServer(const TelemetryStreamServer&) = delete;
  TelemetryStreamServer& operator=(const TelemetryStreamServer&) = delete;

  // SlotSink: runs on the pipeline collector thread; never blocks.
  void on_slot(const SlotResult& result) override;
  void on_finish() override;

  /// Broadcast an arbitrary pre-encoded frame — e.g. the fleet
  /// orchestrator's periodic aggregate rollup (fleet_frame()) — to every
  /// connected client.  Thread-safe; a slow client sheds it under the same
  /// backpressure policy as slot frames.
  void broadcast_frame(std::vector<std::uint8_t> frame);

  /// The actual listening port (resolves config.port == 0).
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] std::size_t client_count() const;

  /// Force-close every current connection (clients are expected to
  /// reconnect).  Admin/test hook for exercising reconnect paths.
  void kick_all_clients();

  /// Stop accepting, close every connection, join all threads.
  /// Idempotent; the destructor calls it.
  void stop();

 private:
  using FramePtr = std::shared_ptr<const std::vector<std::uint8_t>>;

  struct Client {
    explicit Client(std::size_t queue_frames) : queue(queue_frames) {}
    int fd = -1;
    BoundedQueue<FramePtr> queue;
    std::thread sender;
    std::atomic<bool> dead{false};
    /// Inbound request parser; touched only by the accept/housekeeping
    /// thread.
    FrameParser parser;
    /// Serializes writes to `fd`: the sender thread holds it per frame, and
    /// the housekeeping thread takes it to inject a synchronous
    /// kUnsupportedVersion reply without tearing a frame in half.
    std::mutex send_mutex;
  };

  void accept_loop();
  void sender_loop(Client& client);
  void enqueue(Client& client, const FramePtr& frame);
  void broadcast(const FramePtr& frame);
  void reap_dead_clients_locked();
  /// Drain readable bytes from one client socket and dispatch any
  /// complete request frames (accept/housekeeping thread only).
  void read_client(const std::shared_ptr<Client>& client);
  /// Hand one decoded query to the pool; the response frame is enqueued
  /// on the client's send queue when the handler returns.
  void dispatch_query(const std::shared_ptr<Client>& client,
                      const QueryRequest& request);

  StreamServerConfig config_;
  std::unique_ptr<MetricsRegistry> own_registry_;
  MetricsRegistry* registry_ = nullptr;
  bool send_metrics_frames_ = false;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;

  mutable std::mutex clients_mutex_;
  // shared_ptr: in-flight query tasks keep their client alive across a
  // reap, so a response for a vanished consumer is dropped, not a crash.
  std::vector<std::shared_ptr<Client>> clients_;

  /// Lazily spawned on the first constructor that carries a
  /// query_handler; destroyed (joined) in stop() before the clients.
  std::unique_ptr<WorkerPool> query_pool_;

  std::atomic<std::uint64_t> next_slot_{0};  ///< for HelloInfo on accept
  std::uint64_t slots_seen_ = 0;             ///< collector thread only

  Counter* m_bytes_sent_ = nullptr;
  Counter* m_frames_sent_ = nullptr;
  Counter* m_heartbeats_sent_ = nullptr;
  Counter* m_drop_oldest_ = nullptr;
  Counter* m_drop_coalesced_ = nullptr;
  Counter* m_disconnect_slow_ = nullptr;
  Counter* m_connects_ = nullptr;
  Counter* m_disconnects_ = nullptr;
  Counter* m_send_errors_ = nullptr;
  Counter* m_version_rejects_ = nullptr;
  Gauge* m_clients_ = nullptr;
  Counter* m_query_requests_ = nullptr;
  Counter* m_query_errors_ = nullptr;
  Counter* m_query_rejected_ = nullptr;
  Histogram* m_query_latency_us_ = nullptr;
  Gauge* m_query_inflight_ = nullptr;
};

}  // namespace nrs
