#include "common/timing.h"

namespace nrs {

const char* to_string(Scs scs) {
  switch (scs) {
    case Scs::kHz15:
      return "15kHz";
    case Scs::kHz30:
      return "30kHz";
    case Scs::kHz60:
      return "60kHz";
  }
  return "?";
}

bool SlotPoint::advance() {
  if (++slot >= slots_per_frame(scs)) {
    slot = 0;
    sfn = (sfn + 1) & 0x3FF;
    return sfn == 0;
  }
  return false;
}

std::string SlotPoint::to_string() const {
  return "sfn=" + std::to_string(sfn) + " slot=" + std::to_string(slot);
}

void SlotClock::tick() {
  point_.advance();
  ++count_;
}

}  // namespace nrs
