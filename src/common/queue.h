// Bounded multi-producer / multi-consumer queue.  The Fig. 4 pipeline moves
// slot buffers from the radio to workers and results back to the scheduler
// through instances of this queue.
//
// Storage is a fixed ring allocated once at construction (hot-path memory
// discipline, DESIGN.md): push/pop move elements in and out of preallocated
// slots instead of growing a deque chunk-by-chunk, so a steady-state
// producer/consumer pair causes zero heap traffic.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace nrs {

/// Why a non-blocking push did not enqueue (or that it did).
enum class QueuePushResult : std::uint8_t {
  kOk,
  kFull,    ///< at capacity; the caller may shed the item
  kClosed,  ///< the queue was closed; no more input is accepted
};

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity),
        ring_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocking push; returns false if the queue was closed.
  bool push(T item) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [this] { return closed_ || size_ < capacity_; });
    if (closed_) {
      return false;
    }
    enqueue(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false when full or closed (the caller may
  /// drop the slot, which is how a real sniffer sheds load).
  bool try_push(T item) {
    return try_push_result(std::move(item)) == QueuePushResult::kOk;
  }

  /// Non-blocking push that reports *why* the item was not enqueued, so
  /// callers can distinguish load shedding from shutdown.
  QueuePushResult try_push_result(T item) {
    std::lock_guard lock(mutex_);
    if (closed_) {
      return QueuePushResult::kClosed;
    }
    if (size_ >= capacity_) {
      return QueuePushResult::kFull;
    }
    enqueue(std::move(item));
    not_empty_.notify_one();
    return QueuePushResult::kOk;
  }

  /// Blocking pop; empty optional means the queue was closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || size_ > 0; });
    if (size_ == 0) {
      return std::nullopt;
    }
    std::optional<T> item(dequeue());
    not_full_.notify_one();
    return item;
  }

  /// Blocking pop with a deadline: waits up to `timeout` for an item.
  /// Empty optional means either timeout or closed-and-drained; callers
  /// that need to distinguish check closed() (a closed queue stays closed).
  template <typename Rep, typename Period>
  std::optional<T> pop_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock(mutex_);
    not_empty_.wait_for(lock, timeout,
                        [this] { return closed_ || size_ > 0; });
    if (size_ == 0) {
      return std::nullopt;
    }
    std::optional<T> item(dequeue());
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::lock_guard lock(mutex_);
    if (size_ == 0) {
      return std::nullopt;
    }
    std::optional<T> item(dequeue());
    not_full_.notify_one();
    return item;
  }

  /// Close the queue: pending pops drain remaining items then fail.
  void close() {
    std::lock_guard lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return size_;
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

 private:
  void enqueue(T item) {
    ring_[tail_] = std::move(item);
    tail_ = (tail_ + 1) % capacity_;
    ++size_;
  }

  T dequeue() {
    T item = std::move(ring_[head_]);
    // Leave a default T behind so popped slots don't pin resources (e.g. a
    // popped pooled-buffer handle must not keep the buffer checked out).
    ring_[head_] = T{};
    head_ = (head_ + 1) % capacity_;
    --size_;
    return item;
  }

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::vector<T> ring_;
  std::size_t head_ = 0;  ///< next slot to pop
  std::size_t tail_ = 0;  ///< next slot to fill
  std::size_t size_ = 0;
  bool closed_ = false;
};

}  // namespace nrs
