// Counting operator new/delete replacements.  Include this header in
// EXACTLY ONE translation unit of a test or bench binary to make
// nrs::alloc::totals() track every heap allocation in the process; the
// library itself never includes it.  The replacements forward to malloc /
// free, so they compose with sanitizers' interceptors being absent (the
// asan preset simply does not build the shimmed targets' assertions —
// counting allocations under asan would count the sanitizer's own noise).
//
// All eight replaceable forms are provided so that sized and aligned
// deallocations do not bypass the counters.
#pragma once

#include <cstdlib>
#include <new>

#include "common/alloc_hooks.h"

namespace nrs::alloc::detail {

inline void* counted_alloc(std::size_t size) {
  record_alloc(size);
  if (void* p = std::malloc(size == 0 ? 1 : size)) {
    return p;
  }
  throw std::bad_alloc();
}

inline void* counted_alloc_aligned(std::size_t size, std::size_t align) {
  record_alloc(size);
  void* p = nullptr;
  if (align < sizeof(void*)) {
    align = sizeof(void*);
  }
  if (posix_memalign(&p, align, size == 0 ? 1 : size) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

inline void counted_free(void* p) noexcept {
  if (p != nullptr) {
    record_free();
    std::free(p);
  }
}

}  // namespace nrs::alloc::detail

void* operator new(std::size_t size) {
  return nrs::alloc::detail::counted_alloc(size);
}
void* operator new[](std::size_t size) {
  return nrs::alloc::detail::counted_alloc(size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return nrs::alloc::detail::counted_alloc_aligned(
      size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return nrs::alloc::detail::counted_alloc_aligned(
      size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return nrs::alloc::detail::counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return nrs::alloc::detail::counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* p) noexcept { nrs::alloc::detail::counted_free(p); }
void operator delete[](void* p) noexcept {
  nrs::alloc::detail::counted_free(p);
}
void operator delete(void* p, std::size_t) noexcept {
  nrs::alloc::detail::counted_free(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  nrs::alloc::detail::counted_free(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  nrs::alloc::detail::counted_free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  nrs::alloc::detail::counted_free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  nrs::alloc::detail::counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  nrs::alloc::detail::counted_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  nrs::alloc::detail::counted_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  nrs::alloc::detail::counted_free(p);
}
