// Deterministic random number generation.  Every stochastic component
// (traffic, fading, UE churn) takes an explicit seed so experiments are
// reproducible run-to-run, which EXPERIMENTS.md relies on.
#pragma once

#include <cstdint>
#include <random>

namespace nrs {

/// Thin wrapper over a 64-bit Mersenne Twister with convenience draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double uniform() { return uniform_(engine_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Standard normal draw.
  double gaussian() { return normal_(engine_); }

  /// Gaussian with the given mean / stddev.
  double gaussian(double mean, double stddev) {
    return mean + stddev * gaussian();
  }

  /// Exponential draw with the given mean.
  double exponential(double mean) {
    return -mean * std::log(1.0 - uniform());
  }

  /// Poisson draw.
  unsigned poisson(double mean) {
    return std::poisson_distribution<unsigned>(mean)(engine_);
  }

  /// Bernoulli draw.
  bool chance(double p) { return uniform() < p; }

  /// Derive a child RNG (e.g. per-UE) that is independent of draws made on
  /// this one afterwards.
  Rng fork() { return Rng(engine_() ^ 0x9E3779B97F4A7C15ull); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> uniform_{0.0, 1.0};
  std::normal_distribution<double> normal_{0.0, 1.0};
};

}  // namespace nrs
