// CRC generators from 3GPP TS 38.212 section 5.1.  All NR transport and
// control channels attach one of these codes; NR-Scope additionally exploits
// the CRC to recover C-RNTIs (the scrambled-CRC XOR trick, paper section
// 3.1.2), so the implementation works directly on bit vectors.
#pragma once

#include <cstdint>
#include <span>

#include "common/bit_io.h"

namespace nrs {

/// A cyclic code defined by its generator polynomial (without the leading
/// x^L term) and length L.  Stateless; one instance per polynomial.
class CrcGenerator {
 public:
  constexpr CrcGenerator(std::uint32_t poly, unsigned length)
      : poly_(poly), length_(length) {}

  /// Compute the CRC remainder of `bits`, returned in the low `length()`
  /// bits of the result.
  [[nodiscard]] std::uint32_t compute(std::span<const std::uint8_t> bits) const;

  /// Append the CRC of `bits` to `bits` (MSB of the remainder first).
  void attach(BitVector& bits) const;

  /// True when `bits` = payload + CRC is a valid codeword.
  [[nodiscard]] bool check(std::span<const std::uint8_t> bits) const;

  /// Like check(), but the trailing min(16, L) CRC bits are first unmasked
  /// with `rnti` (3GPP scrambles DCI CRCs with the RNTI; TS 38.212 7.3.2).
  [[nodiscard]] bool check_masked(std::span<const std::uint8_t> bits,
                                  std::uint16_t rnti) const;

  /// XOR the trailing 16 CRC bits of `bits` with `rnti` in place.
  void mask_rnti(BitVector& bits, std::uint16_t rnti) const;

  /// Recover the mask: XOR of the computed CRC of the payload and the
  /// received (masked) CRC, restricted to the trailing 16 bits.  This is the
  /// paper's C-RNTI recovery primitive.
  [[nodiscard]] std::uint16_t recover_mask(
      std::span<const std::uint8_t> bits_with_crc) const;

  [[nodiscard]] unsigned length() const { return length_; }

 private:
  std::uint32_t poly_;
  unsigned length_;
};

// Generator polynomials from TS 38.212 5.1.
// CRC24A: x^24 + x^23 + x^18 + x^17 + x^14 + x^11 + x^10 + x^7 + x^6 + x^5
//         + x^4 + x^3 + x + 1
inline constexpr CrcGenerator kCrc24A{0x864CFB, 24};
// CRC24B: x^24 + x^23 + x^6 + x^5 + x + 1
inline constexpr CrcGenerator kCrc24B{0x800063, 24};
// CRC24C: x^24 + x^23 + x^21 + x^20 + x^17 + x^15 + x^13 + x^12 + x^8 + x^4
//         + x^2 + x + 1  (used by PDCCH / PBCH polar chains)
inline constexpr CrcGenerator kCrc24C{0xB2B117, 24};
// CRC16: x^16 + x^12 + x^5 + 1
inline constexpr CrcGenerator kCrc16{0x1021, 16};
// CRC11: x^11 + x^10 + x^9 + x^5 + 1
inline constexpr CrcGenerator kCrc11{0x621, 11};
// CRC6: x^6 + x^5 + 1
inline constexpr CrcGenerator kCrc6{0x21, 6};

}  // namespace nrs
