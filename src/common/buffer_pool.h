// A tiny object pool for the slot hot path: ResourceGrids, IQ sample
// buffers and other per-slot workspaces are acquired at the head of the
// pipeline and returned automatically when their RAII handle dies, so the
// steady state recycles a fixed working set instead of allocating per slot
// (see DESIGN.md "Hot-path memory discipline").
//
// The pool is deliberately simple: a mutex-guarded free list.  acquire()
// constructs a new object only when the free list is empty (warm-up);
// afterwards it is a pop_back.  The free-list vector's capacity is grown
// when objects are created, never on release, so release() is allocation
// free too.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace nrs {

template <typename T>
class BufferPool {
 public:
  /// RAII ownership of one pooled object; returns it on destruction.
  /// Handles must not outlive the pool (the pipeline tears its threads
  /// down before its pools for exactly this reason).
  class Handle {
   public:
    Handle() = default;
    Handle(T* object, BufferPool* pool) : object_(object), pool_(pool) {}
    Handle(Handle&& other) noexcept
        : object_(std::exchange(other.object_, nullptr)),
          pool_(std::exchange(other.pool_, nullptr)) {}
    Handle& operator=(Handle&& other) noexcept {
      if (this != &other) {
        release();
        object_ = std::exchange(other.object_, nullptr);
        pool_ = std::exchange(other.pool_, nullptr);
      }
      return *this;
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;
    ~Handle() { release(); }

    /// Early return to the pool.
    void release() {
      if (object_ != nullptr) {
        pool_->put(object_);
        object_ = nullptr;
      }
    }

    [[nodiscard]] T& operator*() const { return *object_; }
    [[nodiscard]] T* operator->() const { return object_; }
    [[nodiscard]] T* get() const { return object_; }
    explicit operator bool() const { return object_ != nullptr; }

   private:
    T* object_ = nullptr;
    BufferPool* pool_ = nullptr;
  };

  BufferPool() = default;
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pop a recycled object, or construct T(args...) when the pool is dry.
  /// The constructor arguments are only used for brand-new objects;
  /// recycled ones come back in whatever state release() left them, so
  /// callers that care must reset the contents themselves (grids are
  /// overwritten wholesale by demodulate_into, sample buffers by assign).
  template <typename... Args>
  [[nodiscard]] Handle acquire(Args&&... args) {
    {
      std::lock_guard lock(mutex_);
      if (!free_.empty()) {
        T* object = free_.back();
        free_.pop_back();
        return Handle(object, this);
      }
    }
    // Warm-up path: construct outside the lock, then register.
    auto fresh = std::make_unique<T>(std::forward<Args>(args)...);
    T* object = fresh.get();
    {
      std::lock_guard lock(mutex_);
      owned_.push_back(std::move(fresh));
      // Reserve free-list capacity now (an allowed warm-up allocation) so
      // the eventual put() never reallocates.
      free_.reserve(owned_.size());
    }
    return Handle(object, this);
  }

  /// Pre-create `count` objects so steady state starts warm.
  template <typename... Args>
  void warm(std::size_t count, Args&&... args) {
    std::vector<Handle> handles;
    handles.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      handles.push_back(acquire(args...));
    }
    // Handles release back into the pool as the vector unwinds.
  }

  /// Objects ever constructed (pool high-water mark).
  [[nodiscard]] std::size_t created() const {
    std::lock_guard lock(mutex_);
    return owned_.size();
  }

  /// Objects currently idle in the pool.
  [[nodiscard]] std::size_t available() const {
    std::lock_guard lock(mutex_);
    return free_.size();
  }

 private:
  friend class Handle;

  void put(T* object) {
    std::lock_guard lock(mutex_);
    // Capacity was reserved at creation time; push_back cannot allocate.
    free_.push_back(object);
  }

  mutable std::mutex mutex_;
  std::vector<T*> free_;                  ///< idle objects (non-owning)
  std::vector<std::unique_ptr<T>> owned_; ///< every object ever created
};

}  // namespace nrs
