// Minimal leveled logger.  The sniffer pipeline writes decoded telemetry to
// a log file (Fig. 4 "File System / Log File"); diagnostics go through this
// interface so tests and benches can silence them.
#pragma once

#include <cstdio>
#include <mutex>
#include <string>

namespace nrs {

enum class LogLevel : int {
  kError = 0,
  kWarning = 1,
  kInfo = 2,
  kDebug = 3,
};

/// Process-wide log sink.  Thread-safe; defaults to warnings on stderr.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }

  void log(LogLevel level, const std::string& message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarning;
  std::mutex mutex_;
};

void log_error(const std::string& message);
void log_warning(const std::string& message);
void log_info(const std::string& message);
void log_debug(const std::string& message);

}  // namespace nrs
