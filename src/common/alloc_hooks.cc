#include "common/alloc_hooks.h"

#include <atomic>

namespace nrs::alloc {
namespace {

// Plain globals, relaxed ordering: the counters are diagnostics, not a
// synchronization mechanism, and record_alloc() sits under every single
// operator new in shimmed binaries.
std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_frees{0};
std::atomic<std::uint64_t> g_bytes{0};
std::atomic<bool> g_active{false};

}  // namespace

void record_alloc(std::size_t bytes) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(bytes, std::memory_order_relaxed);
  g_active.store(true, std::memory_order_relaxed);
}

void record_free() noexcept {
  g_frees.fetch_add(1, std::memory_order_relaxed);
}

bool hooks_active() noexcept {
  return g_active.load(std::memory_order_relaxed);
}

Totals totals() noexcept {
  Totals t;
  t.allocs = g_allocs.load(std::memory_order_relaxed);
  t.frees = g_frees.load(std::memory_order_relaxed);
  t.bytes = g_bytes.load(std::memory_order_relaxed);
  return t;
}

void reset() noexcept {
  g_allocs.store(0, std::memory_order_relaxed);
  g_frees.store(0, std::memory_order_relaxed);
  g_bytes.store(0, std::memory_order_relaxed);
}

}  // namespace nrs::alloc
