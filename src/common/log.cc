#include "common/log.h"

namespace nrs {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) > static_cast<int>(level_)) {
    return;
  }
  const char* tag = "?";
  switch (level) {
    case LogLevel::kError:
      tag = "E";
      break;
    case LogLevel::kWarning:
      tag = "W";
      break;
    case LogLevel::kInfo:
      tag = "I";
      break;
    case LogLevel::kDebug:
      tag = "D";
      break;
  }
  std::lock_guard lock(mutex_);
  std::fprintf(stderr, "[%s] %s\n", tag, message.c_str());
}

void log_error(const std::string& message) {
  Logger::instance().log(LogLevel::kError, message);
}
void log_warning(const std::string& message) {
  Logger::instance().log(LogLevel::kWarning, message);
}
void log_info(const std::string& message) {
  Logger::instance().log(LogLevel::kInfo, message);
}
void log_debug(const std::string& message) {
  Logger::instance().log(LogLevel::kDebug, message);
}

}  // namespace nrs
