#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace nrs {

void SampleSet::add_count(double value, std::size_t count) {
  values_.insert(values_.end(), count, value);
  sorted_ = false;
}

void SampleSet::sort() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double SampleSet::mean() const {
  if (values_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double v : values_) {
    sum += v;
  }
  return sum / static_cast<double>(values_.size());
}

double SampleSet::stddev() const {
  if (values_.size() < 2) {
    return 0.0;
  }
  const double m = mean();
  double acc = 0.0;
  for (double v : values_) {
    acc += (v - m) * (v - m);
  }
  return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

double SampleSet::min() const {
  sort();
  return values_.empty() ? 0.0 : values_.front();
}

double SampleSet::max() const {
  sort();
  return values_.empty() ? 0.0 : values_.back();
}

double SampleSet::percentile(double p) const {
  if (values_.empty()) {
    return 0.0;
  }
  if (p < 0.0 || p > 100.0) {
    throw std::invalid_argument("percentile out of range");
  }
  sort();
  const double rank = p / 100.0 * static_cast<double>(values_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

double SampleSet::ccdf(double x) const {
  if (values_.empty()) {
    return 0.0;
  }
  sort();
  const auto it = std::upper_bound(values_.begin(), values_.end(), x);
  return static_cast<double>(values_.end() - it) /
         static_cast<double>(values_.size());
}

double SampleSet::cdf(double x) const {
  if (values_.empty()) {
    return 0.0;
  }
  return 1.0 - ccdf(x);
}

namespace {
std::vector<CurvePoint> curve_impl(const SampleSet& samples,
                                   std::size_t points, bool complementary) {
  std::vector<CurvePoint> curve;
  if (samples.empty() || points < 2) {
    return curve;
  }
  const double lo = samples.min();
  const double hi = samples.max();
  const double span = hi - lo;
  curve.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        lo + span * static_cast<double>(i) / static_cast<double>(points - 1);
    curve.push_back({x, complementary ? samples.ccdf(x) : samples.cdf(x)});
  }
  return curve;
}
}  // namespace

std::vector<CurvePoint> ccdf_curve(const SampleSet& samples,
                                   std::size_t points) {
  return curve_impl(samples, points, /*complementary=*/true);
}

std::vector<CurvePoint> cdf_curve(const SampleSet& samples,
                                  std::size_t points) {
  return curve_impl(samples, points, /*complementary=*/false);
}

double r_squared(const std::vector<double>& truth,
                 const std::vector<double>& estimate) {
  if (truth.size() != estimate.size() || truth.empty()) {
    throw std::invalid_argument("r_squared: size mismatch");
  }
  double mean = 0.0;
  for (double v : truth) {
    mean += v;
  }
  mean /= static_cast<double>(truth.size());
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    ss_res += (truth[i] - estimate[i]) * (truth[i] - estimate[i]);
    ss_tot += (truth[i] - mean) * (truth[i] - mean);
  }
  if (ss_tot == 0.0) {
    return ss_res == 0.0 ? 1.0 : 0.0;
  }
  return 1.0 - ss_res / ss_tot;
}

std::string format_curve(const std::vector<CurvePoint>& curve,
                         const std::string& x_label,
                         const std::string& y_label) {
  std::ostringstream os;
  os << std::setw(16) << x_label << std::setw(14) << y_label << '\n';
  for (const auto& p : curve) {
    os << std::setw(16) << std::fixed << std::setprecision(3) << p.x
       << std::setw(14) << std::setprecision(5) << p.y << '\n';
  }
  return os.str();
}

}  // namespace nrs
