// Fixed-size thread pool.  NR-Scope's scheduler hands each slot to an idle
// worker; inside a worker, DCI decoding for the known-UE list is sharded
// across pool tasks (paper section 4, Fig. 4 and Fig. 12).
#pragma once

#include <atomic>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "common/queue.h"

namespace nrs {

class WorkerPool {
 public:
  explicit WorkerPool(unsigned num_threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Enqueue a task; returns a future for its completion.  A task that
  /// throws has the exception stored in the future — future.get() rethrows
  /// it on the caller's thread instead of losing it on the worker.
  std::future<void> submit(std::function<void()> task);

  /// Run `count` tasks produced by `make_task(i)` and wait for all of them.
  /// With a single-thread pool this degenerates to sequential execution,
  /// which is the paper's "one thread" baseline in Fig. 12.  Every shard
  /// is attempted even when one throws; after the batch has drained the
  /// first captured exception is rethrown to the caller.
  void run_batch(std::size_t count,
                 const std::function<void(std::size_t)>& task);

  [[nodiscard]] unsigned size() const { return num_threads_; }

 private:
  struct Job {
    std::function<void()> fn;
    std::promise<void> done;
  };

  void worker_loop();

  unsigned num_threads_;
  BoundedQueue<Job> jobs_;
  std::vector<std::thread> threads_;
};

}  // namespace nrs
