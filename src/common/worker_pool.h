// Fixed-size thread pool.  NR-Scope's scheduler hands each slot to an idle
// worker; inside a worker, DCI decoding for the known-UE list is sharded
// across pool tasks (paper section 4, Fig. 4 and Fig. 12).
//
// Two execution paths with different cost models:
//  - submit(): queue one std::function job, get a future.  Allocates (the
//    function, the promise's shared state) — fine for cold control work
//    like the fleet's per-cell advance tasks.
//  - run_batch(): shard a batch across the pool through one shared
//    descriptor and an atomic index dispenser.  Zero heap allocations —
//    this is the per-TTI DCI decode path (hot-path memory discipline,
//    DESIGN.md).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace nrs {

class WorkerPool {
 public:
  explicit WorkerPool(unsigned num_threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Enqueue a task; returns a future for its completion.  A task that
  /// throws has the exception stored in the future — future.get() rethrows
  /// it on the caller's thread instead of losing it on the worker.
  std::future<void> submit(std::function<void()> task);

  /// Run `count` tasks produced by `task(i)` and wait for all of them.
  /// With a single-thread pool this degenerates to sequential execution,
  /// which is the paper's "one thread" baseline in Fig. 12.  Every shard
  /// is attempted even when one throws; after the batch has drained the
  /// first captured exception is rethrown to the caller.  The calling
  /// thread participates in the batch.  Not reentrant: one batch at a
  /// time per pool.
  void run_batch(std::size_t count,
                 const std::function<void(std::size_t)>& task);

  [[nodiscard]] unsigned size() const { return num_threads_; }

  /// Index of the calling thread within its pool: 0..size()-1 on pool
  /// workers, -1 on any other thread (including a run_batch caller).
  /// Engines use this to pick a per-thread scratch workspace without
  /// thread_locals in the decode layer.
  [[nodiscard]] static int current_worker_index();

  /// Like current_worker_index(), but only for workers of THIS pool: a
  /// worker of some other pool (e.g. a pipeline demod worker calling into
  /// a scope's DCI batch) reports -1 here, so per-pool scratch arrays of
  /// size() + 1 entries indexed by `index_in_pool() + 1` never collide.
  [[nodiscard]] int index_in_pool() const;

 private:
  struct Job {
    std::function<void()> fn;
    std::promise<void> done;
  };

  void worker_loop(unsigned index);
  /// Pull shards from the live batch until the dispenser runs dry.
  /// `lock` must own mutex_ on entry; it is released while shards run and
  /// re-held on return.
  void work_on_batch(std::unique_lock<std::mutex>& lock);

  unsigned num_threads_;

  std::mutex mutex_;
  std::condition_variable wake_;        ///< workers: job or batch available
  std::condition_variable batch_done_;  ///< caller: batch fully completed
  std::deque<Job> jobs_;
  bool stop_ = false;

  // State of the (single) in-flight batch, guarded by mutex_ except where
  // noted.  batch_task_ != nullptr marks a live batch.
  const std::function<void(std::size_t)>* batch_task_ = nullptr;
  std::size_t batch_count_ = 0;
  std::atomic<std::size_t> batch_next_{0};  ///< shard dispenser (lock-free)
  std::size_t batch_completed_ = 0;
  std::exception_ptr batch_error_;

  std::vector<std::thread> threads_;
};

}  // namespace nrs
