#include "common/crc.h"

#include <algorithm>

namespace nrs {

std::uint32_t CrcGenerator::compute(
    std::span<const std::uint8_t> bits) const {
  // Bitwise long division; the register holds the current remainder in the
  // low `length_` bits.
  std::uint32_t reg = 0;
  const std::uint32_t top = 1u << (length_ - 1);
  const std::uint32_t mask = (length_ == 32) ? 0xFFFFFFFFu
                                             : ((1u << length_) - 1u);
  for (std::uint8_t b : bits) {
    const bool feedback = ((reg & top) != 0) != ((b & 1) != 0);
    reg = (reg << 1) & mask;
    if (feedback) {
      reg ^= poly_ & mask;
    }
  }
  return reg;
}

void CrcGenerator::attach(BitVector& bits) const {
  const std::uint32_t crc = compute(bits);
  for (unsigned i = 0; i < length_; ++i) {
    bits.push_back(static_cast<std::uint8_t>((crc >> (length_ - 1 - i)) & 1));
  }
}

bool CrcGenerator::check(std::span<const std::uint8_t> bits) const {
  if (bits.size() < length_) {
    return false;
  }
  // A valid codeword has zero remainder over payload+CRC.
  return compute(bits) == 0;
}

void CrcGenerator::mask_rnti(BitVector& bits, std::uint16_t rnti) const {
  if (bits.size() < 16) {
    return;
  }
  const std::size_t start = bits.size() - 16;
  for (unsigned i = 0; i < 16; ++i) {
    bits[start + i] ^= static_cast<std::uint8_t>((rnti >> (15 - i)) & 1);
  }
}

bool CrcGenerator::check_masked(std::span<const std::uint8_t> bits,
                                std::uint16_t rnti) const {
  if (bits.size() < length_) {
    return false;
  }
  if (length_ < 16) {
    // Mask overlaps the payload: unmask a copy and divide the whole thing.
    BitVector copy(bits.begin(), bits.end());
    mask_rnti(copy, rnti);
    return check(copy);
  }
  // The 16-bit mask sits entirely inside the CRC field, so the payload CRC
  // can be computed directly and compared bit-for-bit against the received
  // CRC with the mask XORed back in — no temporary codeword copy.  This is
  // the per-candidate hot path of blind PDCCH decoding.
  const std::size_t payload_len = bits.size() - length_;
  const std::uint32_t computed = compute(bits.first(payload_len));
  const std::size_t mask_start = bits.size() - 16;
  for (unsigned i = 0; i < length_; ++i) {
    const std::size_t pos = payload_len + i;
    std::uint8_t expect =
        static_cast<std::uint8_t>((computed >> (length_ - 1 - i)) & 1);
    if (pos >= mask_start) {
      expect ^= static_cast<std::uint8_t>((rnti >> (15 - (pos - mask_start))) & 1);
    }
    if ((bits[pos] & 1) != expect) {
      return false;
    }
  }
  return true;
}

std::uint16_t CrcGenerator::recover_mask(
    std::span<const std::uint8_t> bits_with_crc) const {
  if (bits_with_crc.size() < length_) {
    return 0;
  }
  const std::size_t payload_len = bits_with_crc.size() - length_;
  const std::uint32_t computed = compute(bits_with_crc.first(payload_len));
  std::uint16_t mask = 0;
  // Trailing 16 bits of the received CRC, XORed with the computed CRC.
  for (unsigned i = 0; i < 16; ++i) {
    const unsigned crc_bit_index = length_ - 16 + i;  // within the CRC field
    const std::uint8_t rx =
        bits_with_crc[payload_len + crc_bit_index] & 1;
    const std::uint8_t calc = static_cast<std::uint8_t>(
        (computed >> (length_ - 1 - crc_bit_index)) & 1);
    mask = static_cast<std::uint16_t>((mask << 1) | (rx ^ calc));
  }
  return mask;
}

}  // namespace nrs
