// Descriptive statistics and distribution summaries used by the analysis
// module and by every figure-reproduction bench (the paper reports CDFs,
// CCDFs, medians and percentiles throughout section 5).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace nrs {

/// Accumulates scalar samples; all queries are over the samples so far.
class SampleSet {
 public:
  void add(double value) { values_.push_back(value); }
  void add_count(double value, std::size_t count);

  [[nodiscard]] std::size_t size() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return values_.empty(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// p in [0, 100]; linear interpolation between order statistics.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }

  /// Empirical CCDF evaluated at `x`: P[X > x].
  [[nodiscard]] double ccdf(double x) const;
  /// Empirical CDF evaluated at `x`: P[X <= x].
  [[nodiscard]] double cdf(double x) const;

  [[nodiscard]] const std::vector<double>& values() const { return values_; }

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
  void sort() const;
};

/// One (x, y) point of a distribution curve.
struct CurvePoint {
  double x;
  double y;
};

/// Sampled CCDF curve over `points` x-values spanning [min, max].
std::vector<CurvePoint> ccdf_curve(const SampleSet& samples,
                                   std::size_t points = 20);

/// Sampled CDF curve.
std::vector<CurvePoint> cdf_curve(const SampleSet& samples,
                                  std::size_t points = 20);

/// Coefficient of determination R^2 between two equally-sized series
/// (the paper reports R^2 = 0.9970 / 0.9862 for MCS / retransmissions,
/// section 5.4.2).
double r_squared(const std::vector<double>& truth,
                 const std::vector<double>& estimate);

/// Render a curve as aligned text rows for bench output.
std::string format_curve(const std::vector<CurvePoint>& curve,
                         const std::string& x_label,
                         const std::string& y_label);

}  // namespace nrs
