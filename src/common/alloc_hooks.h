// Allocation-tracking hooks for the hot-path memory discipline (see
// DESIGN.md "Hot-path memory discipline").  The library side is just a set
// of relaxed atomic counters; they only move when a binary also links an
// operator new/delete replacement that forwards to record_alloc() /
// record_free() — see common/alloc_shim.h, which test and bench binaries
// include in exactly one translation unit.  Production binaries pay
// nothing: without the shim every function here is a no-op counter read.
//
// The pipeline publishes the totals as alloc.* gauges each slot, so a
// steady-state run can assert (tests) or report (bench_hotpath) heap
// traffic per slot.
#pragma once

#include <cstddef>
#include <cstdint>

namespace nrs::alloc {

/// Process-wide allocation totals since start (or the last reset()).
struct Totals {
  std::uint64_t allocs = 0;  ///< operator new calls
  std::uint64_t frees = 0;   ///< operator delete calls
  std::uint64_t bytes = 0;   ///< cumulative bytes requested

  [[nodiscard]] bool operator==(const Totals&) const = default;
};

/// Called by the operator new replacement (alloc_shim.h).
void record_alloc(std::size_t bytes) noexcept;

/// Called by the operator delete replacement.
void record_free() noexcept;

/// True once a shim has reported at least one allocation — lets callers
/// distinguish "zero allocations" from "no shim linked".
[[nodiscard]] bool hooks_active() noexcept;

[[nodiscard]] Totals totals() noexcept;

/// Zero the counters (e.g. after warm-up, before a measured region).
void reset() noexcept;

}  // namespace nrs::alloc
