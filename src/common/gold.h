// Length-31 Gold pseudo-random sequence from 3GPP TS 38.211 5.2.1, used to
// scramble PDCCH/PDSCH payloads and to generate DMRS.  Both the gNB
// simulator and the NR-Scope sniffer derive the same sequences from
// identifiers that are broadcast in the clear (cell ID, scrambling IDs), so
// the sniffer can descramble without operator cooperation.
#pragma once

#include <cstdint>

#include "common/bit_io.h"

namespace nrs {

/// Generates c(n) = (x1(n+Nc) + x2(n+Nc)) mod 2, Nc = 1600,
/// x1 seeded with 1, x2 seeded with c_init.
class GoldSequence {
 public:
  explicit GoldSequence(std::uint32_t c_init);

  /// Next scrambling bit.
  std::uint8_t next();

  /// Produce `count` bits starting at the current position.
  BitVector generate(std::size_t count);

  /// Advance without producing output.
  void advance(std::size_t count);

 private:
  std::uint32_t x1_;
  std::uint32_t x2_;

  std::uint8_t step();
};

/// XOR `bits` in place with the Gold sequence seeded by `c_init`.
void scramble(BitVector& bits, std::uint32_t c_init);

/// c_init for PDCCH data scrambling (TS 38.211 7.3.2.3):
/// (n_RNTI * 2^16 + n_ID) mod 2^31.  For common search spaces n_RNTI = 0.
std::uint32_t pdcch_scrambling_cinit(std::uint16_t n_rnti, std::uint16_t n_id);

/// c_init for PDSCH data scrambling (TS 38.211 7.3.1.1):
/// n_RNTI * 2^15 + q * 2^14 + n_ID, q = 0 (single codeword).
std::uint32_t pdsch_scrambling_cinit(std::uint16_t rnti, std::uint16_t n_id);

}  // namespace nrs
