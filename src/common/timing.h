// 5G NR frame timing: numerologies (subcarrier spacing), slot indexing and
// TTI durations.  The paper (section 3, Preliminaries) relies on TTIs of
// 1 / 0.5 / 0.25 ms for 15 / 30 / 60 kHz SCS; this module is the single
// source of truth for that arithmetic.
#pragma once

#include <cstdint>
#include <string>

namespace nrs {

/// NR numerology mu (TS 38.211 4.2): SCS = 15 kHz * 2^mu.
enum class Scs : std::uint8_t {
  kHz15 = 0,
  kHz30 = 1,
  kHz60 = 2,
};

/// Subcarrier spacing in Hz.
constexpr double scs_hz(Scs scs) {
  return 15000.0 * static_cast<double>(1u << static_cast<unsigned>(scs));
}

/// Slots per 10 ms radio frame: 10 * 2^mu.
constexpr unsigned slots_per_frame(Scs scs) {
  return 10u * (1u << static_cast<unsigned>(scs));
}

/// Slots per 1 ms subframe: 2^mu.
constexpr unsigned slots_per_subframe(Scs scs) {
  return 1u << static_cast<unsigned>(scs);
}

/// TTI (slot) duration in seconds: 1 ms / 2^mu.
constexpr double slot_duration_s(Scs scs) {
  return 1e-3 / static_cast<double>(1u << static_cast<unsigned>(scs));
}

const char* to_string(Scs scs);

/// A point in NR time: system frame number (0..1023) plus slot-in-frame.
/// Also convertible to/from a flat monotonically increasing slot count,
/// which the simulator and the sniffer use to match DCIs against ground
/// truth (paper section 5.2.1 matches on "timestamp and TTI index").
struct SlotPoint {
  Scs scs = Scs::kHz30;
  std::uint32_t sfn = 0;   ///< system frame number, wraps at 1024
  std::uint32_t slot = 0;  ///< slot index within the frame

  /// Flat slot count since sfn 0 / slot 0 (ignoring the 1024 wrap).
  [[nodiscard]] std::uint64_t flat(std::uint64_t wraps = 0) const {
    return (wraps * 1024ull + sfn) * slots_per_frame(scs) + slot;
  }

  /// Advance by one slot, wrapping sfn at 1024.  Returns true on sfn wrap.
  bool advance();

  [[nodiscard]] bool operator==(const SlotPoint& o) const {
    return scs == o.scs && sfn == o.sfn && slot == o.slot;
  }

  [[nodiscard]] std::string to_string() const;
};

/// Monotonic slot clock: produces successive SlotPoints and tracks absolute
/// elapsed time, including sfn wraps.
class SlotClock {
 public:
  explicit SlotClock(Scs scs) : point_{scs, 0, 0} {}

  /// Current slot.
  [[nodiscard]] const SlotPoint& now() const { return point_; }

  /// Absolute slot count since start (never wraps).
  [[nodiscard]] std::uint64_t count() const { return count_; }

  /// Elapsed simulated time in seconds.
  [[nodiscard]] double elapsed_s() const {
    return static_cast<double>(count_) * slot_duration_s(point_.scs);
  }

  /// Step to the next slot.
  void tick();

 private:
  SlotPoint point_;
  std::uint64_t count_ = 0;
};

}  // namespace nrs
