#include "common/worker_pool.h"

#include <algorithm>

namespace nrs {

WorkerPool::WorkerPool(unsigned num_threads)
    : num_threads_(std::max(1u, num_threads)), jobs_(1024) {
  threads_.reserve(num_threads_);
  for (unsigned i = 0; i < num_threads_; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  jobs_.close();
  for (auto& t : threads_) {
    t.join();
  }
}

void WorkerPool::worker_loop() {
  while (auto job = jobs_.pop()) {
    try {
      job->fn();
      job->done.set_value();
    } catch (...) {
      job->done.set_exception(std::current_exception());
    }
  }
}

std::future<void> WorkerPool::submit(std::function<void()> task) {
  Job job;
  job.fn = std::move(task);
  std::future<void> fut = job.done.get_future();
  if (!jobs_.push(std::move(job))) {
    // Pool already shut down (submit raced destruction): run inline so the
    // caller still gets a satisfied future.
    std::promise<void> p;
    fut = p.get_future();
    p.set_value();
  }
  return fut;
}

void WorkerPool::run_batch(std::size_t count,
                           const std::function<void(std::size_t)>& task) {
  if (count == 0) {
    return;
  }
  std::exception_ptr first_error;
  if (num_threads_ == 1 || count == 1) {
    // Sequential fallback keeps the parallel path's contract: every shard
    // is attempted, the first failure is rethrown after the batch.
    for (std::size_t i = 0; i < count; ++i) {
      try {
        task(i);
      } catch (...) {
        if (!first_error) {
          first_error = std::current_exception();
        }
      }
    }
  } else {
    std::vector<std::future<void>> futures;
    futures.reserve(count - 1);
    for (std::size_t i = 1; i < count; ++i) {
      futures.push_back(submit([&task, i] { task(i); }));
    }
    try {
      task(0);  // run the first shard on the calling thread
    } catch (...) {
      first_error = std::current_exception();
    }
    for (auto& f : futures) {
      try {
        f.get();
      } catch (...) {
        if (!first_error) {
          first_error = std::current_exception();
        }
      }
    }
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

}  // namespace nrs
