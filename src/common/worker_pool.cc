#include "common/worker_pool.h"

#include <algorithm>

namespace nrs {
namespace {

/// -1 everywhere except on pool workers, which set their index once at
/// thread start.  A thread belongs to at most one pool for its lifetime.
thread_local int t_worker_index = -1;
/// The pool the current thread works for (indices are only unique within
/// one pool, so per-pool scratch lookups must check ownership too).
thread_local const void* t_worker_pool = nullptr;

}  // namespace

int WorkerPool::current_worker_index() { return t_worker_index; }

int WorkerPool::index_in_pool() const {
  return t_worker_pool == this ? t_worker_index : -1;
}

WorkerPool::WorkerPool(unsigned num_threads)
    : num_threads_(std::max(1u, num_threads)) {
  threads_.reserve(num_threads_);
  for (unsigned i = 0; i < num_threads_; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& t : threads_) {
    t.join();
  }
}

void WorkerPool::work_on_batch(std::unique_lock<std::mutex>& lock) {
  // Snapshot the descriptor; mutex_ is held by the caller.
  const auto* task = batch_task_;
  const std::size_t count = batch_count_;
  std::size_t done_here = 0;
  std::exception_ptr error;
  lock.unlock();
  for (;;) {
    const std::size_t i =
        batch_next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count) {
      break;
    }
    try {
      (*task)(i);
    } catch (...) {
      if (!error) {
        error = std::current_exception();
      }
    }
    ++done_here;
  }
  lock.lock();
  if (error && !batch_error_) {
    batch_error_ = error;
  }
  batch_completed_ += done_here;
  if (batch_completed_ == count) {
    batch_done_.notify_all();
  }
}

void WorkerPool::worker_loop(unsigned index) {
  t_worker_index = static_cast<int>(index);
  t_worker_pool = this;
  std::unique_lock lock(mutex_);
  for (;;) {
    wake_.wait(lock, [this] {
      return stop_ || !jobs_.empty() ||
             (batch_task_ != nullptr &&
              batch_next_.load(std::memory_order_relaxed) < batch_count_);
    });
    if (batch_task_ != nullptr &&
        batch_next_.load(std::memory_order_relaxed) < batch_count_) {
      work_on_batch(lock);
      continue;
    }
    if (!jobs_.empty()) {
      Job job = std::move(jobs_.front());
      jobs_.pop_front();
      lock.unlock();
      try {
        job.fn();
        job.done.set_value();
      } catch (...) {
        job.done.set_exception(std::current_exception());
      }
      lock.lock();
      continue;
    }
    if (stop_) {
      return;
    }
  }
}

std::future<void> WorkerPool::submit(std::function<void()> task) {
  Job job;
  job.fn = std::move(task);
  std::future<void> fut = job.done.get_future();
  {
    std::lock_guard lock(mutex_);
    if (stop_) {
      // Pool already shut down (submit raced destruction): satisfy the
      // future immediately so the caller does not hang.
      job.done.set_value();
      return fut;
    }
    jobs_.push_back(std::move(job));
  }
  wake_.notify_one();
  return fut;
}

void WorkerPool::run_batch(std::size_t count,
                           const std::function<void(std::size_t)>& task) {
  if (count == 0) {
    return;
  }
  std::exception_ptr first_error;
  if (num_threads_ == 1 || count == 1) {
    // Sequential fallback keeps the parallel path's contract: every shard
    // is attempted, the first failure is rethrown after the batch.
    for (std::size_t i = 0; i < count; ++i) {
      try {
        task(i);
      } catch (...) {
        if (!first_error) {
          first_error = std::current_exception();
        }
      }
    }
  } else {
    std::unique_lock lock(mutex_);
    batch_task_ = &task;
    batch_count_ = count;
    batch_completed_ = 0;
    batch_error_ = nullptr;
    batch_next_.store(0, std::memory_order_relaxed);
    wake_.notify_all();
    // The caller pulls shards too (work_on_batch unlocks while working).
    work_on_batch(lock);
    batch_done_.wait(lock, [this] { return batch_completed_ == batch_count_; });
    batch_task_ = nullptr;
    first_error = batch_error_;
    batch_error_ = nullptr;
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

}  // namespace nrs
