// Bit-level serialization used by every NR message codec (MIB, SIB1, DCI,
// RRC).  Bits are stored MSB-first, one logical bit per entry of the
// underlying vector, which keeps the CRC/scrambling/polar interfaces simple
// and mirrors how 3GPP specs describe payloads (a_0 .. a_{A-1}).
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace nrs {

/// A sequence of bits, one per byte.  Values are 0 or 1.
using BitVector = std::vector<std::uint8_t>;

/// Appends fixed-width unsigned fields to a BitVector, MSB first.
class BitWriter {
 public:
  /// Append the `width` low bits of `value`, most-significant first.
  void write(std::uint64_t value, unsigned width);

  /// Append a single bit.
  void write_bit(bool bit) { bits_.push_back(bit ? 1 : 0); }

  /// Append raw bits verbatim.
  void write_bits(std::span<const std::uint8_t> bits);

  /// Pad with zero bits until the total length is a multiple of `align`.
  void align_to(unsigned align);

  [[nodiscard]] std::size_t size() const { return bits_.size(); }
  [[nodiscard]] const BitVector& bits() const { return bits_; }
  [[nodiscard]] BitVector take() { return std::move(bits_); }

 private:
  BitVector bits_;
};

/// Reads fixed-width unsigned fields from a BitVector, MSB first.
/// Throws std::out_of_range when reading past the end (a decode error).
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> bits) : bits_(bits) {}

  /// Read `width` bits as an unsigned value (MSB first).
  std::uint64_t read(unsigned width);

  /// Read a single bit.
  bool read_bit();

  /// Skip `count` bits.
  void skip(std::size_t count);

  [[nodiscard]] std::size_t remaining() const { return bits_.size() - pos_; }
  [[nodiscard]] std::size_t position() const { return pos_; }

 private:
  std::span<const std::uint8_t> bits_;
  std::size_t pos_ = 0;
};

/// Pack a bit vector into bytes (MSB first); the tail is zero-padded.
std::vector<std::uint8_t> pack_bits(std::span<const std::uint8_t> bits);

/// Unpack `nbits` bits from a byte buffer (MSB first).
BitVector unpack_bits(std::span<const std::uint8_t> bytes, std::size_t nbits);

}  // namespace nrs
