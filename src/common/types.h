// Fundamental scalar and vector types shared by every NR-Scope module.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

namespace nrs {

/// Complex baseband sample (32-bit float I/Q), the unit of all IQ paths.
using cf32 = std::complex<float>;

/// A buffer of IQ samples (one slot, one symbol, ... depending on context).
using IqBuffer = std::vector<cf32>;

/// Radio Network Temporary Identifier (16 bits on the air).
using Rnti = std::uint16_t;

/// Reserved RNTI values (3GPP TS 38.321 Table 7.1-1).
inline constexpr Rnti kSiRnti = 0xFFFF;   ///< System information
inline constexpr Rnti kPRnti = 0xFFFE;    ///< Paging
inline constexpr Rnti kInvalidRnti = 0x0; ///< "no RNTI"

/// Subcarriers per physical resource block (3GPP TS 38.211 4.4.4.1).
inline constexpr unsigned kSubcarriersPerPrb = 12;

/// OFDM symbols per slot with normal cyclic prefix.
inline constexpr unsigned kSymbolsPerSlot = 14;

/// Resource elements in one REG (1 PRB x 1 OFDM symbol).
inline constexpr unsigned kResPerReg = 12;

/// REGs per CCE (3GPP TS 38.211 7.3.2.2).
inline constexpr unsigned kRegsPerCce = 6;

}  // namespace nrs
