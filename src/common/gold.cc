#include "common/gold.h"

namespace nrs {
namespace {
constexpr std::size_t kNc = 1600;  // TS 38.211 5.2.1 fast-forward offset
}

GoldSequence::GoldSequence(std::uint32_t c_init)
    : x1_(1), x2_(c_init & 0x7FFFFFFFu) {
  advance(kNc);
}

std::uint8_t GoldSequence::step() {
  const std::uint8_t out =
      static_cast<std::uint8_t>((x1_ ^ x2_) & 1u);
  // x1(n+31) = (x1(n+3) + x1(n)) mod 2
  const std::uint32_t new1 = ((x1_ >> 3) ^ x1_) & 1u;
  // x2(n+31) = (x2(n+3) + x2(n+2) + x2(n+1) + x2(n)) mod 2
  const std::uint32_t new2 =
      ((x2_ >> 3) ^ (x2_ >> 2) ^ (x2_ >> 1) ^ x2_) & 1u;
  x1_ = (x1_ >> 1) | (new1 << 30);
  x2_ = (x2_ >> 1) | (new2 << 30);
  return out;
}

std::uint8_t GoldSequence::next() { return step(); }

BitVector GoldSequence::generate(std::size_t count) {
  BitVector out(count);
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = step();
  }
  return out;
}

void GoldSequence::advance(std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    (void)step();
  }
}

void scramble(BitVector& bits, std::uint32_t c_init) {
  GoldSequence gold(c_init);
  for (auto& b : bits) {
    b ^= gold.next();
  }
}

std::uint32_t pdcch_scrambling_cinit(std::uint16_t n_rnti,
                                     std::uint16_t n_id) {
  return ((static_cast<std::uint32_t>(n_rnti) << 16) + n_id) & 0x7FFFFFFFu;
}

std::uint32_t pdsch_scrambling_cinit(std::uint16_t rnti, std::uint16_t n_id) {
  return ((static_cast<std::uint32_t>(rnti) << 15) + n_id) & 0x7FFFFFFFu;
}

}  // namespace nrs
