// Jittered exponential backoff for reconnect paths.  Every client that
// redials a server (TelemetryStreamClient, FleetWorker, a standby
// coordinator tailing its primary) shares this policy so a mass failover
// — e.g. a whole fleet of workers losing their coordinator at once —
// spreads its reconnect attempts over a window instead of stampeding the
// new primary on the same deterministic schedule.
#pragma once

#include <algorithm>

#include "common/rng.h"

namespace nrs {

/// Exponential backoff schedule with multiplicative jitter.  Attempt 0
/// waits `initial_s`; each further consecutive failure multiplies the
/// base delay by `factor` up to `max_s`.  `jitter` in [0, 1] picks the
/// actual delay uniformly from [base * (1 - jitter), base] — full base is
/// the worst case, so existing timeout math stays valid.
struct BackoffPolicy {
  double initial_s = 0.05;
  double max_s = 1.0;
  double factor = 2.0;
  double jitter = 0.5;
};

/// Deterministic (un-jittered) base delay for the given consecutive
/// failure count: initial * factor^attempt, capped at max_s.
inline double backoff_base_delay(const BackoffPolicy& policy,
                                 unsigned attempt) {
  double base = policy.initial_s;
  for (unsigned i = 0; i < attempt && base < policy.max_s; ++i) {
    base *= policy.factor;
  }
  return std::min(base, policy.max_s);
}

/// The actual delay to sleep before reconnect attempt `attempt`:
/// uniformly drawn from [base * (1 - jitter), base].
inline double jittered_backoff_delay(const BackoffPolicy& policy,
                                     unsigned attempt, Rng& rng) {
  const double base = backoff_base_delay(policy, attempt);
  const double jitter = std::clamp(policy.jitter, 0.0, 1.0);
  if (jitter <= 0.0) {
    return base;
  }
  return rng.uniform(base * (1.0 - jitter), base);
}

}  // namespace nrs
