// Lock-cheap metrics for the sniffer pipeline (observability of paper
// section 5.3.2 / Fig. 12): where does each slot's budget go?  Counters and
// gauges are single relaxed atomics; histograms are fixed-bucket arrays of
// atomics, so hot-path updates never take a lock.  A MetricsRegistry hands
// out stable references by name and can be snapshotted at any time from any
// thread; the resulting MetricsSnapshot is plain data that serializes to
// JSON or CSV for external consumption.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

namespace nrs {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous level (queue depth, buffer occupancy, ...).
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket distribution.  `bounds` are ascending inclusive upper
/// bucket edges; one implicit overflow bucket catches everything above the
/// last edge.  Updates are a handful of relaxed atomic ops.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

  /// Default bucket edges for latencies in microseconds: roughly
  /// logarithmic from 1 us to 100 ms.
  static std::vector<double> latency_buckets_us();

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double min() const {
    return min_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double max() const {
    return max_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<double> bounds_;
  /// bounds_.size() + 1 buckets; the last one is the overflow bucket.
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// RAII timer: records the enclosed scope's duration (microseconds) into a
/// histogram on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& hist)
      : hist_(&hist), start_(std::chrono::steady_clock::now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { hist_->observe(elapsed_us()); }

  [[nodiscard]] double elapsed_us() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

// ---- Snapshots: plain data, safe to copy and serialize anywhere. ----

struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  std::int64_t value = 0;
};

struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 entries

  [[nodiscard]] double mean() const {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
  /// p in [0, 100]; linear interpolation inside the covering bucket.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double p50() const { return percentile(50.0); }
  [[nodiscard]] double p95() const { return percentile(95.0); }
  [[nodiscard]] double p99() const { return percentile(99.0); }
};

/// Point-in-time view of a whole registry.
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// True when each of the three vectors is sorted by name.  Registry
  /// snapshots always are (the registry is name-ordered), filter()
  /// preserves the flag (a contiguous slice of a sorted range), and the
  /// wire decoder re-derives it.  Sorted snapshots answer find_*() by
  /// binary search and filter() by one lower_bound + contiguous copy
  /// instead of scanning every metric; hand-built unsorted snapshots
  /// keep the linear fallback.
  bool sorted_by_name = false;

  [[nodiscard]] const CounterSnapshot* find_counter(
      std::string_view name) const;
  [[nodiscard]] const GaugeSnapshot* find_gauge(std::string_view name) const;
  [[nodiscard]] const HistogramSnapshot* find_histogram(
      std::string_view name) const;

  /// Convenience: counter value, or 0 when absent.
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;

  [[nodiscard]] std::string to_json() const;

  /// One row per metric: metric,kind,value,count,sum,min,max,p50,p95,p99.
  static std::string csv_header();
  [[nodiscard]] std::string to_csv() const;

  /// Sub-snapshot of the metrics whose name starts with `prefix` — e.g.
  /// filter("fleet.cell3.") is one cell's slice of a fleet registry.
  [[nodiscard]] MetricsSnapshot filter(std::string_view prefix) const;
};

class MetricsNamespace;

/// Name -> metric registry.  Registration takes a lock; returned references
/// stay valid for the registry's lifetime, so hot paths resolve their
/// metrics once and then update lock-free.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds =
                           Histogram::latency_buckets_us());

  /// A MetricsNamespace over this registry (see below): all metrics made
  /// through it get `prefix` prepended to their names.
  [[nodiscard]] MetricsNamespace with_prefix(std::string prefix);

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  mutable std::shared_mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Prefix view over a registry for per-entity metric families: metrics
/// created through the namespace share one prefix ("fleet.cell3."), so
/// call sites register "slots" instead of hand-concatenating the entity
/// name at every site.  Copyable and as cheap as the string it holds; the
/// returned metric references have the registry's lifetime as usual.
class MetricsNamespace {
 public:
  MetricsNamespace(MetricsRegistry& registry, std::string prefix)
      : registry_(&registry), prefix_(std::move(prefix)) {}

  Counter& counter(const std::string& name) {
    return registry_->counter(prefix_ + name);
  }
  Gauge& gauge(const std::string& name) {
    return registry_->gauge(prefix_ + name);
  }
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds =
                           Histogram::latency_buckets_us()) {
    return registry_->histogram(prefix_ + name, std::move(bounds));
  }

  /// One level deeper: with_prefix("fleet.").nested("cell3.") ==
  /// with_prefix("fleet.cell3.").
  [[nodiscard]] MetricsNamespace nested(const std::string& suffix) const {
    return {*registry_, prefix_ + suffix};
  }

  [[nodiscard]] const std::string& prefix() const { return prefix_; }
  [[nodiscard]] MetricsRegistry& registry() const { return *registry_; }

 private:
  MetricsRegistry* registry_;
  std::string prefix_;
};

inline MetricsNamespace MetricsRegistry::with_prefix(std::string prefix) {
  return {*this, std::move(prefix)};
}

}  // namespace nrs
