#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <mutex>
#include <sstream>

namespace nrs {
namespace {

/// fetch_add for atomic<double> via CAS (fetch_add on atomic<double> is
/// C++20 but not universally lock-free; the CAS loop is portable).
void atomic_add(std::atomic<double>& target, double delta) {
  double old = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(old, old + delta,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double value) {
  double old = target.load(std::memory_order_relaxed);
  while (value < old && !target.compare_exchange_weak(
                            old, value, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double value) {
  double old = target.load(std::memory_order_relaxed);
  while (value > old && !target.compare_exchange_weak(
                            old, value, std::memory_order_relaxed)) {
  }
}

void append_json_number(std::ostringstream& os, double v) {
  if (std::isfinite(v)) {
    os << v;
  } else {
    os << "null";
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  std::sort(bounds_.begin(), bounds_.end());
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto bucket =
      static_cast<std::size_t>(std::distance(bounds_.begin(), it));
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, value);
  atomic_min(min_, value);
  atomic_max(max_, value);
}

std::vector<double> Histogram::latency_buckets_us() {
  return {1,    2,    5,    10,   20,    50,    100,   200,  500,
          1000, 2000, 5000, 10000, 20000, 50000, 100000};
}

double HistogramSnapshot::percentile(double p) const {
  if (count == 0) {
    return 0.0;
  }
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                      static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::uint64_t in_bucket = counts[i];
    if (in_bucket == 0) {
      continue;
    }
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      double lo = i == 0 ? std::min(min, bounds.empty() ? min : bounds[0])
                         : bounds[i - 1];
      double hi = i < bounds.size() ? bounds[i] : max;
      lo = std::max(lo, min);
      hi = std::min(std::max(hi, lo), max);
      const double frac =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    cumulative += in_bucket;
  }
  return max;
}

namespace {

/// Exact-name lookup: binary search on sorted snapshots, linear fallback
/// on hand-built ones.
template <typename T>
const T* find_by_name(const std::vector<T>& items, std::string_view name,
                      bool sorted) {
  if (sorted) {
    const auto it = std::lower_bound(
        items.begin(), items.end(), name,
        [](const T& item, std::string_view n) { return item.name < n; });
    return (it != items.end() && it->name == name) ? &*it : nullptr;
  }
  for (const auto& item : items) {
    if (item.name == name) {
      return &item;
    }
  }
  return nullptr;
}

/// Prefix slice: every name starting with `prefix` is contiguous in a
/// sorted vector, so one lower_bound finds the run's start.
template <typename T>
void filter_by_prefix(const std::vector<T>& items, std::string_view prefix,
                      bool sorted, std::vector<T>& out) {
  if (sorted) {
    auto it = std::lower_bound(
        items.begin(), items.end(), prefix,
        [](const T& item, std::string_view p) { return item.name < p; });
    for (; it != items.end() && it->name.starts_with(prefix); ++it) {
      out.push_back(*it);
    }
    return;
  }
  for (const auto& item : items) {
    if (item.name.starts_with(prefix)) {
      out.push_back(item);
    }
  }
}

}  // namespace

const CounterSnapshot* MetricsSnapshot::find_counter(
    std::string_view name) const {
  return find_by_name(counters, name, sorted_by_name);
}

const GaugeSnapshot* MetricsSnapshot::find_gauge(std::string_view name) const {
  return find_by_name(gauges, name, sorted_by_name);
}

const HistogramSnapshot* MetricsSnapshot::find_histogram(
    std::string_view name) const {
  return find_by_name(histograms, name, sorted_by_name);
}

std::uint64_t MetricsSnapshot::counter_value(std::string_view name) const {
  const auto* c = find_counter(name);
  return c != nullptr ? c->value : 0;
}

MetricsSnapshot MetricsSnapshot::filter(std::string_view prefix) const {
  MetricsSnapshot out;
  out.sorted_by_name = sorted_by_name;
  filter_by_prefix(counters, prefix, sorted_by_name, out.counters);
  filter_by_prefix(gauges, prefix, sorted_by_name, out.gauges);
  filter_by_prefix(histograms, prefix, sorted_by_name, out.histograms);
  return out;
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    os << (i ? "," : "") << '"' << counters[i].name << "\":"
       << counters[i].value;
  }
  os << "},\"gauges\":{";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    os << (i ? "," : "") << '"' << gauges[i].name << "\":"
       << gauges[i].value;
  }
  os << "},\"histograms\":{";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const auto& h = histograms[i];
    os << (i ? "," : "") << '"' << h.name << "\":{\"count\":" << h.count
       << ",\"sum\":";
    append_json_number(os, h.sum);
    os << ",\"min\":";
    append_json_number(os, h.count ? h.min : 0.0);
    os << ",\"max\":";
    append_json_number(os, h.count ? h.max : 0.0);
    os << ",\"p50\":";
    append_json_number(os, h.p50());
    os << ",\"p95\":";
    append_json_number(os, h.p95());
    os << ",\"p99\":";
    append_json_number(os, h.p99());
    os << ",\"buckets\":[";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      os << (b ? "," : "") << '['
         << (b < h.bounds.size() ? h.bounds[b]
                                 : std::numeric_limits<double>::max())
         << ',' << h.counts[b] << ']';
    }
    os << "]}";
  }
  os << "}}";
  return os.str();
}

std::string MetricsSnapshot::csv_header() {
  return "metric,kind,value,count,sum,min,max,p50,p95,p99";
}

std::string MetricsSnapshot::to_csv() const {
  std::ostringstream os;
  for (const auto& c : counters) {
    os << c.name << ",counter," << c.value << ",,,,,,,\n";
  }
  for (const auto& g : gauges) {
    os << g.name << ",gauge," << g.value << ",,,,,,,\n";
  }
  for (const auto& h : histograms) {
    os << h.name << ",histogram,," << h.count << ',' << h.sum << ','
       << (h.count ? h.min : 0.0) << ',' << (h.count ? h.max : 0.0) << ','
       << h.p50() << ',' << h.p95() << ',' << h.p99() << '\n';
  }
  return os.str();
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::unique_lock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::unique_lock lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::unique_lock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::shared_lock lock(mutex_);
  MetricsSnapshot snap;
  snap.sorted_by_name = true;  // std::map iteration is name-ordered
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.bounds = h->bounds();
    hs.counts.resize(hs.bounds.size() + 1);
    for (std::size_t i = 0; i < hs.counts.size(); ++i) {
      hs.counts[i] = h->bucket_count(i);
    }
    hs.count = h->count();
    hs.sum = h->sum();
    hs.min = h->min();
    hs.max = h->max();
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

}  // namespace nrs
