#include "common/bit_io.h"

namespace nrs {

void BitWriter::write(std::uint64_t value, unsigned width) {
  if (width > 64) {
    throw std::invalid_argument("BitWriter::write width > 64");
  }
  for (unsigned i = 0; i < width; ++i) {
    bits_.push_back(static_cast<std::uint8_t>((value >> (width - 1 - i)) & 1));
  }
}

void BitWriter::write_bits(std::span<const std::uint8_t> bits) {
  bits_.insert(bits_.end(), bits.begin(), bits.end());
}

void BitWriter::align_to(unsigned align) {
  if (align == 0) {
    return;
  }
  while (bits_.size() % align != 0) {
    bits_.push_back(0);
  }
}

std::uint64_t BitReader::read(unsigned width) {
  if (width > 64) {
    throw std::invalid_argument("BitReader::read width > 64");
  }
  if (pos_ + width > bits_.size()) {
    throw std::out_of_range("BitReader: read past end");
  }
  std::uint64_t value = 0;
  for (unsigned i = 0; i < width; ++i) {
    value = (value << 1) | (bits_[pos_++] & 1);
  }
  return value;
}

bool BitReader::read_bit() { return read(1) != 0; }

void BitReader::skip(std::size_t count) {
  if (pos_ + count > bits_.size()) {
    throw std::out_of_range("BitReader: skip past end");
  }
  pos_ += count;
}

std::vector<std::uint8_t> pack_bits(std::span<const std::uint8_t> bits) {
  std::vector<std::uint8_t> bytes((bits.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] & 1) {
      bytes[i / 8] |= static_cast<std::uint8_t>(0x80u >> (i % 8));
    }
  }
  return bytes;
}

BitVector unpack_bits(std::span<const std::uint8_t> bytes, std::size_t nbits) {
  if (nbits > bytes.size() * 8) {
    throw std::out_of_range("unpack_bits: not enough bytes");
  }
  BitVector bits(nbits);
  for (std::size_t i = 0; i < nbits; ++i) {
    bits[i] = (bytes[i / 8] >> (7 - i % 8)) & 1;
  }
  return bits;
}

}  // namespace nrs
