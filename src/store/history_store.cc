#include "store/history_store.h"

#include <algorithm>
#include <bit>
#include <mutex>
#include <stdexcept>

namespace nrs {

const char* to_string(StoreMetric metric) {
  switch (metric) {
    case StoreMetric::kDlBits: return "dl_bits";
    case StoreMetric::kUlBits: return "ul_bits";
    case StoreMetric::kMcs: return "mcs";
    case StoreMetric::kRetx: return "retx";
    case StoreMetric::kPrbs: return "prbs";
    case StoreMetric::kCellDcis: return "cell_dcis";
    case StoreMetric::kCellUsedPrbs: return "cell_used_prbs";
    case StoreMetric::kCellSparePrbs: return "cell_spare_prbs";
  }
  return "unknown";
}

bool store_metric_valid(std::uint8_t raw) {
  return raw < kStoreMetricCount;
}

std::optional<StoreMetric> store_metric_from_string(std::string_view name) {
  for (std::uint8_t raw = 0; raw < kStoreMetricCount; ++raw) {
    const auto metric = static_cast<StoreMetric>(raw);
    if (name == to_string(metric)) {
      return metric;
    }
  }
  return std::nullopt;
}

std::optional<std::string> HistoryStoreConfig::validate() const {
  if (rows_per_segment == 0) {
    return "rows_per_segment must be > 0";
  }
  if (segments_per_series < 2) {
    return "segments_per_series must be >= 2 (the ring needs a spare "
           "segment to recycle into)";
  }
  if (max_series == 0) {
    return "max_series must be > 0";
  }
  return std::nullopt;
}

// ---- StoreSeries -----------------------------------------------------

StoreSeries::StoreSeries(const SeriesKey& key,
                         const HistoryStoreConfig& config,
                         Counter* rows_evicted, Counter* segment_evictions)
    : key_(key), rows_per_segment_(config.rows_per_segment),
      n_segments_(config.segments_per_series),
      segments_(std::make_unique<SegmentState[]>(n_segments_)),
      slots_(std::make_unique<std::atomic<std::uint64_t>[]>(
          n_segments_ * rows_per_segment_)),
      values_(std::make_unique<std::atomic<std::uint64_t>[]>(
          n_segments_ * rows_per_segment_)),
      rows_evicted_(rows_evicted), segment_evictions_(segment_evictions) {}

void StoreSeries::append(std::uint64_t slot, double value) {
  SegmentState* st = &segments_[head_];
  std::uint32_t n = st->count.load(std::memory_order_relaxed);
  if (n == rows_per_segment_) {
    // Rotate: recycle the oldest segment in place.  The odd generation
    // makes concurrent readers discard anything they copied from it.
    head_ = (head_ + 1) % n_segments_;
    st = &segments_[head_];
    const std::uint32_t old = st->count.load(std::memory_order_relaxed);
    st->generation.fetch_add(1, std::memory_order_release);  // odd
    st->count.store(0, std::memory_order_release);
    st->generation.fetch_add(1, std::memory_order_release);  // even epoch
    if (old > 0) {
      rows_evicted_->inc(old);
      segment_evictions_->inc();
    }
    n = 0;
  }
  const std::size_t at = head_ * rows_per_segment_ + n;
  slots_[at].store(slot, std::memory_order_relaxed);
  values_[at].store(std::bit_cast<std::uint64_t>(value),
                    std::memory_order_relaxed);
  // Publish: a reader that acquires the new count sees both row stores.
  st->count.store(n + 1, std::memory_order_release);
  rows_appended_.fetch_add(1, std::memory_order_relaxed);
}

template <typename RowFn>
bool StoreSeries::scan_segment(std::size_t seg, std::uint64_t from,
                               std::uint64_t to, RowFn&& fn) const {
  const SegmentState& st = segments_[seg];
  const std::uint64_t g1 = st.generation.load(std::memory_order_acquire);
  if ((g1 & 1) != 0) {
    return true;  // mid-recycle: the segment's rows are evicted
  }
  const std::uint32_t n = st.count.load(std::memory_order_acquire);
  const std::size_t base = seg * rows_per_segment_;
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint64_t slot = slots_[base + i].load(std::memory_order_relaxed);
    if (slot >= from && slot < to) {
      fn(slot, std::bit_cast<double>(
                   values_[base + i].load(std::memory_order_relaxed)));
    }
  }
  // Seqlock re-check: a changed generation means the ring recycled this
  // segment underneath us, so whatever fn() saw must be discarded.
  std::atomic_thread_fence(std::memory_order_acquire);
  return st.generation.load(std::memory_order_relaxed) == g1;
}

std::size_t StoreSeries::read_range(std::uint64_t from, std::uint64_t to,
                                    std::vector<StoreRow>& out) const {
  const std::size_t start = out.size();
  for (std::size_t seg = 0; seg < n_segments_; ++seg) {
    const std::size_t seg_start = out.size();
    const bool stable = scan_segment(
        seg, from, to,
        [&](std::uint64_t slot, double value) {
          out.push_back(StoreRow{slot, value});
        });
    if (!stable) {
      out.resize(seg_start);  // recycled mid-read: those rows are gone
    }
  }
  // Segments are visited in ring-array order, not age order; one sort
  // restores global slot order (each segment is internally sorted).
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(start), out.end(),
            [](const StoreRow& a, const StoreRow& b) {
              return a.slot < b.slot;
            });
  return out.size() - start;
}

StoreSeries::Fold StoreSeries::fold_range(std::uint64_t from,
                                          std::uint64_t to) const {
  Fold total;
  bool any = false;
  for (std::size_t seg = 0; seg < n_segments_; ++seg) {
    Fold part;
    bool part_any = false;
    const bool stable = scan_segment(
        seg, from, to,
        [&](std::uint64_t slot, double value) {
          ++part.count;
          part.sum += value;
          if (!part_any || value > part.max) {
            part.max = value;
          }
          if (!part_any || slot < part.first_slot) {
            part.first_slot = slot;
          }
          if (!part_any || slot > part.last_slot) {
            part.last_slot = slot;
          }
          part_any = true;
        });
    if (!stable || !part_any) {
      continue;
    }
    total.count += part.count;
    total.sum += part.sum;
    if (!any || part.max > total.max) {
      total.max = part.max;
    }
    if (!any || part.first_slot < total.first_slot) {
      total.first_slot = part.first_slot;
    }
    if (!any || part.last_slot > total.last_slot) {
      total.last_slot = part.last_slot;
    }
    any = true;
  }
  return total;
}

std::size_t StoreSeries::row_count() const {
  std::size_t total = 0;
  for (std::size_t seg = 0; seg < n_segments_; ++seg) {
    const SegmentState& st = segments_[seg];
    if ((st.generation.load(std::memory_order_acquire) & 1) != 0) {
      continue;
    }
    total += st.count.load(std::memory_order_acquire);
  }
  return total;
}

// ---- HistoryStore ----------------------------------------------------

HistoryStore::HistoryStore(HistoryStoreConfig config,
                           MetricsRegistry* registry)
    : config_(config) {
  if (const auto error = config_.validate()) {
    throw std::invalid_argument("HistoryStore: " + *error);
  }
  if (registry == nullptr) {
    own_registry_ = std::make_unique<MetricsRegistry>();
    registry = own_registry_.get();
  }
  m_rows_ingested_ = &registry->counter("store.rows_ingested");
  m_rows_evicted_ = &registry->counter("store.rows_evicted");
  m_segment_evictions_ = &registry->counter("store.segment_evictions");
  m_series_rejected_ = &registry->counter("store.series_rejected");
  m_series_ = &registry->gauge("store.series");
  m_segments_ = &registry->gauge("store.segments");
}

StoreSeries* HistoryStore::series(const SeriesKey& key) {
  const std::uint64_t packed = key.packed();
  {
    std::shared_lock lock(mutex_);
    const auto it = series_.find(packed);
    if (it != series_.end()) {
      return it->second.get();
    }
  }
  std::unique_lock lock(mutex_);
  auto& slot = series_[packed];
  if (!slot) {
    if (series_.size() > config_.max_series) {
      series_.erase(packed);
      m_series_rejected_->inc();
      return nullptr;
    }
    slot = std::make_unique<StoreSeries>(key, config_, m_rows_evicted_,
                                         m_segment_evictions_);
    m_series_->set(static_cast<std::int64_t>(series_.size()));
    m_segments_->set(static_cast<std::int64_t>(series_.size() *
                                               config_.segments_per_series));
  }
  return slot.get();
}

const StoreSeries* HistoryStore::find_series(const SeriesKey& key) const {
  std::shared_lock lock(mutex_);
  const auto it = series_.find(key.packed());
  return it != series_.end() ? it->second.get() : nullptr;
}

std::vector<SeriesKey> HistoryStore::keys() const {
  std::shared_lock lock(mutex_);
  std::vector<SeriesKey> out;
  out.reserve(series_.size());
  for (const auto& [packed, s] : series_) {
    out.push_back(s->key());
  }
  return out;
}

void HistoryStore::for_each_series(
    std::uint32_t cell, StoreMetric metric,
    const std::function<void(const StoreSeries&)>& fn) const {
  std::shared_lock lock(mutex_);
  for (const auto& [packed, s] : series_) {
    const SeriesKey& key = s->key();
    if (key.metric != metric) {
      continue;
    }
    if (cell != kStoreAnyCell && key.cell != cell) {
      continue;
    }
    fn(*s);
  }
}

std::size_t HistoryStore::series_count() const {
  std::shared_lock lock(mutex_);
  return series_.size();
}

}  // namespace nrs
