// Query execution against a HistoryStore: the server side of the wire
// protocol's kQuery/kQueryResult frames.  run_query() is a pure function
// of (store, request) — range scans copy rows out of the seqlock segments,
// aggregates downsample them into fixed-width slot buckets, and top-K
// ranks matching series by mean value (metric = cell_spare_prbs over all
// cells is the paper's spare-capacity ranking lifted to the fleet).
// history_query_handler() packages it as the std::function the
// TelemetryStreamServer's query thread pool invokes, keeping nrs_net free
// of any dependency on the store.
#pragma once

#include <functional>

#include "net/wire.h"
#include "store/history_store.h"

namespace nrs {

/// Execute one query.  Never throws; malformed requests come back with
/// status kBadRequest and a human-readable error.
[[nodiscard]] QueryResponse run_query(const HistoryStore& store,
                                      const QueryRequest& request);

/// Bind a store into the server's query-handler slot
/// (StreamServerConfig::query_handler).  The store must outlive the
/// server.
[[nodiscard]] std::function<QueryResponse(const QueryRequest&)>
history_query_handler(const HistoryStore& store);

}  // namespace nrs
