// Embedded telemetry history store: the serving substrate behind the wire
// query API (ROADMAP "telemetry history store + query serving layer").
// Decoded telemetry lands as (slot, value) rows in append-only columnar
// segments keyed by (cell, RNTI, metric); retention is a fixed ring of
// segments per series, recycled in place at segment granularity — eviction
// never allocates, never blocks the writer, and never stops ingest.
//
// Concurrency model (the reason queries never block the fan-out path):
//  - exactly ONE writer per series (the owning cell's pipeline collector
//    thread, via HistoryStoreSink).  Appends are lock-free: a relaxed slot
//    and value store followed by a release publish of the row count.
//  - any number of readers.  Each segment is a seqlock: a per-segment
//    generation counter is bumped to odd before the ring recycles it and
//    back to even after, so a reader that raced a recycle sees a changed
//    (or odd) generation, discards its copy, and treats the segment as
//    evicted — which is semantically what just happened to it.
//  - rows are std::atomic<std::uint64_t> (values bit_cast from double), so
//    the race between a recycling writer and a copying reader is data-race
//    free by construction; torn values are impossible and stale ones are
//    rejected by the generation check.
// The store-level series map takes a shared_mutex, exclusively only when a
// series is created — steady-state ingest and queries both read-lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/metrics.h"
#include "common/types.h"

namespace nrs {

/// What a row of a series measures.  Per-UE metrics are keyed by the UE's
/// C-RNTI; cell-level metrics use kStoreCellRnti so a wildcard top-K over
/// UEs can never double-count the cell rollup (and vice versa).
enum class StoreMetric : std::uint8_t {
  kDlBits = 0,     ///< new-data PDSCH TBS (retransmissions excluded)
  kUlBits = 1,     ///< PUSCH TBS
  kMcs = 2,        ///< MCS index of each decoded DCI
  kRetx = 3,       ///< 1 when the DCI was a retransmission, else 0
  kPrbs = 4,       ///< PRBs granted by each decoded DCI
  kCellDcis = 5,      ///< DCIs decoded in the slot (cell-level)
  kCellUsedPrbs = 6,  ///< PRBs granted to anyone in the slot (cell-level)
  kCellSparePrbs = 7, ///< PRBs left over in the slot (spare capacity)
};

inline constexpr std::uint8_t kStoreMetricCount = 8;
/// Pseudo-RNTI under which the cell-level series are filed.
inline constexpr Rnti kStoreCellRnti = 0xFFFD;
/// Wildcard cell index for cross-cell queries (top-K over the fleet).
inline constexpr std::uint32_t kStoreAnyCell = 0xFFFFFFFFu;

const char* to_string(StoreMetric metric);
[[nodiscard]] bool store_metric_valid(std::uint8_t raw);
/// Inverse of to_string (CLI parsing); nullopt on an unknown name.
[[nodiscard]] std::optional<StoreMetric> store_metric_from_string(
    std::string_view name);

/// Series identity: one cell's one RNTI's one metric.
struct SeriesKey {
  std::uint32_t cell = 0;
  Rnti rnti = kInvalidRnti;
  StoreMetric metric = StoreMetric::kDlBits;

  [[nodiscard]] bool operator==(const SeriesKey&) const = default;
  /// Dense total order for the series map (cell, rnti, metric).
  [[nodiscard]] std::uint64_t packed() const {
    return (static_cast<std::uint64_t>(cell) << 24) |
           (static_cast<std::uint64_t>(rnti) << 8) |
           static_cast<std::uint64_t>(metric);
  }
};

/// One (slot, value) observation.
struct StoreRow {
  std::uint64_t slot = 0;
  double value = 0.0;
  [[nodiscard]] bool operator==(const StoreRow&) const = default;
};

struct HistoryStoreConfig {
  /// Rows per columnar segment (the eviction granule).
  std::size_t rows_per_segment = 1024;
  /// Segments in each series' retention ring; a series retains between
  /// (segments-1) and segments full segments of rows.
  std::size_t segments_per_series = 8;
  /// Hard cap on distinct series (bounded memory under RNTI churn).
  std::size_t max_series = 8192;

  /// First violated constraint, or nullopt when usable.
  [[nodiscard]] std::optional<std::string> validate() const;
};

/// One series' segment ring.  Writer methods (append) must only be called
/// from the single owning writer thread; reader methods are safe from any
/// thread at any time.
class StoreSeries {
 public:
  StoreSeries(const SeriesKey& key, const HistoryStoreConfig& config,
              Counter* rows_evicted, Counter* segment_evictions);

  StoreSeries(const StoreSeries&) = delete;
  StoreSeries& operator=(const StoreSeries&) = delete;

  [[nodiscard]] const SeriesKey& key() const { return key_; }

  /// Append one row.  Slots must be non-decreasing (the pipeline delivers
  /// in slot order); lock-free and allocation-free.
  void append(std::uint64_t slot, double value);

  /// Copy every retained row with slot in [from, to) into `out`, oldest
  /// first.  Returns the number of rows appended to `out`.  Rows recycled
  /// mid-read are omitted (they were evicted).
  std::size_t read_range(std::uint64_t from, std::uint64_t to,
                         std::vector<StoreRow>& out) const;

  /// Fold every retained row with slot in [from, to): count, sum, max.
  struct Fold {
    std::uint64_t count = 0;
    double sum = 0.0;
    double max = 0.0;
    std::uint64_t first_slot = 0;
    std::uint64_t last_slot = 0;
  };
  [[nodiscard]] Fold fold_range(std::uint64_t from, std::uint64_t to) const;

  /// Rows currently retained (approximate under concurrent recycling).
  [[nodiscard]] std::size_t row_count() const;
  [[nodiscard]] std::uint64_t rows_appended() const {
    return rows_appended_.load(std::memory_order_relaxed);
  }

 private:
  /// Seqlock header of one segment in the ring.
  struct SegmentState {
    /// Even = stable, odd = being recycled; changes only on recycle.
    std::atomic<std::uint64_t> generation{0};
    /// Published row count (release on append, acquire on read).
    std::atomic<std::uint32_t> count{0};
  };

  /// Visit each stable row in [from, to): returns false if the segment
  /// was recycled mid-read (caller must discard side effects).
  template <typename RowFn>
  bool scan_segment(std::size_t seg, std::uint64_t from, std::uint64_t to,
                    RowFn&& fn) const;

  SeriesKey key_;
  std::size_t rows_per_segment_;
  std::size_t n_segments_;
  std::unique_ptr<SegmentState[]> segments_;
  /// Columnar row storage, n_segments_ * rows_per_segment_ atomics each;
  /// values are doubles bit_cast to u64.
  std::unique_ptr<std::atomic<std::uint64_t>[]> slots_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> values_;
  /// Writer-thread state: the segment being filled.
  std::size_t head_ = 0;
  std::atomic<std::uint64_t> rows_appended_{0};
  Counter* rows_evicted_;
  Counter* segment_evictions_;
};

/// The store: a concurrent map of series plus the store.* metrics.
class HistoryStore {
 public:
  /// `registry` (optional) receives store.rows_ingested,
  /// store.rows_evicted, store.segment_evictions, store.series,
  /// store.segments and store.series_rejected.
  explicit HistoryStore(HistoryStoreConfig config = {},
                        MetricsRegistry* registry = nullptr);

  HistoryStore(const HistoryStore&) = delete;
  HistoryStore& operator=(const HistoryStore&) = delete;

  [[nodiscard]] const HistoryStoreConfig& config() const { return config_; }

  /// Get-or-create the series for `key`.  The returned pointer is stable
  /// for the store's lifetime.  Returns nullptr when the series does not
  /// exist yet and creating it would exceed max_series (counted in
  /// store.series_rejected).  Writers call this once per series and cache
  /// the pointer; creation takes the exclusive lock, lookup is shared.
  StoreSeries* series(const SeriesKey& key);

  /// Lookup only; nullptr when absent.  Safe from any thread.
  [[nodiscard]] const StoreSeries* find_series(const SeriesKey& key) const;

  /// Record one ingested row in store.rows_ingested (writers call this
  /// alongside StoreSeries::append; kept separate so the series stays
  /// registry-agnostic).
  void note_rows_ingested(std::uint64_t n) { m_rows_ingested_->inc(n); }

  /// Snapshot of every live series key (sorted by packed key).
  [[nodiscard]] std::vector<SeriesKey> keys() const;

  /// Visit every series whose key matches (cell or kStoreAnyCell, metric).
  void for_each_series(
      std::uint32_t cell, StoreMetric metric,
      const std::function<void(const StoreSeries&)>& fn) const;

  [[nodiscard]] std::size_t series_count() const;

 private:
  HistoryStoreConfig config_;
  std::unique_ptr<MetricsRegistry> own_registry_;
  mutable std::shared_mutex mutex_;
  std::map<std::uint64_t, std::unique_ptr<StoreSeries>> series_;

  Counter* m_rows_ingested_ = nullptr;
  Counter* m_rows_evicted_ = nullptr;
  Counter* m_segment_evictions_ = nullptr;
  Counter* m_series_rejected_ = nullptr;
  Gauge* m_series_ = nullptr;
  Gauge* m_segments_ = nullptr;
};

}  // namespace nrs
