// Allocation-free ingest path from the sniffer pipeline into the history
// store: a SlotSink that translates each delivered SlotResult into store
// rows on the collector thread.  Per-UE series pointers are cached after
// first resolution, so the steady state performs zero heap allocations per
// slot (series creation — a map insert plus the ring preallocation — is
// warm-up, exactly like the pipeline's pool growth; verified by the
// store-attached case in test_alloc_steady_state).
#pragma once

#include <cstdint>
#include <vector>

#include "nrscope/slot_sink.h"
#include "store/history_store.h"

namespace nrs {

struct StoreSinkConfig {
  std::uint32_t cell_index = 0;
  /// Carrier bandwidth; the per-slot spare-capacity row is
  /// max(0, n_prb - granted downlink PRBs) — the PRB-granularity
  /// approximation of the paper's section 5.4.1 RE accounting.
  unsigned n_prb = 51;
  /// Write the three cell-level series (kCellDcis / kCellUsedPrbs /
  /// kCellSparePrbs) only while the engine is tracking, so a resyncing
  /// cell does not record its blindness as spare capacity.
  bool cell_rows_only_when_tracking = true;
  /// UE-slot cache entries reserved up front (grows on demand; growth is
  /// warm-up, not steady state).
  std::size_t reserve_ues = 64;
};

class HistoryStoreSink : public SlotSink {
 public:
  /// `store` must outlive the sink.
  HistoryStoreSink(HistoryStore& store, const StoreSinkConfig& config);

  void on_slot(const SlotResult& result) override;

  [[nodiscard]] std::uint64_t rows_written() const { return rows_written_; }

 private:
  /// Cached per-UE series pointers, one entry per RNTI seen.  Linear scan:
  /// a cell tracks at most a few dozen UEs, and the hit path allocates
  /// nothing.
  struct UeSeries {
    Rnti rnti = kInvalidRnti;
    StoreSeries* dl_bits = nullptr;
    StoreSeries* ul_bits = nullptr;
    StoreSeries* mcs = nullptr;
    StoreSeries* retx = nullptr;
    StoreSeries* prbs = nullptr;
  };

  UeSeries* ue_series(Rnti rnti);

  HistoryStore* store_;
  StoreSinkConfig config_;
  std::vector<UeSeries> ues_;
  StoreSeries* cell_dcis_ = nullptr;
  StoreSeries* cell_used_ = nullptr;
  StoreSeries* cell_spare_ = nullptr;
  std::uint64_t rows_written_ = 0;
};

}  // namespace nrs
