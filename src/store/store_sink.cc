#include "store/store_sink.h"

#include <algorithm>

#include "nr/dci.h"

namespace nrs {

HistoryStoreSink::HistoryStoreSink(HistoryStore& store,
                                   const StoreSinkConfig& config)
    : store_(&store), config_(config) {
  ues_.reserve(config_.reserve_ues);
  cell_dcis_ = store_->series(
      {config_.cell_index, kStoreCellRnti, StoreMetric::kCellDcis});
  cell_used_ = store_->series(
      {config_.cell_index, kStoreCellRnti, StoreMetric::kCellUsedPrbs});
  cell_spare_ = store_->series(
      {config_.cell_index, kStoreCellRnti, StoreMetric::kCellSparePrbs});
}

HistoryStoreSink::UeSeries* HistoryStoreSink::ue_series(Rnti rnti) {
  for (UeSeries& ue : ues_) {
    if (ue.rnti == rnti) {
      return &ue;  // steady state: cache hit, no allocation
    }
  }
  // First DCI from this RNTI: resolve (and possibly create) its series.
  // This is warm-up work — a map lookup/insert under the store lock plus
  // the ring preallocation — and never recurs for the same RNTI.
  UeSeries ue;
  ue.rnti = rnti;
  const std::uint32_t cell = config_.cell_index;
  ue.dl_bits = store_->series({cell, rnti, StoreMetric::kDlBits});
  ue.ul_bits = store_->series({cell, rnti, StoreMetric::kUlBits});
  ue.mcs = store_->series({cell, rnti, StoreMetric::kMcs});
  ue.retx = store_->series({cell, rnti, StoreMetric::kRetx});
  ue.prbs = store_->series({cell, rnti, StoreMetric::kPrbs});
  if (ue.dl_bits == nullptr || ue.ul_bits == nullptr || ue.mcs == nullptr ||
      ue.retx == nullptr || ue.prbs == nullptr) {
    return nullptr;  // store at max_series: shed this UE, keep ingesting
  }
  ues_.push_back(ue);
  return &ues_.back();
}

void HistoryStoreSink::on_slot(const SlotResult& result) {
  std::uint64_t rows = 0;
  unsigned used_prbs = 0;
  for (const DecodedDci& dci : result.dcis) {
    UeSeries* ue = ue_series(dci.rnti);
    if (ue == nullptr) {
      continue;
    }
    const bool dl = is_downlink(dci.grant.format);
    if (dl) {
      used_prbs += dci.grant.prb_len;
      if (!dci.is_retx) {
        ue->dl_bits->append(result.slot,
                            static_cast<double>(dci.grant.tbs));
        ++rows;
      }
    } else if (!dci.is_retx) {
      ue->ul_bits->append(result.slot, static_cast<double>(dci.grant.tbs));
      ++rows;
    }
    ue->mcs->append(result.slot, static_cast<double>(dci.grant.mcs));
    ue->retx->append(result.slot, dci.is_retx ? 1.0 : 0.0);
    ue->prbs->append(result.slot, static_cast<double>(dci.grant.prb_len));
    rows += 3;
  }
  const bool cell_rows = !config_.cell_rows_only_when_tracking ||
                         result.sync_state == SyncState::kTracking;
  if (cell_rows) {
    const double spare = static_cast<double>(
        config_.n_prb > used_prbs ? config_.n_prb - used_prbs : 0);
    cell_dcis_->append(result.slot,
                       static_cast<double>(result.dcis.size()));
    cell_used_->append(result.slot, static_cast<double>(
                                        std::min(used_prbs, config_.n_prb)));
    cell_spare_->append(result.slot, spare);
    rows += 3;
  }
  rows_written_ += rows;
  store_->note_rows_ingested(rows);
}

}  // namespace nrs
