#include "store/query.h"

#include <algorithm>
#include <vector>

namespace nrs {

namespace {

QueryResponse bad_request(const QueryRequest& request, std::string why) {
  QueryResponse response;
  response.correlation_id = request.correlation_id;
  response.kind = request.kind;
  response.status = QueryStatus::kBadRequest;
  response.error = std::move(why);
  return response;
}

QueryResponse run_range(const HistoryStore& store,
                        const QueryRequest& request,
                        QueryResponse response) {
  const SeriesKey key{request.cell, request.rnti,
                      static_cast<StoreMetric>(request.metric)};
  const StoreSeries* series = store.find_series(key);
  if (series == nullptr) {
    response.status = QueryStatus::kNotFound;
    response.error = "no such series";
    return response;
  }
  std::vector<StoreRow> rows;
  series->read_range(request.slot_from, request.slot_to, rows);
  response.rows.reserve(rows.size());
  for (const StoreRow& row : rows) {
    response.rows.push_back(QueryRowWire{row.slot, row.value});
  }
  return response;
}

QueryResponse run_aggregate(const HistoryStore& store,
                            const QueryRequest& request,
                            QueryResponse response) {
  const SeriesKey key{request.cell, request.rnti,
                      static_cast<StoreMetric>(request.metric)};
  const StoreSeries* series = store.find_series(key);
  if (series == nullptr) {
    response.status = QueryStatus::kNotFound;
    response.error = "no such series";
    return response;
  }
  std::vector<StoreRow> rows;
  series->read_range(request.slot_from, request.slot_to, rows);
  // Rows arrive slot-sorted, so buckets come out in order and only
  // non-empty ones are emitted (the response is sparse by construction).
  for (const StoreRow& row : rows) {
    const std::uint64_t start =
        request.slot_from +
        (row.slot - request.slot_from) / request.bucket_slots *
            request.bucket_slots;
    if (response.buckets.empty() ||
        response.buckets.back().slot_start != start) {
      QueryBucket bucket;
      bucket.slot_start = start;
      response.buckets.push_back(bucket);
    }
    QueryBucket& bucket = response.buckets.back();
    bucket.sum += row.value;
    if (bucket.count == 0 || row.value > bucket.max) {
      bucket.max = row.value;
    }
    ++bucket.count;
  }
  for (QueryBucket& bucket : response.buckets) {
    bucket.avg = bucket.sum / static_cast<double>(bucket.count);
  }
  return response;
}

QueryResponse run_top_k(const HistoryStore& store,
                        const QueryRequest& request,
                        QueryResponse response) {
  store.for_each_series(
      request.cell, static_cast<StoreMetric>(request.metric),
      [&](const StoreSeries& series) {
        const StoreSeries::Fold fold =
            series.fold_range(request.slot_from, request.slot_to);
        if (fold.count == 0) {
          return;
        }
        TopKEntry entry;
        entry.cell = series.key().cell;
        entry.rnti = series.key().rnti;
        entry.score = fold.sum / static_cast<double>(fold.count);
        entry.rows = fold.count;
        response.ranking.push_back(entry);
      });
  std::sort(response.ranking.begin(), response.ranking.end(),
            [](const TopKEntry& a, const TopKEntry& b) {
              if (a.score != b.score) {
                return a.score > b.score;
              }
              return a.cell != b.cell ? a.cell < b.cell : a.rnti < b.rnti;
            });
  if (response.ranking.size() > request.k) {
    response.ranking.resize(request.k);
  }
  return response;
}

}  // namespace

QueryResponse run_query(const HistoryStore& store,
                        const QueryRequest& request) {
  if (!store_metric_valid(request.metric)) {
    return bad_request(request, "unknown metric");
  }
  if (request.slot_from >= request.slot_to) {
    return bad_request(request, "empty slot range");
  }
  if (request.kind == QueryKind::kAggregate && request.bucket_slots == 0) {
    return bad_request(request, "bucket_slots must be > 0");
  }
  if (request.kind == QueryKind::kTopK && request.k == 0) {
    return bad_request(request, "k must be > 0");
  }
  QueryResponse response;
  response.correlation_id = request.correlation_id;
  response.kind = request.kind;
  switch (request.kind) {
    case QueryKind::kRange:
      return run_range(store, request, std::move(response));
    case QueryKind::kAggregate:
      return run_aggregate(store, request, std::move(response));
    case QueryKind::kTopK:
      return run_top_k(store, request, std::move(response));
  }
  return bad_request(request, "unknown query kind");
}

std::function<QueryResponse(const QueryRequest&)> history_query_handler(
    const HistoryStore& store) {
  return [&store](const QueryRequest& request) {
    return run_query(store, request);
  };
}

}  // namespace nrs
