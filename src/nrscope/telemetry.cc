#include "nrscope/telemetry.h"

#include <algorithm>

namespace nrs {

void RateWindow::add(std::uint64_t slot, std::uint64_t bits) {
  // Evict relative to the newest sample so the const queries never have to
  // mutate; the deque is bounded by the window regardless of query pattern.
  const std::uint64_t begin =
      slot >= window_slots_ ? slot - window_slots_ : 0;
  while (!samples_.empty() && samples_.front().first < begin) {
    samples_.pop_front();
    if (evictions_ != nullptr) {
      evictions_->inc();
    }
  }
  samples_.emplace_back(slot, bits);
  total_bits_ += bits;
}

double RateWindow::rate_bps(std::uint64_t now_slot,
                            double slot_duration_s) const {
  const std::uint64_t begin =
      now_slot >= window_slots_ ? now_slot - window_slots_ : 0;
  std::uint64_t bits = 0;
  for (const auto& [slot, b] : samples_) {
    if (slot >= begin && slot < now_slot) {
      bits += b;
    }
  }
  const std::uint64_t span = std::min(window_slots_, now_slot);
  const double window_s = static_cast<double>(span) * slot_duration_s;
  return window_s > 0.0 ? static_cast<double>(bits) / window_s : 0.0;
}

bool UeTelemetry::observe(DecodedDci& dci) {
  last_slot_ = std::max(last_slot_, dci.slot);
  const bool retx = harq_.observe(dci.dci);
  dci.is_retx = retx;
  if (is_downlink(dci.dci.format)) {
    ++dl_dcis_;
    ++mcs_histogram_[dci.dci.mcs % mcs_histogram_.size()];
    last_efficiency_ =
        dci.grant.code_rate *
        static_cast<double>(bits_per_symbol(dci.grant.modulation));
    if (!retx) {
      dl_rate_.add(dci.slot, dci.grant.tbs);
    }
  } else {
    ++ul_dcis_;
    if (!retx) {
      ul_rate_.add(dci.slot, dci.grant.tbs);
    }
  }
  return retx;
}

CellTelemetry::CellTelemetry(Scs scs, std::uint64_t window_slots,
                             MetricsRegistry* registry)
    : scs_(scs), window_slots_(window_slots) {
  if (registry != nullptr) {
    ue_added_ = &registry->counter("telemetry.ue_added");
    ue_removed_ = &registry->counter("telemetry.ue_removed");
    window_evictions_ = &registry->counter("telemetry.window_evictions");
  }
}

UeTelemetry& CellTelemetry::ensure_ue(Rnti rnti, std::uint64_t slot) {
  auto [it, inserted] =
      ues_.try_emplace(rnti, rnti, slot, window_slots_, window_evictions_);
  if (inserted && ue_added_ != nullptr) {
    ue_added_->inc();
  }
  return it->second;
}

void CellTelemetry::add_ue(Rnti rnti, std::uint64_t slot) {
  ensure_ue(rnti, slot);
}

void CellTelemetry::remove_ue(Rnti rnti) {
  if (ues_.erase(rnti) > 0 && ue_removed_ != nullptr) {
    ue_removed_->inc();
  }
}

UeTelemetry* CellTelemetry::find(Rnti rnti) {
  const auto it = ues_.find(rnti);
  return it == ues_.end() ? nullptr : &it->second;
}

const UeTelemetry* CellTelemetry::find(Rnti rnti) const {
  const auto it = ues_.find(rnti);
  return it == ues_.end() ? nullptr : &it->second;
}

void CellTelemetry::observe_slot(std::uint64_t slot,
                                 std::vector<DecodedDci>& dcis,
                                 unsigned data_res_total, bool keep_history) {
  SlotCapacity cap;
  cap.slot = slot;
  cap.data_res_total = data_res_total;

  for (auto& dci : dcis) {
    ensure_ue(dci.rnti, slot).observe(dci);
    if (is_downlink(dci.dci.format)) {
      const unsigned res =
          dci.grant.prb_len * kSubcarriersPerPrb * (dci.grant.n_symbols - 1);
      cap.data_res_used += res;
      cap.used_res[dci.rnti] += res;
    }
  }

  // Fair-share spare capacity: unused REs split evenly across active UEs,
  // converted with each UE's own spectral efficiency (section 5.4.1: "the
  // calculated spare bit rates are different because two UEs have
  // different modulation and coding rates in the same TTI").
  last_spare_bps_.clear();
  if (data_res_total > cap.data_res_used && !ues_.empty()) {
    const double spare =
        static_cast<double>(data_res_total - cap.data_res_used);
    const double share = spare / static_cast<double>(ues_.size());
    last_spare_res_per_ue_ = share;
    const double slot_s = slot_duration_s(scs_);
    for (const auto& [rnti, ue] : ues_) {
      const double eff = ue.last_efficiency() > 0.0 ? ue.last_efficiency()
                                                    : 2.0 * 0.3;
      const double bps = share * eff / slot_s;
      last_spare_bps_[rnti] = bps;
      cap.spare_bps[rnti] = bps;
    }
  } else {
    last_spare_res_per_ue_ = 0.0;
  }

  if (keep_history) {
    history_.push_back(std::move(cap));
  }
}

double CellTelemetry::spare_bps(Rnti rnti) const {
  const auto it = last_spare_bps_.find(rnti);
  return it == last_spare_bps_.end() ? 0.0 : it->second;
}

}  // namespace nrs
