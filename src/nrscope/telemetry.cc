#include "nrscope/telemetry.h"

#include <algorithm>

namespace nrs {

void RateWindow::add(std::uint64_t slot, std::uint64_t bits) {
  // Evict relative to the newest sample so the const queries never have to
  // mutate; the ring is bounded by the window regardless of query pattern.
  const std::uint64_t begin =
      slot >= window_slots_ ? slot - window_slots_ : 0;
  while (count_ > 0 && ring_[head_].first < begin) {
    head_ = (head_ + 1) % ring_.size();
    --count_;
    if (evictions_ != nullptr) {
      evictions_->inc();
    }
  }
  if (count_ == ring_.size()) {
    // Grow-and-linearize; only happens while the ring is still warming up
    // to the window's worst-case sample count.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> bigger;
    bigger.reserve(std::max<std::size_t>(16, 2 * ring_.size()));
    for (std::size_t i = 0; i < count_; ++i) {
      bigger.push_back(ring_[(head_ + i) % ring_.size()]);
    }
    bigger.resize(bigger.capacity());
    ring_ = std::move(bigger);
    head_ = 0;
  }
  ring_[(head_ + count_) % ring_.size()] = {slot, bits};
  ++count_;
  total_bits_ += bits;
}

double RateWindow::rate_bps(std::uint64_t now_slot,
                            double slot_duration_s) const {
  const std::uint64_t begin =
      now_slot >= window_slots_ ? now_slot - window_slots_ : 0;
  std::uint64_t bits = 0;
  for (std::size_t i = 0; i < count_; ++i) {
    const auto& [slot, b] = ring_[(head_ + i) % ring_.size()];
    if (slot >= begin && slot < now_slot) {
      bits += b;
    }
  }
  const std::uint64_t span = std::min(window_slots_, now_slot);
  const double window_s = static_cast<double>(span) * slot_duration_s;
  return window_s > 0.0 ? static_cast<double>(bits) / window_s : 0.0;
}

bool UeTelemetry::observe(DecodedDci& dci) {
  last_slot_ = std::max(last_slot_, dci.slot);
  const bool retx = harq_.observe(dci.dci);
  dci.is_retx = retx;
  if (is_downlink(dci.dci.format)) {
    ++dl_dcis_;
    ++mcs_histogram_[dci.dci.mcs % mcs_histogram_.size()];
    last_efficiency_ =
        dci.grant.code_rate *
        static_cast<double>(bits_per_symbol(dci.grant.modulation));
    if (!retx) {
      dl_rate_.add(dci.slot, dci.grant.tbs);
    }
  } else {
    ++ul_dcis_;
    if (!retx) {
      ul_rate_.add(dci.slot, dci.grant.tbs);
    }
  }
  return retx;
}

CellTelemetry::CellTelemetry(Scs scs, std::uint64_t window_slots,
                             MetricsRegistry* registry)
    : scs_(scs), window_slots_(window_slots) {
  if (registry != nullptr) {
    ue_added_ = &registry->counter("telemetry.ue_added");
    ue_removed_ = &registry->counter("telemetry.ue_removed");
    window_evictions_ = &registry->counter("telemetry.window_evictions");
  }
}

UeTelemetry& CellTelemetry::ensure_ue(Rnti rnti, std::uint64_t slot) {
  auto [it, inserted] =
      ues_.try_emplace(rnti, rnti, slot, window_slots_, window_evictions_);
  if (inserted && ue_added_ != nullptr) {
    ue_added_->inc();
  }
  return it->second;
}

void CellTelemetry::add_ue(Rnti rnti, std::uint64_t slot) {
  ensure_ue(rnti, slot);
}

void CellTelemetry::remove_ue(Rnti rnti) {
  last_spare_bps_.erase(rnti);
  if (ues_.erase(rnti) > 0 && ue_removed_ != nullptr) {
    ue_removed_->inc();
  }
}

void CellTelemetry::rebind_ue(Rnti rnti, std::uint64_t slot) {
  remove_ue(rnti);
  ensure_ue(rnti, slot);
}

UeTelemetry* CellTelemetry::find(Rnti rnti) {
  const auto it = ues_.find(rnti);
  return it == ues_.end() ? nullptr : &it->second;
}

const UeTelemetry* CellTelemetry::find(Rnti rnti) const {
  const auto it = ues_.find(rnti);
  return it == ues_.end() ? nullptr : &it->second;
}

void CellTelemetry::observe_slot(std::uint64_t slot,
                                 std::vector<DecodedDci>& dcis,
                                 unsigned data_res_total, bool keep_history) {
  // The per-RNTI capacity maps only feed the history consumer; skip their
  // node churn entirely when no history is kept (the steady-state sniffer
  // path, which must stay allocation-free).
  SlotCapacity* cap = nullptr;
  if (keep_history) {
    cap = &history_.emplace_back();
    cap->slot = slot;
    cap->data_res_total = data_res_total;
  }

  unsigned data_res_used = 0;
  for (auto& dci : dcis) {
    ensure_ue(dci.rnti, slot).observe(dci);
    if (is_downlink(dci.dci.format)) {
      const unsigned res =
          dci.grant.prb_len * kSubcarriersPerPrb * (dci.grant.n_symbols - 1);
      data_res_used += res;
      if (cap != nullptr) {
        cap->used_res[dci.rnti] += res;
      }
    }
  }
  if (cap != nullptr) {
    cap->data_res_used = data_res_used;
  }

  // Fair-share spare capacity: unused REs split evenly across active UEs,
  // converted with each UE's own spectral efficiency (section 5.4.1: "the
  // calculated spare bit rates are different because two UEs have
  // different modulation and coding rates in the same TTI").  Stale
  // entries are zeroed in place rather than erased, so the map's nodes
  // are reused slot over slot (remove_ue erases for departed UEs).
  for (auto& [rnti, bps] : last_spare_bps_) {
    bps = 0.0;
  }
  if (data_res_total > data_res_used && !ues_.empty()) {
    const double spare =
        static_cast<double>(data_res_total - data_res_used);
    const double share = spare / static_cast<double>(ues_.size());
    last_spare_res_per_ue_ = share;
    const double slot_s = slot_duration_s(scs_);
    for (const auto& [rnti, ue] : ues_) {
      const double eff = ue.last_efficiency() > 0.0 ? ue.last_efficiency()
                                                    : 2.0 * 0.3;
      const double bps = share * eff / slot_s;
      last_spare_bps_[rnti] = bps;
      if (cap != nullptr) {
        cap->spare_bps[rnti] = bps;
      }
    }
  } else {
    last_spare_res_per_ue_ = 0.0;
  }
}

double CellTelemetry::spare_bps(Rnti rnti) const {
  const auto it = last_spare_bps_.find(rnti);
  return it == last_spare_bps_.end() ? 0.0 : it->second;
}

}  // namespace nrs
