// Sync-health scoring and resynchronization bookkeeping (robustness
// layer).  While the engine tracks a cell, the monitor ingests two
// signals every slot:
//
//  - the PSS correlation quality at the known SSB location on the slots
//    where the cell is due to transmit an SSB (deep fades, timing jumps
//    and strong CFO all collapse it), and
//  - the blind-decode yield (a cell with tracked UEs that stops producing
//    any user DCI for a long run is being decoded blind — the cell's
//    configuration changed under us even though the SSB still matches).
//
// When either trips, the engine falls back to a kResync state that
// re-runs PSS/SSS + MIB while retaining tracked-UE state for a grace
// window; the monitor records sync losses, completed resyncs, PCI
// changes, abandonments and resync durations in the metrics registry.
//
// Everything here is allocation-free after construction: the monitor
// runs inside the zero-allocation steady-state slot path.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/metrics.h"

namespace nrs {

struct SyncMonitorConfig {
  bool enabled = true;
  /// EMA weight of a new SSB observation in the quality score.
  double ssb_alpha = 0.4;
  /// A single SSB whose PSS correlation falls below this is "weak".
  float ssb_weak_threshold = 0.25f;
  /// Consecutive weak SSBs before sync is declared lost.
  unsigned ssb_fail_limit = 3;
  /// Quality EMA below this flags the slot degraded (still tracking).
  double degraded_threshold = 0.5;
  /// Consecutive slots with tracked UEs but zero decoded user DCIs
  /// before sync is declared lost (blind decoding: the cell moved on).
  std::uint64_t empty_slot_limit = 2000;
  /// How long kResync keeps the tracked-UE state alive while it hunts
  /// for the cell; expiry flushes and falls back to a cold kSearching.
  std::uint64_t resync_grace_slots = 4000;

  [[nodiscard]] std::optional<std::string> validate() const;
};

/// Why sync was lost — decides where a same-PCI recovery resumes.
enum class SyncLossCause : std::uint8_t {
  kNone,
  kSsbQuality,   ///< channel-level fault; cell config assumed intact
  kBlindDecode,  ///< decodes dried up; re-read SIB1 before tracking
};

const char* to_string(SyncLossCause cause);

enum class SyncHealth : std::uint8_t { kHealthy, kDegraded, kLost };

class SyncMonitor {
 public:
  SyncMonitor(const SyncMonitorConfig& config, MetricsRegistry& registry);

  /// (Re)entering the tracking state: quality starts clean.
  void on_lock();

  /// One PSS-correlation measurement on an expected-SSB slot.
  void observe_ssb(float correlation);

  /// End-of-slot yield: decoded user DCIs and whether UEs are tracked.
  void observe_slot(std::size_t n_user_dcis, bool have_ues);

  /// Verdict for the slot just observed.
  [[nodiscard]] SyncHealth health() const;

  /// Which trigger fired (meaningful when health() == kLost).
  [[nodiscard]] SyncLossCause loss_cause() const;

  // Resync lifecycle (driven by the engine's state machine).
  void resync_started(std::uint64_t slot);
  void resync_finished(std::uint64_t slot, bool pci_changed);
  void resync_abandoned(std::uint64_t slot);

  [[nodiscard]] double quality() const { return quality_; }
  [[nodiscard]] unsigned weak_ssb_run() const { return weak_run_; }
  [[nodiscard]] std::uint64_t empty_slot_run() const { return empty_run_; }
  [[nodiscard]] std::uint64_t sync_losses() const { return sync_losses_; }
  [[nodiscard]] std::uint64_t resyncs() const { return resyncs_; }
  [[nodiscard]] std::uint64_t pci_changes() const { return pci_changes_; }
  [[nodiscard]] std::uint64_t abandoned() const { return abandoned_; }

 private:
  SyncMonitorConfig config_;
  double quality_ = 1.0;
  unsigned weak_run_ = 0;
  std::uint64_t empty_run_ = 0;
  std::uint64_t resync_started_slot_ = 0;
  std::uint64_t sync_losses_ = 0;
  std::uint64_t resyncs_ = 0;
  std::uint64_t pci_changes_ = 0;
  std::uint64_t abandoned_ = 0;
  Counter* m_sync_losses_ = nullptr;
  Counter* m_resyncs_ = nullptr;
  Counter* m_pci_changes_ = nullptr;
  Counter* m_abandoned_ = nullptr;
  Histogram* m_resync_duration_ = nullptr;
  Gauge* m_health_ = nullptr;
};

}  // namespace nrs
