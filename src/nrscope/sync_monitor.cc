#include "nrscope/sync_monitor.h"

#include <cmath>

namespace nrs {

const char* to_string(SyncLossCause cause) {
  switch (cause) {
    case SyncLossCause::kNone:
      return "none";
    case SyncLossCause::kSsbQuality:
      return "ssb_quality";
    case SyncLossCause::kBlindDecode:
      return "blind_decode";
  }
  return "?";
}

std::optional<std::string> SyncMonitorConfig::validate() const {
  if (std::isnan(ssb_alpha) || ssb_alpha <= 0.0 || ssb_alpha > 1.0) {
    return "sync.ssb_alpha must be in (0, 1], got " +
           std::to_string(ssb_alpha);
  }
  if (std::isnan(ssb_weak_threshold) || ssb_weak_threshold < 0.0f ||
      ssb_weak_threshold > 1.0f) {
    return "sync.ssb_weak_threshold must be in [0, 1], got " +
           std::to_string(ssb_weak_threshold);
  }
  if (ssb_fail_limit == 0) {
    return "sync.ssb_fail_limit must be > 0";
  }
  if (std::isnan(degraded_threshold) || degraded_threshold < 0.0 ||
      degraded_threshold > 1.0) {
    return "sync.degraded_threshold must be in [0, 1], got " +
           std::to_string(degraded_threshold);
  }
  if (empty_slot_limit == 0) {
    return "sync.empty_slot_limit must be > 0";
  }
  if (resync_grace_slots == 0) {
    return "sync.resync_grace_slots must be > 0";
  }
  return std::nullopt;
}

SyncMonitor::SyncMonitor(const SyncMonitorConfig& config,
                         MetricsRegistry& registry)
    : config_(config) {
  m_sync_losses_ = &registry.counter("nrscope.sync_losses");
  m_resyncs_ = &registry.counter("nrscope.resyncs");
  m_pci_changes_ = &registry.counter("nrscope.pci_changes");
  m_abandoned_ = &registry.counter("nrscope.resyncs_abandoned");
  m_resync_duration_ =
      &registry.histogram("nrscope.resync_duration_slots");
  m_health_ = &registry.gauge("nrscope.sync_health_ppm");
  m_health_->set(0);
}

void SyncMonitor::on_lock() {
  quality_ = 1.0;
  weak_run_ = 0;
  empty_run_ = 0;
  m_health_->set(1000000);
}

void SyncMonitor::observe_ssb(float correlation) {
  quality_ = (1.0 - config_.ssb_alpha) * quality_ +
             config_.ssb_alpha * static_cast<double>(correlation);
  if (correlation < config_.ssb_weak_threshold) {
    ++weak_run_;
  } else {
    weak_run_ = 0;
  }
  m_health_->set(static_cast<std::int64_t>(quality_ * 1e6));
}

void SyncMonitor::observe_slot(std::size_t n_user_dcis, bool have_ues) {
  if (!have_ues || n_user_dcis > 0) {
    empty_run_ = 0;
  } else {
    ++empty_run_;
  }
}

SyncHealth SyncMonitor::health() const {
  if (!config_.enabled) {
    return SyncHealth::kHealthy;
  }
  if (weak_run_ >= config_.ssb_fail_limit ||
      empty_run_ >= config_.empty_slot_limit) {
    return SyncHealth::kLost;
  }
  if (quality_ < config_.degraded_threshold ||
      empty_run_ >= config_.empty_slot_limit / 2) {
    return SyncHealth::kDegraded;
  }
  return SyncHealth::kHealthy;
}

SyncLossCause SyncMonitor::loss_cause() const {
  if (weak_run_ >= config_.ssb_fail_limit) {
    return SyncLossCause::kSsbQuality;
  }
  if (empty_run_ >= config_.empty_slot_limit) {
    return SyncLossCause::kBlindDecode;
  }
  return SyncLossCause::kNone;
}

void SyncMonitor::resync_started(std::uint64_t slot) {
  resync_started_slot_ = slot;
  ++sync_losses_;
  m_sync_losses_->inc();
  m_health_->set(0);
}

void SyncMonitor::resync_finished(std::uint64_t slot, bool pci_changed) {
  ++resyncs_;
  m_resyncs_->inc();
  m_resync_duration_->observe(
      static_cast<double>(slot - resync_started_slot_));
  if (pci_changed) {
    ++pci_changes_;
    m_pci_changes_->inc();
  }
}

void SyncMonitor::resync_abandoned(std::uint64_t slot) {
  ++abandoned_;
  m_abandoned_->inc();
  m_resync_duration_->observe(
      static_cast<double>(slot - resync_started_slot_));
}

}  // namespace nrs
