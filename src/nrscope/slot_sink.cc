#include "nrscope/slot_sink.h"

#include <sstream>
#include <stdexcept>

namespace nrs {

MetricsCsvSink::MetricsCsvSink(const std::string& path,
                               const MetricsRegistry& registry,
                               std::uint64_t period_slots)
    : out_(path), registry_(&registry),
      period_slots_(period_slots > 0 ? period_slots : 1) {
  if (!out_) {
    throw std::runtime_error("MetricsCsvSink: cannot open " + path);
  }
  out_ << "slot," << MetricsSnapshot::csv_header() << '\n';
}

void MetricsCsvSink::on_slot(const SlotResult& result) {
  last_slot_ = result.slot;
  if (++seen_ % period_slots_ == 0) {
    dump();
  }
}

void MetricsCsvSink::on_finish() {
  dump();
  out_.flush();
}

void MetricsCsvSink::dump() {
  const MetricsSnapshot snap = registry_->snapshot();
  // Prefix every row of the snapshot's CSV with the slot column.
  std::istringstream rows(snap.to_csv());
  std::string row;
  while (std::getline(rows, row)) {
    out_ << last_slot_ << ',' << row << '\n';
  }
}

}  // namespace nrs
