#include "nrscope/slot_sink.h"

#include <sstream>
#include <stdexcept>

namespace nrs {

// ---- SinkChain -------------------------------------------------------

SinkChain::SinkChain(MetricsRegistry* registry, std::string metric_prefix)
    : registry_(registry), prefix_(std::move(metric_prefix)) {
  if (registry_ != nullptr) {
    total_errors_ = &registry_->counter(prefix_ + "sink_errors");
  }
}

std::string SinkChain::add(std::string name, std::shared_ptr<SlotSink> sink,
                           std::uint64_t error_limit) {
  if (!sink) {
    return {};
  }
  std::lock_guard lock(mutex_);
  if (name.empty()) {
    name = "sink" + std::to_string(auto_names_++);
  }
  // Duplicate names would alias the per-sink error counter; suffix them.
  auto taken = [this](const std::string& candidate) {
    for (const Entry& entry : entries_) {
      if (entry.name == candidate) {
        return true;
      }
    }
    return false;
  };
  std::string unique = name;
  for (unsigned suffix = 2; taken(unique); ++suffix) {
    unique = name + "#" + std::to_string(suffix);
  }
  Entry entry;
  entry.name = unique;
  entry.sink = std::move(sink);
  entry.error_limit = error_limit;
  if (registry_ != nullptr) {
    entry.errors = &registry_->counter(prefix_ + "sink." + unique +
                                       ".errors");
  }
  entries_.push_back(std::move(entry));
  return unique;
}

bool SinkChain::detach(std::string_view name) {
  std::lock_guard lock(mutex_);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->name == name) {
      entries_.erase(it);
      return true;
    }
  }
  return false;
}

std::size_t SinkChain::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

bool SinkChain::empty() const {
  std::lock_guard lock(mutex_);
  return entries_.empty();
}

std::vector<std::string> SinkChain::names() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    out.push_back(entry.name);
  }
  return out;
}

bool SinkChain::note_error_locked(std::size_t i) {
  Entry& entry = entries_[i];
  ++entry.error_count;
  if (total_errors_ != nullptr) {
    total_errors_->inc();
  }
  if (entry.errors != nullptr) {
    entry.errors->inc();
  }
  return entry.error_limit > 0 && entry.error_count >= entry.error_limit;
}

void SinkChain::deliver_slot(const SlotResult& result) {
  std::lock_guard lock(mutex_);
  for (std::size_t i = 0; i < entries_.size();) {
    try {
      entries_[i].sink->on_slot(result);
      ++i;
    } catch (...) {
      if (note_error_locked(i)) {
        entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }
}

void SinkChain::deliver_finish() {
  std::lock_guard lock(mutex_);
  for (std::size_t i = 0; i < entries_.size();) {
    try {
      entries_[i].sink->on_finish();
      ++i;
    } catch (...) {
      if (note_error_locked(i)) {
        entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }
}

// ---- MetricsCsvSink --------------------------------------------------

MetricsCsvSink::MetricsCsvSink(const std::string& path,
                               const MetricsRegistry& registry,
                               std::uint64_t period_slots)
    : out_(path), registry_(&registry),
      period_slots_(period_slots > 0 ? period_slots : 1) {
  if (!out_) {
    throw std::runtime_error("MetricsCsvSink: cannot open " + path);
  }
  out_ << "slot," << MetricsSnapshot::csv_header() << '\n';
}

void MetricsCsvSink::on_slot(const SlotResult& result) {
  last_slot_ = result.slot;
  if (++seen_ % period_slots_ == 0) {
    dump();
  }
}

void MetricsCsvSink::on_finish() {
  dump();
  out_.flush();
}

void MetricsCsvSink::dump() {
  const MetricsSnapshot snap = registry_->snapshot();
  // Prefix every row of the snapshot's CSV with the slot column.
  std::istringstream rows(snap.to_csv());
  std::string row;
  while (std::getline(rows, row)) {
    out_ << last_slot_ << ',' << row << '\n';
  }
}

}  // namespace nrs
