// Per-UE blind DCI decoding (paper section 3.2.1): with a UE's C-RNTI and
// RRC-learned search-space / format parameters, try every PDCCH candidate
// it monitors and keep the ones whose RNTI-unmasked CRC passes.  This is
// the per-TTI inner loop whose cost Fig. 12 profiles, and the unit NR-Scope
// shards across DCI threads.
#pragma once

#include <cstdint>
#include <vector>

#include "nr/cell_config.h"
#include "nr/pdcch.h"
#include "nr/rrc.h"
#include "nrscope/telemetry.h"
#include "phy/resource_grid.h"

namespace nrs {

/// What the sniffer tracks per known UE.
struct UeSearchContext {
  Rnti rnti = kInvalidRnti;
  RrcSetup config;
};

/// All DCIs for one UE in one slot.  Grants are translated with the UE's
/// RRC parameters so the TBS matches what the UE itself computes.
std::vector<DecodedDci> decode_ue_dcis(const ResourceGrid& grid,
                                       const SlotPoint& slot,
                                       std::uint64_t slot_index,
                                       const CellConfig& cell,
                                       const UeSearchContext& ue);

}  // namespace nrs
