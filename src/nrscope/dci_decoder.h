// Per-UE blind DCI decoding (paper section 3.2.1): with a UE's C-RNTI and
// RRC-learned search-space / format parameters, try every PDCCH candidate
// it monitors and keep the ones whose RNTI-unmasked CRC passes.  This is
// the per-TTI inner loop whose cost Fig. 12 profiles, and the unit NR-Scope
// shards across DCI threads.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <vector>

#include "common/metrics.h"
#include "nr/cell_config.h"
#include "nr/pdcch.h"
#include "nr/rrc.h"
#include "nrscope/telemetry.h"
#include "phy/resource_grid.h"

namespace nrs {

/// What the sniffer tracks per known UE.
struct UeSearchContext {
  Rnti rnti = kInvalidRnti;
  RrcSetup config;
};

/// Optional blind-decode latency histograms, one per PDCCH aggregation
/// level, indexed by log2 of the level (1/2/4/8/16 -> 0..4).  Null entries
/// are skipped.
using AggLevelHistograms = std::array<Histogram*, 5>;

/// Histogram slot for an aggregation level (levels are powers of two).
constexpr std::size_t agg_level_index(unsigned level) {
  const auto idx = static_cast<std::size_t>(
      std::countr_zero(level == 0 ? 1u : level));
  return idx < 5 ? idx : 4;
}

/// All DCIs for one UE in one slot.  Grants are translated with the UE's
/// RRC parameters so the TBS matches what the UE itself computes.  When
/// `level_us` is given, the candidate sweep of each aggregation level is
/// timed into the matching histogram.
std::vector<DecodedDci> decode_ue_dcis(const ResourceGrid& grid,
                                       const SlotPoint& slot,
                                       std::uint64_t slot_index,
                                       const CellConfig& cell,
                                       const UeSearchContext& ue,
                                       const AggLevelHistograms* level_us =
                                           nullptr);

/// Allocation-free variant: decoded DCIs are appended to `out` (which is
/// NOT cleared — callers batch several UEs into one vector) and all
/// intermediate buffers live in the caller's `scratch`.
void decode_ue_dcis(const ResourceGrid& grid, const SlotPoint& slot,
                    std::uint64_t slot_index, const CellConfig& cell,
                    const UeSearchContext& ue, PdcchScratch& scratch,
                    std::vector<DecodedDci>& out,
                    const AggLevelHistograms* level_us = nullptr);

}  // namespace nrs
