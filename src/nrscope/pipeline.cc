#include "nrscope/pipeline.h"

#include <stdexcept>

namespace nrs {

NrScopePipeline::NrScopePipeline(const NrScopeConfig& config,
                                 unsigned n_demod_workers,
                                 std::size_t queue_depth)
    : engine_(std::make_unique<NrScope>(config)),
      ofdm_config_(make_ofdm_config(config.n_prb)), input_(queue_depth),
      output_(queue_depth) {
  if (queue_depth == 0) {
    throw std::invalid_argument("NrScopePipeline: queue_depth must be > 0");
  }
  MetricsRegistry& registry = engine_->metrics_registry();
  m_slots_pushed_ = &registry.counter("pipeline.slots_pushed");
  m_drop_queue_full_ =
      &registry.counter("pipeline.slots_dropped.queue_full");
  m_drop_finished_ = &registry.counter("pipeline.slots_dropped.finished");
  m_queue_depth_ = &registry.gauge("pipeline.input_queue_depth");
  m_reorder_depth_ = &registry.gauge("pipeline.reorder_occupancy");
  m_demod_us_ = &registry.histogram("pipeline.demod_us");
  m_collector_wait_us_ = &registry.histogram("pipeline.collector_wait_us");
  m_collect_us_ = &registry.histogram("pipeline.collect_us");
  m_output_wait_us_ = &registry.histogram("pipeline.output_wait_us");
  m_sink_errors_ = &registry.counter("pipeline.sink_errors");

  active_demods_ = std::max(1u, n_demod_workers);
  demod_workers_.reserve(active_demods_);
  m_worker_demod_us_.reserve(active_demods_);
  for (unsigned i = 0; i < active_demods_; ++i) {
    m_worker_demod_us_.push_back(&registry.histogram(
        "pipeline.demod_us.worker" + std::to_string(i)));
  }
  for (unsigned i = 0; i < active_demods_; ++i) {
    demod_workers_.emplace_back([this, i] { demod_loop(i); });
  }
  collector_ = std::thread([this] { collect_loop(); });
}

NrScopePipeline::~NrScopePipeline() { stop(); }

void NrScopePipeline::stop() {
  input_.close();
  // Unblock a collector stuck delivering into a full, unpolled result
  // queue; deliver() then drops the remaining pull-mode results.
  output_.close();
  for (auto& t : demod_workers_) {
    if (t.joinable()) {
      t.join();
    }
  }
  if (collector_.joinable()) {
    collector_.join();
  }
}

void NrScopePipeline::add_sink(std::shared_ptr<SlotSink> sink) {
  if (!sink) {
    return;
  }
  std::lock_guard lock(sink_mutex_);
  sinks_.push_back(std::move(sink));
}

bool NrScopePipeline::push_slot(IqBuffer samples) {
  Job job;
  job.index = next_input_index_.load();
  job.samples = std::move(samples);
  switch (input_.try_push_result(std::move(job))) {
    case QueuePushResult::kOk:
      break;
    case QueuePushResult::kFull:
      ++dropped_;
      m_drop_queue_full_->inc();
      return false;
    case QueuePushResult::kClosed:
      ++dropped_;
      m_drop_finished_->inc();
      return false;
  }
  ++next_input_index_;
  m_slots_pushed_->inc();
  m_queue_depth_->set(static_cast<std::int64_t>(input_.size()));
  return true;
}

void NrScopePipeline::finish() { input_.close(); }

void NrScopePipeline::demod_loop(unsigned worker_index) {
  OfdmDemodulator demod(ofdm_config_);
  Histogram& worker_us = *m_worker_demod_us_[worker_index];
  while (auto job = input_.pop()) {
    m_queue_depth_->set(static_cast<std::int64_t>(input_.size()));
    std::optional<ResourceGrid> grid;
    {
      ScopedTimer shared_timer(*m_demod_us_);
      ScopedTimer worker_timer(worker_us);
      grid.emplace(demod.demodulate(job->samples));
    }
    {
      std::lock_guard lock(reorder_mutex_);
      reorder_.emplace(job->index, std::move(*grid));
      m_reorder_depth_->set(static_cast<std::int64_t>(reorder_.size()));
    }
    reorder_cv_.notify_all();
  }
  {
    std::lock_guard lock(reorder_mutex_);
    if (--active_demods_ == 0) {
      demod_done_ = true;
    }
  }
  reorder_cv_.notify_all();
}

void NrScopePipeline::deliver(SlotResult result) {
  std::unique_lock lock(sink_mutex_);
  if (sinks_.empty()) {
    lock.unlock();
    ScopedTimer wait_timer(*m_output_wait_us_);
    output_.push(std::move(result));
    return;
  }
  // A sink that throws is counted and detached; the pipeline (and the
  // other sinks) keep running.  erase-by-index so the loop stays valid.
  for (std::size_t i = 0; i < sinks_.size();) {
    try {
      sinks_[i]->on_slot(result);
      ++i;
    } catch (...) {
      m_sink_errors_->inc();
      sinks_.erase(sinks_.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }
}

void NrScopePipeline::collect_loop() {
  std::uint64_t expected = 0;
  while (true) {
    std::optional<ResourceGrid> grid;
    {
      std::unique_lock lock(reorder_mutex_);
      {
        ScopedTimer wait_timer(*m_collector_wait_us_);
        reorder_cv_.wait(lock, [&] {
          return reorder_.count(expected) > 0 || demod_done_;
        });
      }
      const auto it = reorder_.find(expected);
      if (it != reorder_.end()) {
        grid = std::move(it->second);
        reorder_.erase(it);
        m_reorder_depth_->set(static_cast<std::int64_t>(reorder_.size()));
      } else if (demod_done_ && reorder_.empty()) {
        break;
      } else if (demod_done_) {
        // Shutdown with a gap (dropped mid-stream is impossible — indexes
        // are only assigned on successful enqueue — so this means the
        // remaining entries are after `expected`; skip forward).
        expected = reorder_.begin()->first;
        continue;
      }
    }
    if (grid) {
      SlotResult result;
      {
        ScopedTimer collect_timer(*m_collect_us_);
        result = engine_->process_grid(*grid);
      }
      result.slot = expected;
      deliver(std::move(result));
      ++expected;
    }
  }
  {
    std::lock_guard lock(sink_mutex_);
    for (std::size_t i = 0; i < sinks_.size();) {
      try {
        sinks_[i]->on_finish();
        ++i;
      } catch (...) {
        m_sink_errors_->inc();
        sinks_.erase(sinks_.begin() + static_cast<std::ptrdiff_t>(i));
      }
    }
  }
  output_.close();
}

std::optional<SlotResult> NrScopePipeline::poll_result() {
  return output_.pop();
}

}  // namespace nrs
