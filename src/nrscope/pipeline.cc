#include "nrscope/pipeline.h"

namespace nrs {

NrScopePipeline::NrScopePipeline(const NrScopeConfig& config,
                                 unsigned n_demod_workers,
                                 std::size_t queue_depth)
    : engine_(std::make_unique<NrScope>(config)),
      ofdm_config_(make_ofdm_config(config.n_prb)), input_(queue_depth),
      output_(queue_depth) {
  active_demods_ = std::max(1u, n_demod_workers);
  demod_workers_.reserve(active_demods_);
  for (unsigned i = 0; i < active_demods_; ++i) {
    demod_workers_.emplace_back([this] { demod_loop(); });
  }
  collector_ = std::thread([this] { collect_loop(); });
}

NrScopePipeline::~NrScopePipeline() {
  finish();
  for (auto& t : demod_workers_) {
    if (t.joinable()) {
      t.join();
    }
  }
  if (collector_.joinable()) {
    collector_.join();
  }
}

bool NrScopePipeline::push_slot(IqBuffer samples) {
  Job job;
  job.index = next_input_index_.load();
  job.samples = std::move(samples);
  if (!input_.try_push(std::move(job))) {
    ++dropped_;
    return false;
  }
  ++next_input_index_;
  return true;
}

void NrScopePipeline::finish() { input_.close(); }

void NrScopePipeline::demod_loop() {
  OfdmDemodulator demod(ofdm_config_);
  while (auto job = input_.pop()) {
    ResourceGrid grid = demod.demodulate(job->samples);
    {
      std::lock_guard lock(reorder_mutex_);
      reorder_.emplace(job->index, std::move(grid));
    }
    reorder_cv_.notify_all();
  }
  {
    std::lock_guard lock(reorder_mutex_);
    if (--active_demods_ == 0) {
      demod_done_ = true;
    }
  }
  reorder_cv_.notify_all();
}

void NrScopePipeline::collect_loop() {
  std::uint64_t expected = 0;
  while (true) {
    std::optional<ResourceGrid> grid;
    {
      std::unique_lock lock(reorder_mutex_);
      reorder_cv_.wait(lock, [&] {
        return reorder_.count(expected) > 0 || demod_done_;
      });
      const auto it = reorder_.find(expected);
      if (it != reorder_.end()) {
        grid = std::move(it->second);
        reorder_.erase(it);
      } else if (demod_done_ && reorder_.empty()) {
        break;
      } else if (demod_done_) {
        // Shutdown with a gap (dropped mid-stream is impossible — indexes
        // are only assigned on successful enqueue — so this means the
        // remaining entries are after `expected`; skip forward).
        expected = reorder_.begin()->first;
        continue;
      }
    }
    if (grid) {
      SlotResult result = engine_->process_grid(*grid);
      result.slot = expected;
      output_.push(std::move(result));
      ++expected;
    }
  }
  output_.close();
}

std::optional<SlotResult> NrScopePipeline::poll_result() {
  return output_.pop();
}

}  // namespace nrs
