#include "nrscope/pipeline.h"

#include <limits>
#include <stdexcept>

#include "common/alloc_hooks.h"

namespace nrs {

NrScopePipeline::NrScopePipeline(const NrScopeConfig& config,
                                 unsigned n_demod_workers,
                                 std::size_t queue_depth)
    : engine_(std::make_unique<NrScope>(config)),
      ofdm_config_(make_ofdm_config(config.n_prb)), n_prb_(config.n_prb),
      input_(queue_depth), output_(queue_depth),
      sinks_(&engine_->metrics_registry(), "pipeline.") {
  if (queue_depth == 0) {
    throw std::invalid_argument("NrScopePipeline: queue_depth must be > 0");
  }
  MetricsRegistry& registry = engine_->metrics_registry();
  m_slots_pushed_ = &registry.counter("pipeline.slots_pushed");
  m_drop_queue_full_ =
      &registry.counter("pipeline.slots_dropped.queue_full");
  m_drop_finished_ = &registry.counter("pipeline.slots_dropped.finished");
  m_queue_depth_ = &registry.gauge("pipeline.input_queue_depth");
  m_reorder_depth_ = &registry.gauge("pipeline.reorder_occupancy");
  m_demod_us_ = &registry.histogram("pipeline.demod_us");
  m_collector_wait_us_ = &registry.histogram("pipeline.collector_wait_us");
  m_collect_us_ = &registry.histogram("pipeline.collect_us");
  m_output_wait_us_ = &registry.histogram("pipeline.output_wait_us");
  m_stream_gaps_ = &registry.counter("pipeline.stream_gaps");
  m_skipped_slots_ = &registry.counter("pipeline.slots_skipped");
  m_alloc_allocs_ = &registry.gauge("alloc.allocs");
  m_alloc_frees_ = &registry.gauge("alloc.frees");
  m_alloc_bytes_ = &registry.gauge("alloc.bytes");
  m_alloc_per_slot_ = &registry.gauge("alloc.allocs_per_slot");

  active_demods_ = std::max(1u, n_demod_workers);
  // Every in-flight slot (queued, being demodulated, or parked in the
  // reorder ring) fits without two live indices sharing a cell.
  reorder_slots_.resize(queue_depth + active_demods_ + 1);
  demod_workers_.reserve(active_demods_);
  m_worker_demod_us_.reserve(active_demods_);
  for (unsigned i = 0; i < active_demods_; ++i) {
    m_worker_demod_us_.push_back(&registry.histogram(
        "pipeline.demod_us.worker" + std::to_string(i)));
  }
  // Pre-size the pools to the worst-case in-flight count so steady state
  // never constructs: samples live in the input queue, in a worker's hands
  // and in the caller's next acquire; grids live in workers' hands, the
  // reorder ring and the collector's current slot.  Sample buffers are
  // created at full slot length: steady-state rotation may not cycle
  // through every warmed buffer for thousands of slots, and the first
  // assign() into a cold (capacity-0) buffer would otherwise be a late
  // surprise allocation.
  sample_pool_.warm(queue_depth + active_demods_ + 2,
                    ofdm_config_.samples_per_slot());
  grid_pool_.warm(reorder_slots_.size() + active_demods_ + 1, n_prb_);

  for (unsigned i = 0; i < active_demods_; ++i) {
    demod_workers_.emplace_back([this, i] { demod_loop(i); });
  }
  collector_ = std::thread([this] { collect_loop(); });
}

NrScopePipeline::~NrScopePipeline() { stop(); }

void NrScopePipeline::stop() {
  input_.close();
  // Unblock a collector stuck delivering into a full, unpolled result
  // queue; deliver() then drops the remaining pull-mode results.
  output_.close();
  for (auto& t : demod_workers_) {
    if (t.joinable()) {
      t.join();
    }
  }
  if (collector_.joinable()) {
    collector_.join();
  }
}

std::string NrScopePipeline::add_sink(std::string name,
                                      std::shared_ptr<SlotSink> sink,
                                      std::uint64_t error_limit) {
  return sinks_.add(std::move(name), std::move(sink), error_limit);
}

BufferPool<IqBuffer>::Handle NrScopePipeline::acquire_samples() {
  return sample_pool_.acquire(ofdm_config_.samples_per_slot());
}

bool NrScopePipeline::push_slot(BufferPool<IqBuffer>::Handle samples) {
  Job job;
  job.index = next_input_index_.load();
  job.samples = std::move(samples);
  // A rejected job's handle dies right here, returning the buffer.
  switch (input_.try_push_result(std::move(job))) {
    case QueuePushResult::kOk:
      break;
    case QueuePushResult::kFull:
      ++dropped_;
      m_drop_queue_full_->inc();
      return false;
    case QueuePushResult::kClosed:
      ++dropped_;
      m_drop_finished_->inc();
      return false;
  }
  ++next_input_index_;
  m_slots_pushed_->inc();
  m_queue_depth_->set(static_cast<std::int64_t>(input_.size()));
  return true;
}

bool NrScopePipeline::push_slot(IqBuffer samples) {
  auto handle = sample_pool_.acquire(ofdm_config_.samples_per_slot());
  *handle = std::move(samples);
  return push_slot(std::move(handle));
}

void NrScopePipeline::finish() { input_.close(); }

void NrScopePipeline::skip_slots(std::uint64_t n) {
  if (n == 0) {
    return;
  }
  // Same single-caller contract as push_slot, so the unguarded index
  // bump cannot race another feeder.
  const std::uint64_t from = next_input_index_.load();
  next_input_index_ = from + n;
  {
    std::lock_guard lock(reorder_mutex_);
    gaps_.push_back(Gap{from, from + n});
  }
  m_stream_gaps_->inc();
  m_skipped_slots_->inc(n);
  reorder_cv_.notify_all();
}

void NrScopePipeline::demod_loop(unsigned worker_index) {
  OfdmDemodulator demod(ofdm_config_);
  Histogram& worker_us = *m_worker_demod_us_[worker_index];
  while (auto job = input_.pop()) {
    m_queue_depth_->set(static_cast<std::int64_t>(input_.size()));
    auto grid = grid_pool_.acquire(n_prb_);
    {
      ScopedTimer shared_timer(*m_demod_us_);
      ScopedTimer worker_timer(worker_us);
      demod.demodulate_into(*job->samples, *grid);
    }
    // Return the sample buffer before (possibly) waiting on the ring.
    job->samples.release();
    const std::size_t cell = job->index % reorder_slots_.size();
    {
      std::unique_lock lock(reorder_mutex_);
      // Park only inside the collector's window: indexes there map to
      // distinct cells, so the cell is guaranteed free and a fast worker
      // cannot lap the ring past a slower worker's still-unparked slot.
      // The worker holding the collector's next expected index never
      // blocks here, so the pipeline always makes progress.
      reorder_cv_.wait(lock, [&] {
        return job->index < collect_upto_ + reorder_slots_.size() &&
               !reorder_slots_[cell].grid;
      });
      reorder_slots_[cell].index = job->index;
      reorder_slots_[cell].grid = std::move(grid);
      ++reorder_count_;
      m_reorder_depth_->set(static_cast<std::int64_t>(reorder_count_));
    }
    reorder_cv_.notify_all();
  }
  {
    std::lock_guard lock(reorder_mutex_);
    if (--active_demods_ == 0) {
      demod_done_ = true;
    }
  }
  reorder_cv_.notify_all();
}

void NrScopePipeline::deliver(const SlotResult& result) {
  if (sinks_.empty()) {
    ScopedTimer wait_timer(*m_output_wait_us_);
    // Pull mode copies into the queue; the allocation-free path is push
    // mode, where sinks see the collector's reused result by reference.
    // A full queue must never stall the collector (that back-pressure
    // would propagate through the bounded ring all the way to
    // push_slot()): older results drain first, the rest park in
    // pull_overflow_ until the next slot or end of stream.
    while (!pull_overflow_.empty() &&
           output_.try_push(SlotResult(pull_overflow_.front()))) {
      pull_overflow_.pop_front();
    }
    if (pull_overflow_.empty() && output_.try_push(SlotResult(result))) {
      return;
    }
    pull_overflow_.emplace_back(result);
    return;
  }
  // Fault isolation is the chain's: a throwing sink is counted and (once
  // its error budget is spent) detached, and the run continues.
  sinks_.deliver_slot(result);
}

void NrScopePipeline::collect_loop() {
  std::uint64_t expected = 0;
  SlotResult result;  // reused every slot; the engine clears it in place
  std::uint64_t last_allocs = 0;
  while (true) {
    BufferPool<ResourceGrid>::Handle grid;
    std::uint64_t gap_len = 0;
    {
      std::unique_lock lock(reorder_mutex_);
      ReorderSlot* cell = &reorder_slots_[expected % reorder_slots_.size()];
      {
        ScopedTimer wait_timer(*m_collector_wait_us_);
        reorder_cv_.wait(lock, [&] {
          return (!gaps_.empty() && gaps_.front().from == expected) ||
                 (cell->grid && cell->index == expected) || demod_done_;
        });
      }
      if (!gaps_.empty() && gaps_.front().from == expected) {
        // Every pre-gap index has been collected; jump the window over
        // the declared discontinuity instead of parking on indices that
        // will never arrive (the "stuck parking window" failure mode).
        const Gap gap = gaps_.front();
        gaps_.pop_front();
        gap_len = gap.to - gap.from;
        expected = gap.to;
        collect_upto_ = gap.to;
      } else if (cell->grid && cell->index == expected) {
        grid = std::move(cell->grid);
        --reorder_count_;
        collect_upto_ = expected + 1;
        m_reorder_depth_->set(static_cast<std::int64_t>(reorder_count_));
      } else if (demod_done_ && reorder_count_ == 0) {
        break;
      } else if (demod_done_) {
        // Shutdown with a gap (dropped mid-stream is impossible — indexes
        // are only assigned on successful enqueue — so this means the
        // remaining entries are after `expected`; skip forward to the
        // oldest one still parked in the ring).
        std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
        for (const ReorderSlot& s : reorder_slots_) {
          if (s.grid && s.index < oldest) {
            oldest = s.index;
          }
        }
        expected = oldest;
        collect_upto_ = oldest;
        continue;
      }
    }
    if (gap_len > 0) {
      // Wake workers whose indices entered the jumped-forward window and
      // keep the engine's slot clock aligned with the feed.
      reorder_cv_.notify_all();
      engine_->note_stream_gap(gap_len);
      continue;
    }
    if (grid) {
      // Wake any worker waiting for the cell we just vacated.
      reorder_cv_.notify_all();
      {
        ScopedTimer collect_timer(*m_collect_us_);
        engine_->process_grid(*grid, result);
      }
      grid.release();
      result.slot = expected;
      deliver(result);
      ++expected;
      if (alloc::hooks_active()) {
        const alloc::Totals t = alloc::totals();
        m_alloc_allocs_->set(static_cast<std::int64_t>(t.allocs));
        m_alloc_frees_->set(static_cast<std::int64_t>(t.frees));
        m_alloc_bytes_->set(static_cast<std::int64_t>(t.bytes));
        m_alloc_per_slot_->set(
            static_cast<std::int64_t>(t.allocs - last_allocs));
        last_allocs = t.allocs;
      }
    }
  }
  // Flush parked pull-mode results to a live consumer; a closed queue
  // (stop() before everything was polled) discards them, matching the
  // documented stop() semantics.
  while (!pull_overflow_.empty() &&
         output_.push(std::move(pull_overflow_.front()))) {
    pull_overflow_.pop_front();
  }
  pull_overflow_.clear();
  sinks_.deliver_finish();
  output_.close();
}

std::optional<SlotResult> NrScopePipeline::poll_result() {
  return output_.pop();
}

}  // namespace nrs
