#include "nrscope/log_writer.h"

#include <sstream>
#include <stdexcept>

namespace nrs {

TelemetryLogWriter::TelemetryLogWriter(const std::string& path)
    : out_(path) {
  if (!out_) {
    throw std::runtime_error("TelemetryLogWriter: cannot open " + path);
  }
  out_ << header() << '\n';
}

std::string TelemetryLogWriter::header() {
  return "slot,rnti,format,prb_start,prb_len,start_symbol,n_symbols,mcs,"
         "modulation,tbs,ndi,rv,harq_id,agg_level,cce_start,is_retx";
}

std::string TelemetryLogWriter::format_row(const DecodedDci& dci) {
  std::ostringstream os;
  os << dci.slot << ',' << dci.rnti << ',' << to_string(dci.dci.format)
     << ',' << dci.grant.prb_start << ',' << dci.grant.prb_len << ','
     << dci.grant.start_symbol << ',' << dci.grant.n_symbols << ','
     << dci.grant.mcs << ',' << to_string(dci.grant.modulation) << ','
     << dci.grant.tbs << ',' << static_cast<int>(dci.dci.ndi) << ','
     << static_cast<int>(dci.dci.rv) << ','
     << static_cast<int>(dci.dci.harq_id) << ',' << dci.agg_level << ','
     << dci.cce_start << ',' << (dci.is_retx ? 1 : 0);
  return os.str();
}

void TelemetryLogWriter::write(const SlotResult& result) {
  for (const auto& dci : result.dcis) {
    out_ << format_row(dci) << '\n';
  }
}

void TelemetryLogWriter::flush() { out_.flush(); }

}  // namespace nrs
