// Telemetry log writer: the "Log File" sink of paper Fig. 4.  One CSV row
// per decoded DCI, in the spirit of the paper's Appendix B dump, so
// downstream tools (and the analysis module's offline mode) can consume
// NR-Scope output without linking against it.  Implements SlotSink, so it
// can be attached directly to an NrScopePipeline.
#pragma once

#include <fstream>
#include <string>

#include "nrscope/nrscope.h"
#include "nrscope/slot_sink.h"

namespace nrs {

class TelemetryLogWriter : public SlotSink {
 public:
  explicit TelemetryLogWriter(const std::string& path);

  /// Append every DCI of one slot result.
  void write(const SlotResult& result);

  void flush();

  // SlotSink: stream each completed slot, flush at end of run.
  void on_slot(const SlotResult& result) override { write(result); }
  void on_finish() override { flush(); }

  static std::string header();
  static std::string format_row(const DecodedDci& dci);

 private:
  std::ofstream out_;
};

}  // namespace nrs
