// Telemetry log writer: the "Log File" sink of paper Fig. 4.  One CSV row
// per decoded DCI, in the spirit of the paper's Appendix B dump, so
// downstream tools (and the analysis module's offline mode) can consume
// NR-Scope output without linking against it.
#pragma once

#include <fstream>
#include <string>

#include "nrscope/nrscope.h"

namespace nrs {

class TelemetryLogWriter {
 public:
  explicit TelemetryLogWriter(const std::string& path);

  /// Append every DCI of one slot result.
  void write(const SlotResult& result);

  void flush();

  static std::string header();
  static std::string format_row(const DecodedDci& dci);

 private:
  std::ofstream out_;
};

}  // namespace nrs
