// The asynchronous processing pipeline of paper Fig. 4: radio samples
// flow through a bounded queue to a pool of demodulation workers (the
// per-slot FFT is the dominant signal-processing cost, section 5.3.2), an
// in-order collector runs the tracking engine — which itself shards DCI
// decoding across its own DCI threads — and results come out of a result
// queue.  A full input queue drops slots, which is the paper's "on-demand
// slot data processing" load-shedding behaviour.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <thread>

#include "common/queue.h"
#include "nrscope/nrscope.h"

namespace nrs {

class NrScopePipeline {
 public:
  NrScopePipeline(const NrScopeConfig& config, unsigned n_demod_workers,
                  std::size_t queue_depth = 64);
  ~NrScopePipeline();

  NrScopePipeline(const NrScopePipeline&) = delete;
  NrScopePipeline& operator=(const NrScopePipeline&) = delete;

  /// Enqueue one slot of samples; returns false when the pipeline is
  /// saturated and the slot was dropped.
  bool push_slot(IqBuffer samples);

  /// Next completed slot result, in slot order.  Blocks up to the queue;
  /// returns nullopt once finish() has been called and everything drained.
  std::optional<SlotResult> poll_result();

  /// No more input; workers drain and exit.
  void finish();

  /// The tracking engine (valid to inspect after draining).
  [[nodiscard]] const NrScope& engine() const { return *engine_; }

  [[nodiscard]] std::uint64_t dropped_slots() const {
    return dropped_.load();
  }

 private:
  struct Job {
    std::uint64_t index;
    IqBuffer samples;
  };

  void demod_loop();
  void collect_loop();

  std::unique_ptr<NrScope> engine_;
  OfdmConfig ofdm_config_;
  BoundedQueue<Job> input_;
  BoundedQueue<SlotResult> output_;
  std::vector<std::thread> demod_workers_;
  std::thread collector_;

  // Reorder buffer between demod workers and the collector.
  std::mutex reorder_mutex_;
  std::condition_variable reorder_cv_;
  std::map<std::uint64_t, ResourceGrid> reorder_;
  bool demod_done_ = false;
  unsigned active_demods_ = 0;

  std::atomic<std::uint64_t> next_input_index_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace nrs
