// The asynchronous processing pipeline of paper Fig. 4: radio samples
// flow through a bounded queue to a pool of demodulation workers (the
// per-slot FFT is the dominant signal-processing cost, section 5.3.2), an
// in-order collector runs the tracking engine — which itself shards DCI
// decoding across its own DCI threads — and results come out of a result
// queue.  A full input queue drops slots, which is the paper's "on-demand
// slot data processing" load-shedding behaviour.
//
// Hot-path memory discipline (DESIGN.md): sample buffers and resource
// grids are pooled, the reorder stage is a fixed ring of pool handles, and
// the collector reuses one SlotResult — in push mode the steady state
// performs zero heap allocations per slot after warm-up.  Feeders that
// care about this use acquire_samples() + push_slot(handle); the legacy
// push_slot(IqBuffer) copy-in overload still works.
//
// Two output modes:
//  - pull: poll_result() pops in-order SlotResults (the original API;
//    each delivery copies the collector's result into the queue);
//  - push: attach SlotSinks before feeding input and the collector thread
//    delivers each result to every sink by const reference instead of the
//    result queue, calling on_finish() once after the last slot.
// Every stage reports into a shared MetricsRegistry (the engine's):
// queue depth/drop reasons, per-worker FFT time, reorder-buffer occupancy,
// collector wait and back-pressure, and — when the allocation shim is
// linked (common/alloc_shim.h) — process heap traffic as alloc.* gauges;
// metrics() snapshots all of it.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "common/buffer_pool.h"
#include "common/metrics.h"
#include "common/queue.h"
#include "nrscope/nrscope.h"
#include "nrscope/slot_sink.h"

namespace nrs {

class NrScopePipeline {
 public:
  NrScopePipeline(const NrScopeConfig& config, unsigned n_demod_workers,
                  std::size_t queue_depth = 64);
  ~NrScopePipeline();

  NrScopePipeline(const NrScopePipeline&) = delete;
  NrScopePipeline& operator=(const NrScopePipeline&) = delete;

  /// Attach a push-mode result consumer under `name`.  Attach sinks before
  /// the first push_slot(): once any sink is attached, completed slots go
  /// to the sinks (in slot order, on the collector thread) instead of the
  /// poll_result() queue.  Fault isolation is the SinkChain's: a sink
  /// whose on_slot()/on_finish() throws is counted (pipeline.sink_errors
  /// and pipeline.sink.<name>.errors) and detached once its error budget
  /// — `error_limit` throws, default 1 — is spent, and the run continues.
  /// Returns the registered name (uniquified when `name` collides).
  std::string add_sink(std::string name, std::shared_ptr<SlotSink> sink,
                       std::uint64_t error_limit = 1);

  /// Anonymous attach: auto-names the sink ("sink0", "sink1", ...).
  std::string add_sink(std::shared_ptr<SlotSink> sink) {
    return add_sink({}, std::move(sink));
  }

  /// Detach by registered name; false when no such sink is attached.
  bool detach_sink(std::string_view name) { return sinks_.detach(name); }

  /// Currently attached sinks (faulty sinks shrink this).
  [[nodiscard]] std::size_t sink_count() const { return sinks_.size(); }
  [[nodiscard]] std::vector<std::string> sink_names() const {
    return sinks_.names();
  }

  /// Borrow a pooled sample buffer to fill and hand back to push_slot().
  /// Recycled buffers keep their capacity, so a feeder that resizes to the
  /// slot length and overwrites the contents allocates nothing in steady
  /// state.  Dropping the handle (without pushing) returns the buffer.
  [[nodiscard]] BufferPool<IqBuffer>::Handle acquire_samples();

  /// Enqueue one slot of samples held in a pooled buffer (the
  /// allocation-free feed path); returns false when the pipeline is
  /// saturated (or already finished) and the slot was dropped — the buffer
  /// goes straight back to the pool either way.  The drop reason is
  /// recorded in pipeline.slots_dropped.{queue_full,finished}.
  bool push_slot(BufferPool<IqBuffer>::Handle samples);

  /// Copy-in convenience overload: moves `samples` into a pooled buffer.
  bool push_slot(IqBuffer samples);

  /// Declare `n` input slots lost (a known stream discontinuity, e.g. an
  /// SDR overflow report): the collector jumps its reorder window over
  /// the missing indices instead of parking forever on slots that will
  /// never arrive, and the engine's slot clock advances so its frame
  /// phase stays locked across the gap.  Call from the feeder thread
  /// (the same single-caller contract as push_slot); takes effect once
  /// every slot pushed before the gap has been collected.
  void skip_slots(std::uint64_t n);

  /// Next completed slot result, in slot order.  Blocks up to the queue;
  /// returns nullopt once finish() has been called and everything drained
  /// (immediately so when sinks consume the results instead).
  std::optional<SlotResult> poll_result();

  /// No more input; workers drain and exit.
  void finish();

  /// Full teardown: close the input, unblock an unpolled result queue
  /// (undelivered pull-mode results are discarded), and join every worker
  /// thread.  Queued slots still drain through the engine and the sinks'
  /// on_finish() fires, so stop() is a prompt-but-graceful shutdown.  After
  /// stop() returns, no pipeline thread is running and the engine is safe
  /// to inspect from any thread; a fresh pipeline can then be started on
  /// the same feed (the fleet supervisor's restart path).  Idempotent, but
  /// not safe to call concurrently from two threads.
  void stop();

  /// The tracking engine (valid to inspect after draining).
  [[nodiscard]] const NrScope& engine() const { return *engine_; }

  /// Snapshot of every pipeline.* stage metric plus the engine's own.
  [[nodiscard]] MetricsSnapshot metrics() const { return engine_->metrics(); }
  [[nodiscard]] MetricsRegistry& metrics_registry() {
    return engine_->metrics_registry();
  }

  [[nodiscard]] std::uint64_t dropped_slots() const {
    return dropped_.load();
  }

  /// Pooled buffers (sample + grid) currently checked out.  Once stop()
  /// returns this must be zero regardless of what state the engine was in
  /// when the feed ended: the drain hands every in-flight buffer back even
  /// mid-resync.  Nonzero after stop() means a pooled handle leaked.
  [[nodiscard]] std::size_t buffers_in_flight() const {
    return (sample_pool_.created() - sample_pool_.available()) +
           (grid_pool_.created() - grid_pool_.available());
  }

 private:
  struct Job {
    std::uint64_t index = 0;
    BufferPool<IqBuffer>::Handle samples;
  };

  /// One cell of the reorder ring between demod workers and the
  /// collector; an engaged handle marks the cell occupied.
  struct ReorderSlot {
    std::uint64_t index = 0;
    BufferPool<ResourceGrid>::Handle grid;
  };

  void demod_loop(unsigned worker_index);
  void collect_loop();
  void deliver(const SlotResult& result);

  std::unique_ptr<NrScope> engine_;
  OfdmConfig ofdm_config_;
  unsigned n_prb_ = 0;

  // Pools outlive every stage that borrows from them: they are declared
  // before the queues / reorder ring that hold handles, and stop() joins
  // all threads before any member is destroyed.
  BufferPool<IqBuffer> sample_pool_;
  BufferPool<ResourceGrid> grid_pool_;

  BoundedQueue<Job> input_;
  BoundedQueue<SlotResult> output_;
  std::vector<std::thread> demod_workers_;
  std::thread collector_;

  SinkChain sinks_;

  /// A declared input-stream discontinuity: indices in [from, to) were
  /// never pushed and must be jumped over by the collector.
  struct Gap {
    std::uint64_t from = 0;
    std::uint64_t to = 0;
  };

  // Pull-mode results that did not fit in output_ (nobody polling yet).
  // The pre-refactor pipeline absorbed this back-pressure in an unbounded
  // reorder map; the bounded ring cannot, so the collector parks finished
  // results here instead of wedging the whole pipeline.  Collector-thread
  // only; drained in order ahead of newer results and flushed (or
  // discarded on stop()) at end of stream.  Unused in push mode.
  std::deque<SlotResult> pull_overflow_;

  // Reorder ring between demod workers and the collector.  Slot index i
  // lives in cell i % size; the in-flight window (input queue + workers)
  // is strictly smaller than the ring, so a worker whose cell is still
  // occupied simply waits for the collector — bounded occupancy, no
  // per-slot node allocation.
  std::mutex reorder_mutex_;
  std::condition_variable reorder_cv_;
  std::vector<ReorderSlot> reorder_slots_;
  std::size_t reorder_count_ = 0;
  // The collector's next expected index.  Workers only park an index once
  // it is inside [collect_upto_, collect_upto_ + ring size): every index in
  // that window maps to a distinct cell, so a fast worker can never lap the
  // ring and steal the cell of a slower worker's still-unparked slot.
  std::uint64_t collect_upto_ = 0;
  bool demod_done_ = false;
  unsigned active_demods_ = 0;
  // Pending declared gaps, in feed order (guarded by reorder_mutex_).
  // Indices are assigned only on accepted pushes, so every pre-gap index
  // is guaranteed to arrive and the front gap begins exactly where the
  // collector's expected index will land.
  std::deque<Gap> gaps_;

  std::atomic<std::uint64_t> next_input_index_{0};
  std::atomic<std::uint64_t> dropped_{0};

  // Stage metrics (handles into the engine's registry).
  Counter* m_slots_pushed_ = nullptr;
  Counter* m_drop_queue_full_ = nullptr;
  Counter* m_drop_finished_ = nullptr;
  Gauge* m_queue_depth_ = nullptr;
  Gauge* m_reorder_depth_ = nullptr;
  Histogram* m_demod_us_ = nullptr;
  std::vector<Histogram*> m_worker_demod_us_;
  Histogram* m_collector_wait_us_ = nullptr;
  Histogram* m_collect_us_ = nullptr;
  Histogram* m_output_wait_us_ = nullptr;
  Counter* m_stream_gaps_ = nullptr;
  Counter* m_skipped_slots_ = nullptr;
  // Heap-traffic gauges, published per slot when the shim is linked.
  Gauge* m_alloc_allocs_ = nullptr;
  Gauge* m_alloc_frees_ = nullptr;
  Gauge* m_alloc_bytes_ = nullptr;
  Gauge* m_alloc_per_slot_ = nullptr;
};

}  // namespace nrs
