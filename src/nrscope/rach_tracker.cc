#include "nrscope/rach_tracker.h"

#include "nr/grant.h"
#include "nr/pdsch.h"
#include "nr/rach.h"

namespace nrs {
namespace {

/// Build the PDSCH allocation a decoded DCI points at.
PdschAllocation alloc_from_grant(const Grant& grant, std::uint16_t pci) {
  PdschAllocation alloc;
  alloc.rnti = grant.rnti;
  alloc.prb_start = grant.prb_start;
  alloc.prb_len = grant.prb_len;
  alloc.start_symbol = grant.start_symbol;
  alloc.n_symbols = grant.n_symbols;
  alloc.modulation = grant.modulation;
  alloc.n_id = pci;
  return alloc;
}

}  // namespace

void RachTracker::bind_metrics(MetricsRegistry& registry) {
  metric_msg2_ = &registry.counter("rach.msg2_matches");
  metric_msg4_ = &registry.counter("rach.msg4_matches");
  metric_crnti_ = &registry.counter("rach.crnti_discoveries");
  metric_pdsch_ = &registry.counter("rach.pdsch_decodes");
  metric_rejected_ = &registry.counter("rach.rejected_recoveries");
}

std::optional<NewUe> RachTracker::handle_msg4(Rnti rnti, const Dci& dci,
                                              const ResourceGrid& grid,
                                              const SlotPoint& slot,
                                              std::uint64_t slot_index) {
  const Grant grant = translate_dci(dci, rnti, cell_);
  NewUe ue;
  ue.c_rnti = rnti;
  ue.slot = slot_index;

  // Decode the RRC Setup PDSCH when we still need its contents (no cached
  // copy yet), when the ablation forces it, or — in XOR mode — when the
  // configuration demands CRC verification of every recovery.
  const bool need_decode =
      !cached_rrc_.has_value() || config_.always_decode_msg4_pdsch ||
      (config_.mode == RachTrackMode::kXorRecovery &&
       config_.verify_msg4_pdsch);
  if (need_decode) {
    ++pdsch_decodes_;
    count(metric_pdsch_);
    const auto payload = decode_pdsch(alloc_from_grant(grant, cell_.pci),
                                      slot, grant.tbs, grid);
    if (payload) {
      const auto setup = RrcSetup::unpack(*payload);
      if (setup) {
        cached_rrc_ = *setup;
        ue.config = *setup;
        ue.verified = true;
        ++msg4_decoded_;
        count(metric_msg4_);
        return ue;
      }
    }
    // In XOR mode an unverifiable recovery is rejected (likely a false
    // positive); in MSG2-assisted mode the TC-RNTI match already vouches
    // for the DCI, so fall through to the cached/default configuration.
    if (config_.mode == RachTrackMode::kXorRecovery) {
      ++rejected_recoveries_;
      count(metric_rejected_);
      return std::nullopt;
    }
  }
  ++msg4_decoded_;
  count(metric_msg4_);
  ue.config = cached_rrc_.value_or(RrcSetup{});
  ue.verified = cached_rrc_.has_value();
  return ue;
}

std::vector<NewUe> RachTracker::process_slot(const ResourceGrid& grid,
                                             const SlotPoint& slot,
                                             std::uint64_t slot_index,
                                             std::vector<DecodedDci>& decoded) {
  thread_local PdcchScratch t_scratch;
  std::vector<NewUe> new_ues;
  process_slot(grid, slot, slot_index, slot_index, t_scratch, decoded,
               new_ues);
  return new_ues;
}

void RachTracker::process_slot(const ResourceGrid& grid,
                               const SlotPoint& slot,
                               std::uint64_t slot_index,
                               std::uint64_t air_slot,
                               PdcchScratch& scratch,
                               std::vector<DecodedDci>& decoded,
                               std::vector<NewUe>& new_ues) {
  const std::size_t new_ues_before = new_ues.size();
  if (cell_.coreset.n_prb == 0) {
    return;
  }

  // Prune TC-RNTIs whose MSG4 never showed up (failed RACHes); a stale
  // entry costs one CRC test per candidate forever otherwise.
  const std::uint64_t ttl = 4ull * std::max<std::uint64_t>(
                                        cell_.rach.prach_period_slots, 40);
  std::erase_if(pending_tc_, [&](const auto& entry) {
    return slot_index > entry.second + ttl;
  });

  // RA-RNTIs that could legitimately appear now.  A loaded gNB may answer
  // preambles well after the nominal response window (its MSG2s queue
  // behind PDCCH capacity), so scan back a full PRACH period as well.
  const std::uint64_t lookback = std::max<std::uint64_t>(
      cell_.rach.ra_response_window, cell_.rach.prach_period_slots);
  ra_rntis_.clear();
  for (std::uint64_t back = 0; back <= lookback; ++back) {
    if (air_slot < back) {
      break;
    }
    const std::uint64_t occasion = air_slot - back;
    if (is_prach_occasion(cell_.rach, occasion)) {
      ra_rntis_.push_back(ra_rnti_for_slot(cell_.rach, occasion));
    }
  }

  // One structure-of-arrays batch channel-decodes every common-SS
  // candidate of every aggregation level (the polar decode is
  // RNTI-independent); each RNTI hypothesis below is then only a CRC test
  // against the shared payload+CRC bits instead of a fresh channel decode.
  const unsigned payload_bits =
      dci_payload_size(DciFormat::kDl1_0, cell_.n_prb);
  const unsigned k_bits = payload_bits + kCrc24C.length();
  auto& locs = scratch.cand_locs;
  locs.clear();
  for (unsigned level : cell_.common_ss.agg_levels) {
    pdcch_candidates(cell_.coreset, cell_.common_ss, level, slot, 0,
                     scratch.cand_cces);
    for (unsigned cce : scratch.cand_cces) {
      locs.push_back({level, cce});
    }
  }
  decode_pdcch_batch(cell_.coreset, locs, payload_bits, slot, grid,
                     scratch);
  const auto& batch = scratch.batch;
  for (std::size_t j = 0; j < locs.size(); ++j) {
    if (!batch.ok[j]) {
      continue;
    }
    const unsigned level = locs[j].agg_level;
    const unsigned cce = locs[j].cce_start;
    const std::span<const std::uint8_t> bits(
        batch.bits.data() + j * k_bits, k_bits);
    // 1) MSG2: RA-RNTI-masked DCIs (computable without any secret).
    bool matched = false;
    for (Rnti ra : ra_rntis_) {
      if (!check_pdcch_crc(bits, ra)) {
        continue;
      }
      matched = true;
      DecodedDci out;
      out.slot = slot_index;
      out.rnti = ra;
      out.dci =
          Dci::unpack(DciFormat::kDl1_0, cell_.n_prb,
                      bits.first(payload_bits));
      out.grant = translate_dci(out.dci, ra, cell_);
      out.agg_level = level;
      out.cce_start = cce;
      decoded.push_back(out);
      if (config_.mode == RachTrackMode::kMsg2Assisted) {
        // Decode the RAR to learn the TC-RNTI.
        ++pdsch_decodes_;
        count(metric_pdsch_);
        const auto payload = decode_pdsch(
            alloc_from_grant(out.grant, cell_.pci), slot, out.grant.tbs,
            grid);
        if (payload) {
          const auto rar = Rar::unpack(*payload);
          if (rar && is_plausible_crnti(rar->tc_rnti)) {
            pending_tc_[rar->tc_rnti] = slot_index;
            ++msg2_decoded_;
            count(metric_msg2_);
          }
        }
      }
      break;
    }
    if (matched) {
      continue;
    }

    // 2) MSG4 via pending TC-RNTIs (MSG2-assisted mode).
    if (config_.mode == RachTrackMode::kMsg2Assisted) {
      for (auto it = pending_tc_.begin(); it != pending_tc_.end(); ++it) {
        if (!check_pdcch_crc(bits, it->first)) {
          continue;
        }
        DecodedDci out;
        out.slot = slot_index;
        out.rnti = it->first;
        out.dci = Dci::unpack(DciFormat::kDl1_0, cell_.n_prb,
                              bits.first(payload_bits));
        out.grant = translate_dci(out.dci, it->first, cell_);
        out.agg_level = level;
        out.cce_start = cce;
        decoded.push_back(out);
        if (auto ue = handle_msg4(it->first, out.dci, grid, slot,
                                  slot_index)) {
          new_ues.push_back(*ue);
        }
        pending_tc_.erase(it);
        matched = true;
        break;
      }
      if (matched) {
        continue;
      }
    }

    // 3) XOR recovery: recover the mask from the shared bits, validate.
    if (config_.mode == RachTrackMode::kXorRecovery) {
      const Rnti mask = kCrc24C.recover_mask(bits);
      // With the mask applied the full 24-bit CRC must check out; the
      // upper 8 CRC bits are unmasked, so this rejects 255/256 noise
      // decodes.
      if (!kCrc24C.check_masked(bits, mask)) {
        continue;
      }
      const Dci dci = Dci::unpack(DciFormat::kDl1_0, cell_.n_prb,
                                  bits.first(payload_bits));
      if (!is_plausible_crnti(mask) || !is_downlink(dci.format)) {
        ++rejected_recoveries_;
        count(metric_rejected_);
        continue;
      }
      if (auto ue = handle_msg4(mask, dci, grid, slot, slot_index)) {
        DecodedDci out;
        out.slot = slot_index;
        out.rnti = mask;
        out.dci = dci;
        out.grant = translate_dci(dci, mask, cell_);
        out.agg_level = level;
        out.cce_start = cce;
        decoded.push_back(out);
        new_ues.push_back(*ue);
      }
    }
  }
  if (metric_crnti_ != nullptr && new_ues.size() > new_ues_before) {
    metric_crnti_->inc(new_ues.size() - new_ues_before);
  }
}

}  // namespace nrs
