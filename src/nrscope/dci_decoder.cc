#include "nrscope/dci_decoder.h"

#include <optional>

#include "nr/grant.h"

namespace nrs {

void decode_ue_dcis(const ResourceGrid& grid, const SlotPoint& slot,
                    std::uint64_t slot_index, const CellConfig& cell,
                    const UeSearchContext& ue, PdcchScratch& scratch,
                    std::vector<DecodedDci>& out,
                    const AggLevelHistograms* level_us) {
  // The size-aligned pair hint: 1_1 resolves 0_1 too via the format bit.
  const DciFormat hint = ue.config.dl_format == DciFormat::kDl1_1
                             ? DciFormat::kDl1_1
                             : DciFormat::kDl1_0;
  for (unsigned level : ue.config.ue_ss.agg_levels) {
    std::optional<ScopedTimer> timer;
    if (level_us != nullptr &&
        (*level_us)[agg_level_index(level)] != nullptr) {
      timer.emplace(*(*level_us)[agg_level_index(level)]);
    }
    pdcch_candidates(cell.coreset, ue.config.ue_ss, level, slot, ue.rnti,
                     scratch.cand_cces);
    for (unsigned cce : scratch.cand_cces) {
      const auto result =
          decode_pdcch_candidate(cell.coreset, level, cce, hint, cell.n_prb,
                                 slot, grid, ue.rnti, scratch);
      if (!result) {
        continue;
      }
      DecodedDci dci;
      dci.slot = slot_index;
      dci.rnti = ue.rnti;
      dci.dci = result->dci;
      dci.grant = translate_dci(result->dci, ue.rnti, cell.n_prb, cell.pdsch,
                                ue.config.mcs_table,
                                ue.config.max_mimo_layers);
      dci.agg_level = level;
      dci.cce_start = cce;
      out.push_back(dci);
    }
  }
}

std::vector<DecodedDci> decode_ue_dcis(const ResourceGrid& grid,
                                       const SlotPoint& slot,
                                       std::uint64_t slot_index,
                                       const CellConfig& cell,
                                       const UeSearchContext& ue,
                                       const AggLevelHistograms* level_us) {
  thread_local PdcchScratch t_scratch;
  std::vector<DecodedDci> out;
  decode_ue_dcis(grid, slot, slot_index, cell, ue, t_scratch, out, level_us);
  return out;
}

}  // namespace nrs
