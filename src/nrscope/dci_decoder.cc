#include "nrscope/dci_decoder.h"

#include <optional>

#include "nr/grant.h"

namespace nrs {

void decode_ue_dcis(const ResourceGrid& grid, const SlotPoint& slot,
                    std::uint64_t slot_index, const CellConfig& cell,
                    const UeSearchContext& ue, PdcchScratch& scratch,
                    std::vector<DecodedDci>& out,
                    const AggLevelHistograms* level_us) {
  // The size-aligned pair hint: 1_1 resolves 0_1 too via the format bit.
  const DciFormat hint = ue.config.dl_format == DciFormat::kDl1_1
                             ? DciFormat::kDl1_1
                             : DciFormat::kDl1_0;
  const unsigned payload_bits = dci_payload_size(hint, cell.n_prb);
  const unsigned k_bits = payload_bits + kCrc24C.length();
  for (unsigned level : ue.config.ue_ss.agg_levels) {
    std::optional<ScopedTimer> timer;
    if (level_us != nullptr &&
        (*level_us)[agg_level_index(level)] != nullptr) {
      timer.emplace(*(*level_us)[agg_level_index(level)]);
    }
    pdcch_candidates(cell.coreset, ue.config.ue_ss, level, slot, ue.rnti,
                     scratch.cand_cces);
    // One structure-of-arrays batch channel-decodes every candidate of
    // this level; only the CRC test is per candidate.
    auto& locs = scratch.cand_locs;
    locs.clear();
    for (unsigned cce : scratch.cand_cces) {
      locs.push_back({level, cce});
    }
    if (decode_pdcch_batch(cell.coreset, locs, payload_bits, slot, grid,
                           scratch) == 0) {
      continue;
    }
    const auto& b = scratch.batch;
    for (std::size_t j = 0; j < locs.size(); ++j) {
      if (!b.ok[j]) {
        continue;
      }
      const std::span<const std::uint8_t> bits(b.bits.data() + j * k_bits,
                                               k_bits);
      if (!check_pdcch_crc(bits, ue.rnti)) {
        continue;
      }
      DecodedDci dci;
      dci.slot = slot_index;
      dci.rnti = ue.rnti;
      dci.dci = Dci::unpack(hint, cell.n_prb, bits.first(payload_bits));
      dci.grant = translate_dci(dci.dci, ue.rnti, cell.n_prb, cell.pdsch,
                                ue.config.mcs_table,
                                ue.config.max_mimo_layers);
      dci.agg_level = level;
      dci.cce_start = locs[j].cce_start;
      out.push_back(dci);
    }
  }
}

std::vector<DecodedDci> decode_ue_dcis(const ResourceGrid& grid,
                                       const SlotPoint& slot,
                                       std::uint64_t slot_index,
                                       const CellConfig& cell,
                                       const UeSearchContext& ue,
                                       const AggLevelHistograms* level_us) {
  thread_local PdcchScratch t_scratch;
  std::vector<DecodedDci> out;
  decode_ue_dcis(grid, slot, slot_index, cell, ue, t_scratch, out, level_us);
  return out;
}

}  // namespace nrs
