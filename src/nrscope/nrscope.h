// NrScope: the public facade of the telemetry tool (paper Fig. 2/4).
// Feed it one slot of IQ samples at a time; it synchronizes to the cell
// (PSS/SSS -> MIB), learns the configuration (SIB1), tracks UE
// associations through the RACH, blind-decodes every known UE's DCIs each
// TTI — sharding the UE list across a worker pool — and maintains per-UE
// and cell-wide telemetry.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/timing.h"
#include "common/types.h"
#include "common/worker_pool.h"
#include "nr/cell_config.h"
#include "nr/mib.h"
#include "nrscope/dci_decoder.h"
#include "nrscope/rach_tracker.h"
#include "nrscope/sync_monitor.h"
#include "nrscope/telemetry.h"
#include "phy/ofdm.h"

namespace nrs {

/// Engine synchronization state.  The happy path is forward-only
/// (kSearching -> kWaitSib1 -> kTracking); the SyncMonitor adds backward
/// edges through kResync when tracking health collapses (DESIGN.md
/// "Failure model and recovery").
enum class SyncState : std::uint8_t {
  kSearching,  ///< hunting for PSS/SSS + MIB
  kWaitSib1,   ///< synchronized; waiting for the SIB1 broadcast
  kTracking,   ///< full telemetry
  kResync,     ///< sync lost; re-running PSS/SSS + MIB, UE state retained
};

const char* to_string(SyncState state);

struct NrScopeConfig {
  unsigned n_prb = 51;        ///< carrier bandwidth to demodulate
  Scs scs = Scs::kHz30;
  unsigned n_dci_threads = 1; ///< DCI worker threads (paper Fig. 12)
  /// Decode each PDCCH candidate location once per slot and test every
  /// tracked RNTI against the result, instead of the paper's per-UE
  /// decode loop.  Sub-linear in the UE count once search spaces overlap;
  /// benchmarked against the paper's design in bench_ablation_dedupe.
  bool dedupe_candidates = false;
  RachTrackerConfig rach;
  /// Drop UEs with no DCI for this long (ghost/idle cleanup).
  std::uint64_t ue_inactivity_slots = 40000;
  std::uint64_t rate_window_slots = 1000;
  bool keep_capacity_history = false;  ///< per-slot RE accounting (Fig. 14)
  SsbLocation ssb{0};
  /// Sync-health thresholds and the resync grace window.
  SyncMonitorConfig sync;

  /// Sanity-check the configuration; returns a descriptive error for the
  /// first violated constraint, or nullopt when everything is usable.  The
  /// NrScope / NrScopePipeline constructors call this and throw
  /// std::invalid_argument instead of silently accepting nonsense values.
  [[nodiscard]] std::optional<std::string> validate() const;
};

/// Outcome of processing one slot.
struct SlotResult {
  std::uint64_t slot = 0;
  std::vector<DecodedDci> dcis;
  std::vector<NewUe> new_ues;
  std::optional<Mib> mib;
  bool sib1_decoded = false;
  double processing_time_us = 0.0;  ///< signal processing + DCI decoding
  /// Engine state after this slot: lets sinks and the fleet aggregator
  /// distinguish "no traffic" (kTracking, empty dcis) from "blind"
  /// (kResync / degraded).
  SyncState sync_state = SyncState::kSearching;
  /// Tracking continued but health is marginal (fading SSB quality or a
  /// long blind-decode dry spell building up).
  bool degraded = false;

  [[nodiscard]] bool operator==(const SlotResult&) const = default;
};

class NrScope {
 public:
  using State = SyncState;

  explicit NrScope(const NrScopeConfig& config);
  ~NrScope();

  NrScope(const NrScope&) = delete;
  NrScope& operator=(const NrScope&) = delete;

  /// Process one slot of IQ samples (exactly one slot's worth at the
  /// nominal rate).  Returns the decode results for this slot.
  SlotResult process_slot(std::span<const cf32> samples);

  /// Same, starting from an already-demodulated grid (used by the
  /// pipeline workers which demodulate on their own threads).
  SlotResult process_grid(const ResourceGrid& grid);

  /// Allocation-free variants reusing a caller-owned result (its vectors
  /// are cleared, keeping their capacity): in the steady tracking state the
  /// whole slot path — demodulation, blind decoding, telemetry — performs
  /// zero heap allocations after warm-up (hot-path memory discipline,
  /// DESIGN.md; verified by test_alloc_steady_state).
  void process_slot(std::span<const cf32> samples, SlotResult& result);
  void process_grid(const ResourceGrid& grid, SlotResult& result);

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] std::uint16_t pci() const { return pci_; }
  [[nodiscard]] const std::optional<Mib>& mib() const { return mib_; }
  [[nodiscard]] const CellConfig& cell() const { return cell_; }

  /// UEs currently tracked.
  [[nodiscard]] std::vector<Rnti> known_ues() const;
  /// Read-only telemetry view.  Registration of externally-known UEs — the
  /// one legitimate mutation — goes through the named add_ue() method.
  [[nodiscard]] const CellTelemetry& telemetry() const { return telemetry_; }

  /// Point-in-time view of every nrscope.* / rach.* / telemetry.* metric.
  [[nodiscard]] MetricsSnapshot metrics() const {
    return metrics_registry_.snapshot();
  }
  /// The live registry (the pipeline and sinks register into it too).
  [[nodiscard]] MetricsRegistry& metrics_registry() {
    return metrics_registry_;
  }
  [[nodiscard]] const MetricsRegistry& metrics_registry() const {
    return metrics_registry_;
  }

  /// Manually register a UE (e.g. replaying a capture that starts after
  /// the UE's RACH) — mirrors the paper's note that NSA cells need manual
  /// cell info input.
  void add_ue(Rnti rnti, const RrcSetup& config);

  /// RACH-discovered UE: like add_ue, but when the C-RNTI is already
  /// tracked this is the gNB *reusing* a released value for a newcomer —
  /// the old context and its telemetry are dropped and rebound fresh
  /// (counted in nrscope.rnti_evictions) instead of silently inheriting
  /// the predecessor's HARQ/rate state.
  void bind_rach_ue(Rnti rnti, const RrcSetup& config);

  /// Declare `missed` slots lost in the input stream (a known gap, e.g.
  /// an SDR overflow report): the slot clock advances so the frame phase
  /// stays locked across the gap — no resync needed.  Unknown timing
  /// jumps, by contrast, surface as sync-health collapse and resync.
  void note_stream_gap(std::uint64_t missed);

  /// Force the tracking engine into kResync (e.g. an external front-end
  /// event the monitor cannot see).  No-op unless currently kTracking.
  void force_resync();

  /// Sync-health monitor (quality score, loss/resync statistics).
  [[nodiscard]] const SyncMonitor& sync_monitor() const { return sync_; }

  [[nodiscard]] std::uint64_t slots_processed() const { return slot_index_; }
  [[nodiscard]] const RachTracker& rach_tracker() const { return rach_; }
  [[nodiscard]] double slot_duration() const {
    return slot_duration_s(cell_.scs);
  }

 private:
  /// Per-slot working set, reused across slots so the tracking path stays
  /// allocation-free after warm-up.  Every vector is cleared (capacity
  /// kept) or grown-only at the top of each slot.
  struct SlotScratch {
    /// One candidate a UE monitors this slot (dedupe mode).
    struct CandidateRef {
      unsigned level;
      unsigned cce;
      unsigned payload_bits;
      std::size_t ue_index;
    };
    /// One distinct (level, cce, payload_bits) location with its watcher
    /// range in `cands` and per-location decode results.  Workers own
    /// disjoint locations, so no merge lock is needed; the results are
    /// folded into `per_ue` serially after the batch.
    struct LocationSlot {
      unsigned level = 0;
      unsigned cce = 0;
      unsigned payload_bits = 0;
      std::size_t first = 0;  ///< range into `cands`
      std::size_t count = 0;
      std::vector<DecodedDci> results;
      std::vector<std::size_t> result_ue;  ///< watcher index per result
    };

    std::vector<std::vector<DecodedDci>> per_ue;
    std::vector<DecodedDci> user_dcis;
    std::vector<std::size_t> user_dci_index;  ///< into SlotResult::dcis
    std::vector<CandidateRef> cands;
    std::vector<LocationSlot> locations;  ///< grow-only; first n are live
    /// Location list handed to decode_pdcch_batch (serial dedupe path).
    std::vector<PdcchCandidateLoc> batch_locs;
  };

  /// A successful PSS/SSS + MIB detection, before any state is mutated
  /// (resync needs to compare the PCI against the tracked cell first).
  struct Acquisition {
    std::uint16_t pci = 0;
    unsigned prb_start = 0;
    Mib mib;
  };

  void search(const ResourceGrid& grid, SlotResult& result);
  void wait_sib1(const ResourceGrid& grid, SlotResult& result);
  void track(const ResourceGrid& grid, SlotResult& result);
  void resync(const ResourceGrid& grid, SlotResult& result);
  [[nodiscard]] std::optional<Acquisition> detect_cell(
      const ResourceGrid& grid) const;
  void apply_acquisition(const Acquisition& acq, SlotResult& result);
  void enter_resync();
  void flush_tracked_state();
  [[nodiscard]] float measure_ssb_quality(const ResourceGrid& grid) const;
  [[nodiscard]] bool ssb_expected(const SlotPoint& now) const;
  void decode_dcis_deduped(const ResourceGrid& grid, const SlotPoint& now);
  void cleanup_stale_ues();
  [[nodiscard]] SlotPoint slot_point() const;
  /// The cell's own slot clock, reconstructed from the locked frame phase
  /// and the MIB SFN.  Diverges from slot_index_ after a resync onto a
  /// restarted cell; PRACH-occasion math must follow this clock.
  [[nodiscard]] std::uint64_t air_slot_index() const;
  [[nodiscard]] unsigned data_res_total() const;

  /// PDCCH scratch for the current thread during a DCI batch: slot 0 for
  /// the caller thread, slot i+1 for DCI-pool worker i.  Workers of other
  /// pools (e.g. the pipeline's demod workers) report -1 from
  /// index_in_pool() and land on slot 0, which is safe because NrScope is
  /// single-caller: only one external thread runs a slot at a time.
  [[nodiscard]] PdcchScratch& worker_scratch() {
    const int idx = dci_pool_ ? dci_pool_->index_in_pool() : -1;
    return pdcch_scratch_[static_cast<std::size_t>(idx + 1)];
  }
  void decode_ue_shard(std::size_t i);
  void decode_location_shard(std::size_t w);

  NrScopeConfig config_;
  MetricsRegistry metrics_registry_;  ///< before the members that cache into it
  OfdmDemodulator demodulator_;
  std::unique_ptr<WorkerPool> dci_pool_;
  State state_ = State::kSearching;
  CellConfig cell_;
  std::optional<Mib> mib_;
  std::uint16_t pci_ = 0;
  RachTracker rach_;
  CellTelemetry telemetry_;
  SyncMonitor sync_;
  SyncLossCause resync_cause_ = SyncLossCause::kNone;
  std::uint64_t resync_entered_slot_ = 0;
  bool sib1_seen_ = false;  ///< cell_ carries a full SIB1 configuration
  // Hot-path metric handles, resolved once at construction.
  Counter* m_slots_searching_ = nullptr;
  Counter* m_slots_wait_sib1_ = nullptr;
  Counter* m_slots_tracking_ = nullptr;
  Counter* m_slots_resync_ = nullptr;
  Counter* m_degraded_slots_ = nullptr;
  Counter* m_stream_gap_slots_ = nullptr;
  Counter* m_stale_evictions_ = nullptr;
  Counter* m_rnti_evictions_ = nullptr;
  Counter* m_dedupe_candidates_ = nullptr;
  Counter* m_dedupe_locations_ = nullptr;
  Histogram* m_demod_us_ = nullptr;
  Histogram* m_blind_decode_us_ = nullptr;
  AggLevelHistograms m_agg_level_us_{};
  std::vector<UeSearchContext> ues_;
  std::vector<std::uint64_t> ue_last_seen_;
  SlotScratch scratch_;
  /// One PDCCH scratch per batch participant (see worker_scratch()).
  std::vector<PdcchScratch> pdcch_scratch_;
  /// Persistent demodulation target for process_slot.
  ResourceGrid rx_grid_;
  /// Context for the batch shard functions (set before each run_batch).
  const ResourceGrid* batch_grid_ = nullptr;
  SlotPoint batch_now_;
  /// Shard trampolines built once in the constructor: they capture only
  /// `this`, so neither std::function ever heap-allocates, and run_batch
  /// takes them by reference slot after slot.
  std::function<void(std::size_t)> decode_ue_fn_;
  std::function<void(std::size_t)> decode_location_fn_;
  std::uint64_t slot_index_ = 0;
  /// Frame phase: slot-in-frame of feed index 0, learned from the SSB.
  std::int64_t frame_phase_ = 0;
  bool phase_locked_ = false;
};

}  // namespace nrs
