// Push-mode output API for the sniffer pipeline.  Instead of pulling
// results through NrScopePipeline::poll_result(), callers can attach any
// number of SlotSinks; the collector thread then delivers each in-order
// SlotResult to every sink and calls on_finish() once after the last slot.
// TelemetryLogWriter (the paper's "Log File" sink) implements this
// interface, and MetricsCsvSink periodically dumps the MetricsRegistry so a
// run leaves a machine-readable per-stage timing record behind.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>

#include "common/metrics.h"
#include "nrscope/nrscope.h"

namespace nrs {

class SlotSink {
 public:
  virtual ~SlotSink() = default;

  /// One completed slot, called in slot order on the collector thread.
  virtual void on_slot(const SlotResult& result) = 0;

  /// Called exactly once after the final slot, before pipeline shutdown.
  virtual void on_finish() {}
};

/// Appends a MetricsSnapshot to a CSV file every `period_slots` slots (and
/// once more at the end of the run).  Rows are
/// `slot,metric,kind,value,count,sum,min,max,p50,p95,p99`.
class MetricsCsvSink : public SlotSink {
 public:
  MetricsCsvSink(const std::string& path, const MetricsRegistry& registry,
                 std::uint64_t period_slots = 1000);

  void on_slot(const SlotResult& result) override;
  void on_finish() override;

 private:
  void dump();

  std::ofstream out_;
  const MetricsRegistry* registry_;
  std::uint64_t period_slots_;
  std::uint64_t seen_ = 0;
  std::uint64_t last_slot_ = 0;
};

}  // namespace nrs
