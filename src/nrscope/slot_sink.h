// Push-mode output API for the sniffer pipeline.  Instead of pulling
// results through NrScopePipeline::poll_result(), callers can attach any
// number of SlotSinks; the collector thread then delivers each in-order
// SlotResult to every sink and calls on_finish() once after the last slot.
// TelemetryLogWriter (the paper's "Log File" sink) implements this
// interface, and MetricsCsvSink periodically dumps the MetricsRegistry so a
// run leaves a machine-readable per-stage timing record behind.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/metrics.h"
#include "nrscope/nrscope.h"

namespace nrs {

class SlotSink {
 public:
  virtual ~SlotSink() = default;

  /// One completed slot, called in slot order on the collector thread.
  virtual void on_slot(const SlotResult& result) = 0;

  /// Called exactly once after the final slot, before pipeline shutdown.
  virtual void on_finish() {}
};

/// The one sink-attachment surface shared by NrScopePipeline and the fleet
/// orchestrator: named sinks with uniform fault isolation.  A sink whose
/// on_slot()/on_finish() throws has the error counted — in the chain-wide
/// total (`<prefix>sink_errors`) and in its own per-sink counter
/// (`<prefix>sink.<name>.errors`) — and is detached once its error budget
/// (default 1) is spent; the run and the other sinks continue.
///
/// deliver_slot()/deliver_finish() are called by exactly one thread (the
/// pipeline collector); add()/detach() are safe from any thread.
class SinkChain {
 public:
  /// `registry` receives the error counters; nullptr skips per-sink
  /// metrics (errors are still counted internally for detachment).
  explicit SinkChain(MetricsRegistry* registry = nullptr,
                     std::string metric_prefix = "pipeline.");

  /// Attach a sink under `name` (replaces nothing: duplicate names get a
  /// numeric suffix so per-sink metrics stay distinct).  `error_limit` is
  /// the number of throws tolerated before auto-detach; 0 means detach is
  /// disabled (errors are only counted).  Returns the registered name.
  std::string add(std::string name, std::shared_ptr<SlotSink> sink,
                  std::uint64_t error_limit = 1);

  /// Detach by name; false when no such sink is attached.
  bool detach(std::string_view name);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] bool empty() const;
  [[nodiscard]] std::vector<std::string> names() const;

  /// Fan one slot out to every attached sink (fault-isolated).
  void deliver_slot(const SlotResult& result);
  /// Fan on_finish() out to every attached sink (fault-isolated).
  void deliver_finish();

 private:
  struct Entry {
    std::string name;
    std::shared_ptr<SlotSink> sink;
    Counter* errors = nullptr;  ///< per-sink counter (may be null)
    std::uint64_t error_count = 0;
    std::uint64_t error_limit = 1;
  };

  /// Count one error against entries_[i]; returns true when the sink must
  /// be detached.  Caller holds mutex_.
  bool note_error_locked(std::size_t i);

  MetricsRegistry* registry_;
  std::string prefix_;
  Counter* total_errors_ = nullptr;
  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
  std::uint64_t auto_names_ = 0;
};

/// Appends a MetricsSnapshot to a CSV file every `period_slots` slots (and
/// once more at the end of the run).  Rows are
/// `slot,metric,kind,value,count,sum,min,max,p50,p95,p99`.
class MetricsCsvSink : public SlotSink {
 public:
  MetricsCsvSink(const std::string& path, const MetricsRegistry& registry,
                 std::uint64_t period_slots = 1000);

  void on_slot(const SlotResult& result) override;
  void on_finish() override;

 private:
  void dump();

  std::ofstream out_;
  const MetricsRegistry* registry_;
  std::uint64_t period_slots_;
  std::uint64_t seen_ = 0;
  std::uint64_t last_slot_ = 0;
};

}  // namespace nrs
