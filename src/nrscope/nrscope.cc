#include "nrscope/nrscope.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "nr/grant.h"
#include "nr/pdsch.h"
#include "nr/rach.h"
#include "nr/sib1.h"
#include "phy/pss.h"
#include "phy/sss.h"

namespace nrs {
namespace {

/// PSS/SSS sit `kSyncScOffset` subcarriers into the 12-PRB SSB window.
constexpr unsigned kSyncScOffset =
    (SsbLocation::kNPrb * kSubcarriersPerPrb - kPssLength) / 2;

PdschAllocation alloc_from_grant(const Grant& grant, std::uint16_t pci) {
  PdschAllocation alloc;
  alloc.rnti = grant.rnti;
  alloc.prb_start = grant.prb_start;
  alloc.prb_len = grant.prb_len;
  alloc.start_symbol = grant.start_symbol;
  alloc.n_symbols = grant.n_symbols;
  alloc.modulation = grant.modulation;
  alloc.n_id = pci;
  return alloc;
}

/// Throw-on-invalid wrapper so the config is checked before any other
/// member (the demodulator in particular) is built from it.
const NrScopeConfig& validated(const NrScopeConfig& config) {
  if (auto error = config.validate()) {
    throw std::invalid_argument("NrScopeConfig: " + *error);
  }
  return config;
}

}  // namespace

const char* to_string(SyncState state) {
  switch (state) {
    case SyncState::kSearching:
      return "searching";
    case SyncState::kWaitSib1:
      return "wait_sib1";
    case SyncState::kTracking:
      return "tracking";
    case SyncState::kResync:
      return "resync";
  }
  return "?";
}

std::optional<std::string> NrScopeConfig::validate() const {
  if (n_prb < SsbLocation::kNPrb || n_prb > 275) {
    return "n_prb must be in [12, 275], got " + std::to_string(n_prb);
  }
  if (ssb.prb_start + SsbLocation::kNPrb > n_prb) {
    return "ssb.prb_start " + std::to_string(ssb.prb_start) +
           " leaves no room for the 12-PRB SSB window in " +
           std::to_string(n_prb) + " PRBs";
  }
  if (n_dci_threads < 1) {
    return "n_dci_threads must be >= 1, got " +
           std::to_string(n_dci_threads);
  }
  if (rate_window_slots == 0) {
    return "rate_window_slots must be > 0";
  }
  if (ue_inactivity_slots == 0) {
    return "ue_inactivity_slots must be > 0";
  }
  if (auto error = sync.validate()) {
    return error;
  }
  return std::nullopt;
}

NrScope::NrScope(const NrScopeConfig& config)
    : config_(validated(config)),
      demodulator_(make_ofdm_config(config.n_prb)), rach_(config.rach),
      telemetry_(config.scs, config.rate_window_slots, &metrics_registry_),
      sync_(config.sync, metrics_registry_), rx_grid_(config.n_prb) {
  cell_.n_prb = config_.n_prb;
  cell_.scs = config_.scs;
  if (config_.n_dci_threads > 1) {
    dci_pool_ = std::make_unique<WorkerPool>(config_.n_dci_threads);
  }
  // One PDCCH scratch per possible batch participant: the calling thread
  // plus every DCI worker (see worker_scratch()).
  pdcch_scratch_.resize(1 + (dci_pool_ ? dci_pool_->size() : 0));
  // Capture-only-`this` trampolines: small enough for std::function's
  // inline storage, built once so the per-slot batches never allocate.
  decode_ue_fn_ = [this](std::size_t i) { decode_ue_shard(i); };
  decode_location_fn_ = [this](std::size_t w) { decode_location_shard(w); };
  rach_.bind_metrics(metrics_registry_);
  m_slots_searching_ = &metrics_registry_.counter("nrscope.slots_searching");
  m_slots_wait_sib1_ = &metrics_registry_.counter("nrscope.slots_wait_sib1");
  m_slots_tracking_ = &metrics_registry_.counter("nrscope.slots_tracking");
  m_slots_resync_ = &metrics_registry_.counter("nrscope.slots_resync");
  m_degraded_slots_ = &metrics_registry_.counter("nrscope.degraded_slots");
  m_stream_gap_slots_ =
      &metrics_registry_.counter("nrscope.stream_gap_slots");
  m_stale_evictions_ =
      &metrics_registry_.counter("nrscope.stale_ue_evictions");
  m_rnti_evictions_ = &metrics_registry_.counter("nrscope.rnti_evictions");
  m_dedupe_candidates_ =
      &metrics_registry_.counter("nrscope.dedupe_candidates");
  m_dedupe_locations_ =
      &metrics_registry_.counter("nrscope.dedupe_locations");
  m_demod_us_ = &metrics_registry_.histogram("nrscope.demod_us");
  m_blind_decode_us_ =
      &metrics_registry_.histogram("nrscope.blind_decode_us");
  for (unsigned level : {1u, 2u, 4u, 8u, 16u}) {
    m_agg_level_us_[agg_level_index(level)] = &metrics_registry_.histogram(
        "nrscope.blind_decode_us.al" + std::to_string(level));
  }
}

NrScope::~NrScope() = default;

SlotPoint NrScope::slot_point() const {
  const unsigned spf = slots_per_frame(cell_.scs);
  SlotPoint point;
  point.scs = cell_.scs;
  if (!phase_locked_) {
    point.sfn = 0;
    point.slot = static_cast<std::uint32_t>(slot_index_ % spf);
    return point;
  }
  const std::int64_t rel =
      static_cast<std::int64_t>(slot_index_) - frame_phase_;
  point.slot = static_cast<std::uint32_t>(((rel % spf) + spf) % spf);
  point.sfn = static_cast<std::uint32_t>(
      ((rel / spf) + (mib_ ? mib_->sfn : 0) + 1024) & 0x3FF);
  return point;
}

std::uint64_t NrScope::air_slot_index() const {
  // Equals slot_index_ only while the sniffer has listened since the cell
  // booted; a restarted cell rebases its clock, and the re-locked frame
  // phase plus the new MIB's SFN recover where it actually is.
  if (!phase_locked_ || !mib_) {
    return slot_index_;
  }
  const unsigned spf = slots_per_frame(cell_.scs);
  const std::int64_t rel =
      static_cast<std::int64_t>(slot_index_) - frame_phase_;
  return static_cast<std::uint64_t>(
      rel + static_cast<std::int64_t>(mib_->sfn) * spf);
}

unsigned NrScope::data_res_total() const {
  // PDSCH capacity of a downlink TTI: full band over the 12 data symbols.
  const std::uint64_t abs_slot = phase_locked_
                                     ? static_cast<std::uint64_t>(
                                           static_cast<std::int64_t>(
                                               slot_index_) -
                                           frame_phase_)
                                     : slot_index_;
  if (!cell_.tdd.is_downlink(abs_slot)) {
    return 0;
  }
  return cell_.n_prb * kSubcarriersPerPrb * 12u;
}

std::vector<Rnti> NrScope::known_ues() const {
  std::vector<Rnti> rntis;
  rntis.reserve(ues_.size());
  for (const auto& ue : ues_) {
    rntis.push_back(ue.rnti);
  }
  return rntis;
}

void NrScope::add_ue(Rnti rnti, const RrcSetup& config) {
  for (auto& ue : ues_) {
    if (ue.rnti == rnti) {
      ue.config = config;
      return;
    }
  }
  ues_.push_back(UeSearchContext{rnti, config});
  ue_last_seen_.push_back(slot_index_);
  telemetry_.add_ue(rnti, slot_index_);
}

void NrScope::bind_rach_ue(Rnti rnti, const RrcSetup& config) {
  for (std::size_t i = 0; i < ues_.size(); ++i) {
    if (ues_[i].rnti == rnti) {
      // C-RNTI reuse: the RACH just granted a tracked value to a new UE,
      // so the old binding is stale — rebind with fresh telemetry.
      ues_[i].config = config;
      ue_last_seen_[i] = slot_index_;
      telemetry_.rebind_ue(rnti, slot_index_);
      m_rnti_evictions_->inc();
      return;
    }
  }
  add_ue(rnti, config);
}

void NrScope::cleanup_stale_ues() {
  for (std::size_t i = 0; i < ues_.size();) {
    if (slot_index_ - ue_last_seen_[i] > config_.ue_inactivity_slots) {
      telemetry_.remove_ue(ues_[i].rnti);
      m_stale_evictions_->inc();
      ues_.erase(ues_.begin() + static_cast<std::ptrdiff_t>(i));
      ue_last_seen_.erase(ue_last_seen_.begin() +
                          static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

std::optional<NrScope::Acquisition> NrScope::detect_cell(
    const ResourceGrid& grid) const {
  // PSS on some symbol-0 subcarrier offset?
  const auto pss = detect_pss(grid.symbol(SsbLocation::kPssSymbol), 0.45f);
  if (!pss || pss->sc_offset < kSyncScOffset) {
    return std::nullopt;
  }
  const unsigned prb_start = (pss->sc_offset - kSyncScOffset) /
                             kSubcarriersPerPrb;
  // SSS confirms and completes the PCI.
  const unsigned sss_sc =
      prb_start * kSubcarriersPerPrb + kSyncScOffset;
  if (sss_sc + kPssLength > grid.n_subcarriers()) {
    return std::nullopt;
  }
  std::vector<cf32> sss_res(kPssLength);
  for (unsigned n = 0; n < kPssLength; ++n) {
    sss_res[n] = grid.at(SsbLocation::kSssSymbol, sss_sc + n);
  }
  const auto sss = detect_sss(sss_res, pss->nid2, 0.3f);
  if (!sss) {
    return std::nullopt;
  }
  Acquisition acq;
  acq.pci = static_cast<std::uint16_t>(3 * sss->nid1 + pss->nid2);
  acq.prb_start = prb_start;
  const auto mib = decode_mib(acq.pci, SsbLocation{prb_start},
                              SlotPoint{cell_.scs, 0, 0}, grid);
  if (!mib) {
    return std::nullopt;
  }
  acq.mib = *mib;
  return acq;
}

void NrScope::apply_acquisition(const Acquisition& acq, SlotResult& result) {
  // Synchronized: SSBs are sent in slot 0 of a frame.
  pci_ = acq.pci;
  mib_ = acq.mib;
  config_.ssb = SsbLocation{acq.prb_start};
  frame_phase_ = static_cast<std::int64_t>(slot_index_);
  phase_locked_ = true;
  cell_.pci = acq.pci;
  cell_.coreset.rb_start = acq.mib.coreset0_rb_start;
  cell_.coreset.n_prb = acq.mib.coreset0_n_prb6 * 6u;
  cell_.coreset.duration = acq.mib.coreset0_duration;
  cell_.coreset.shift = acq.pci;
  cell_.coreset.n_id = acq.pci;
  cell_.scs = acq.mib.scs_common;
  result.mib = acq.mib;
}

void NrScope::search(const ResourceGrid& grid, SlotResult& result) {
  if (const auto acq = detect_cell(grid)) {
    apply_acquisition(*acq, result);
    state_ = State::kWaitSib1;
  }
}

void NrScope::wait_sib1(const ResourceGrid& grid, SlotResult& result) {
  const SlotPoint now = slot_point();
  for (unsigned level : cell_.common_ss.agg_levels) {
    for (unsigned cce :
         pdcch_candidates(cell_.coreset, cell_.common_ss, level, now, 0)) {
      const auto dci_result =
          decode_pdcch_candidate(cell_.coreset, level, cce,
                                 DciFormat::kDl1_0, cell_.n_prb, now, grid,
                                 kSiRnti);
      if (!dci_result) {
        continue;
      }
      const Grant grant = translate_dci(dci_result->dci, kSiRnti, cell_);
      const auto payload = decode_pdsch(alloc_from_grant(grant, pci_), now,
                                        grant.tbs, grid);
      if (!payload) {
        continue;
      }
      const auto sib = Sib1::unpack(*payload);
      if (!sib) {
        continue;
      }
      // Learn the full cell configuration; the PCI-derived fields were
      // already set from the MIB and must win over SIB defaults.
      sib->apply_to(cell_);
      rach_.set_cell(cell_);
      result.sib1_decoded = true;
      sib1_seen_ = true;
      state_ = State::kTracking;
      sync_.on_lock();
      DecodedDci out;
      out.slot = slot_index_;
      out.rnti = kSiRnti;
      out.dci = dci_result->dci;
      out.grant = grant;
      out.agg_level = level;
      out.cce_start = cce;
      result.dcis.push_back(out);
      return;
    }
  }
}

bool NrScope::ssb_expected(const SlotPoint& now) const {
  return phase_locked_ && now.slot == 0 && cell_.ssb_period_frames > 0 &&
         now.sfn % cell_.ssb_period_frames == 0;
}

float NrScope::measure_ssb_quality(const ResourceGrid& grid) const {
  // PSS correlation at the locked SSB location — stack buffers only, so
  // the per-SSB health check stays on the zero-allocation slot path.
  const unsigned sc =
      config_.ssb.prb_start * kSubcarriersPerPrb + kSyncScOffset;
  if (sc + kPssLength > grid.n_subcarriers()) {
    return 0.0f;
  }
  const std::array<float, kPssLength> seq = pss_sequence(pci_ % 3);
  return partial_correlation(
      grid.symbol(SsbLocation::kPssSymbol).subspan(sc, kPssLength), seq);
}

void NrScope::enter_resync() {
  resync_cause_ = sync_.loss_cause();
  resync_entered_slot_ = slot_index_;
  phase_locked_ = false;
  sync_.resync_started(slot_index_);
  state_ = State::kResync;
}

void NrScope::force_resync() {
  if (state_ == State::kTracking) {
    enter_resync();
  }
}

void NrScope::note_stream_gap(std::uint64_t missed) {
  // A declared gap (SDR overflow): the missing slots still happened on
  // air, so advancing the slot clock keeps the frame phase locked and no
  // resync is needed.
  slot_index_ += missed;
  m_stream_gap_slots_->inc(missed);
}

void NrScope::flush_tracked_state() {
  // The cell is gone (PCI change or grace expiry): per-UE telemetry must
  // not bleed into whatever is acquired next.
  for (const auto& ue : ues_) {
    telemetry_.remove_ue(ue.rnti);
  }
  ues_.clear();
  ue_last_seen_.clear();
  rach_ = RachTracker(config_.rach);
  rach_.bind_metrics(metrics_registry_);
  cell_ = CellConfig{};
  cell_.n_prb = config_.n_prb;
  cell_.scs = config_.scs;
  sib1_seen_ = false;
  mib_.reset();
  phase_locked_ = false;
}

void NrScope::resync(const ResourceGrid& grid, SlotResult& result) {
  if (const auto acq = detect_cell(grid)) {
    const bool pci_changed = acq->pci != pci_;
    if (pci_changed) {
      flush_tracked_state();
    }
    apply_acquisition(*acq, result);
    sync_.resync_finished(slot_index_, pci_changed);
    if (!pci_changed && sib1_seen_ &&
        resync_cause_ == SyncLossCause::kSsbQuality) {
      // Same cell, configuration intact (the fault was channel-level):
      // resume full telemetry on the retained UE state immediately.
      state_ = State::kTracking;
      sync_.on_lock();
    } else {
      // New cell, or the old one stopped matching what we decode with:
      // re-read SIB1 first.  On a same-PCI recovery the UE state stays
      // (telemetry continuity); stale entries age out normally.
      state_ = State::kWaitSib1;
    }
    resync_cause_ = SyncLossCause::kNone;
    return;
  }
  if (slot_index_ - resync_entered_slot_ >=
      config_.sync.resync_grace_slots) {
    // Grace expired with no cell found: drop the retained state and fall
    // back to a cold search.
    flush_tracked_state();
    sync_.resync_abandoned(slot_index_);
    resync_cause_ = SyncLossCause::kNone;
    state_ = State::kSearching;
  }
}

void NrScope::decode_ue_shard(std::size_t i) {
  decode_ue_dcis(*batch_grid_, batch_now_, slot_index_, cell_, ues_[i],
                 worker_scratch(), scratch_.per_ue[i], &m_agg_level_us_);
}

void NrScope::track(const ResourceGrid& grid, SlotResult& result) {
  const SlotPoint now = slot_point();

  // Sync health, part 1: on the slots where the cell owes us an SSB,
  // measure the PSS correlation at the locked location.  Fades, timing
  // jumps and CFO all collapse it; a restarted cell moves its SSB away
  // from the expected slots, which collapses it just the same.
  if (ssb_expected(now)) {
    sync_.observe_ssb(measure_ssb_quality(grid));
  }

  // RACH thread's work: new-UE discovery in the common search space.
  rach_.process_slot(grid, now, slot_index_, air_slot_index(),
                     pdcch_scratch_[0], result.dcis, result.new_ues);
  for (const auto& ue : result.new_ues) {
    bind_rach_ue(ue.c_rnti, ue.config);
  }

  // DCI threads: the UE list is sharded across the pool (paper section 4).
  auto& per_ue = scratch_.per_ue;
  if (per_ue.size() < ues_.size()) {
    per_ue.resize(ues_.size());  // grow-only: keeps per-UE capacities
  }
  for (std::size_t i = 0; i < ues_.size(); ++i) {
    per_ue[i].clear();
  }
  batch_grid_ = &grid;
  batch_now_ = now;
  {
    ScopedTimer blind_timer(*m_blind_decode_us_);
    if (config_.dedupe_candidates) {
      decode_dcis_deduped(grid, now);
    } else if (dci_pool_ && ues_.size() > 1) {
      dci_pool_->run_batch(ues_.size(), decode_ue_fn_);
    } else {
      for (std::size_t i = 0; i < ues_.size(); ++i) {
        decode_ue_shard(i);
      }
    }
  }
  batch_grid_ = nullptr;
  for (std::size_t i = 0; i < ues_.size(); ++i) {
    if (!per_ue[i].empty()) {
      ue_last_seen_[i] = slot_index_;
    }
    result.dcis.insert(result.dcis.end(), per_ue[i].begin(),
                       per_ue[i].end());
  }

  // Deduplicate (a DCI can surface via both the RACH scan and a UE scan
  // when search spaces overlap).
  std::sort(result.dcis.begin(), result.dcis.end(),
            [](const DecodedDci& a, const DecodedDci& b) {
              return std::tie(a.rnti, a.cce_start, a.agg_level) <
                     std::tie(b.rnti, b.cce_start, b.agg_level);
            });
  result.dcis.erase(
      std::unique(result.dcis.begin(), result.dcis.end(),
                  [](const DecodedDci& a, const DecodedDci& b) {
                    return a.rnti == b.rnti && a.cce_start == b.cce_start &&
                           a.agg_level == b.agg_level;
                  }),
      result.dcis.end());

  // Telemetry update: per-UE counters for plausible C-RNTIs only (SI/RA
  // broadcasts are not user telemetry).  Carrying the source index of
  // every user DCI makes the retransmission-flag write-back below O(n)
  // instead of the old all-pairs rescan.
  auto& user_dcis = scratch_.user_dcis;
  auto& user_dci_index = scratch_.user_dci_index;
  user_dcis.clear();
  user_dci_index.clear();
  for (std::size_t j = 0; j < result.dcis.size(); ++j) {
    if (is_plausible_crnti(result.dcis[j].rnti)) {
      user_dcis.push_back(result.dcis[j]);
      user_dci_index.push_back(j);
    }
  }
  telemetry_.observe_slot(slot_index_, user_dcis, data_res_total(),
                          config_.keep_capacity_history);
  // Propagate the retransmission flags back to the result.
  for (std::size_t j = 0; j < user_dcis.size(); ++j) {
    result.dcis[user_dci_index[j]].is_retx = user_dcis[j].is_retx;
  }

  cleanup_stale_ues();

  // Sync health, part 2: blind-decode yield, then the verdict.  kLost
  // falls back to kResync (tracked-UE state retained for the grace
  // window); kDegraded keeps tracking but flags the slot so downstream
  // consumers can tell "no traffic" from "going blind".
  sync_.observe_slot(user_dcis.size(), !ues_.empty());
  switch (sync_.health()) {
    case SyncHealth::kHealthy:
      break;
    case SyncHealth::kDegraded:
      result.degraded = true;
      m_degraded_slots_->inc();
      break;
    case SyncHealth::kLost:
      enter_resync();
      break;
  }
}

void NrScope::decode_location_shard(std::size_t w) {
  // Each shard owns its LocationSlot outright (results/result_ue are
  // location-local), so no merge lock is needed; track() folds the slots
  // into per_ue serially after the batch.
  SlotScratch::LocationSlot& loc = scratch_.locations[w];
  std::optional<ScopedTimer> timer;
  if (Histogram* hist = m_agg_level_us_[agg_level_index(loc.level)]) {
    timer.emplace(*hist);
  }
  PdcchScratch& ps = worker_scratch();
  if (!decode_pdcch_soft_bits(cell_.coreset, loc.level, loc.cce,
                              loc.payload_bits, batch_now_, *batch_grid_,
                              ps)) {
    return;
  }
  for (std::size_t c = loc.first; c < loc.first + loc.count; ++c) {
    const std::size_t i = scratch_.cands[c].ue_index;
    const auto& ue = ues_[i];
    if (!check_pdcch_crc(ps.bits, ue.rnti)) {
      continue;
    }
    const DciFormat hint = ue.config.dl_format == DciFormat::kDl1_1
                               ? DciFormat::kDl1_1
                               : DciFormat::kDl1_0;
    DecodedDci dci;
    dci.slot = slot_index_;
    dci.rnti = ue.rnti;
    dci.dci = Dci::unpack(hint, cell_.n_prb,
                          std::span(ps.bits.data(), loc.payload_bits));
    dci.grant = translate_dci(dci.dci, ue.rnti, cell_.n_prb, cell_.pdsch,
                              ue.config.mcs_table,
                              ue.config.max_mimo_layers);
    dci.agg_level = loc.level;
    dci.cce_start = loc.cce;
    loc.results.push_back(dci);
    loc.result_ue.push_back(i);
  }
}

void NrScope::decode_dcis_deduped(const ResourceGrid& /*grid*/,
                                  const SlotPoint& now) {
  // Group candidate locations across UEs: the polar decode of a location
  // is RNTI-independent, so one channel decode serves every UE that
  // monitors it (only the CRC mask differs per UE).  The grouping runs
  // over a flat sorted candidate list instead of a node-based map so the
  // per-slot setup reuses the scratch buffers allocation-free.
  auto& cands = scratch_.cands;
  cands.clear();
  PdcchScratch& ps = pdcch_scratch_[0];
  for (std::size_t i = 0; i < ues_.size(); ++i) {
    const auto& ue = ues_[i];
    const DciFormat hint = ue.config.dl_format == DciFormat::kDl1_1
                               ? DciFormat::kDl1_1
                               : DciFormat::kDl1_0;
    const unsigned payload_bits = dci_payload_size(hint, cell_.n_prb);
    for (unsigned level : ue.config.ue_ss.agg_levels) {
      pdcch_candidates(cell_.coreset, ue.config.ue_ss, level, now, ue.rnti,
                       ps.cand_cces);
      for (unsigned cce : ps.cand_cces) {
        cands.push_back(
            SlotScratch::CandidateRef{level, cce, payload_bits, i});
      }
    }
  }
  // Payload-major order keeps every location of one payload size
  // contiguous, so the serial path below can hand each run to a single
  // structure-of-arrays batch decode.
  std::sort(cands.begin(), cands.end(),
            [](const SlotScratch::CandidateRef& a,
               const SlotScratch::CandidateRef& b) {
              return std::tie(a.payload_bits, a.level, a.cce, a.ue_index) <
                     std::tie(b.payload_bits, b.level, b.cce, b.ue_index);
            });

  // Carve the sorted list into per-location watcher ranges.  `locations`
  // is grow-only: entries past n_locs keep their buffers for later slots.
  auto& locations = scratch_.locations;
  std::size_t n_locs = 0;
  for (std::size_t c = 0; c < cands.size(); ++c) {
    const auto& cand = cands[c];
    const bool new_loc =
        c == 0 || cand.level != cands[c - 1].level ||
        cand.cce != cands[c - 1].cce ||
        cand.payload_bits != cands[c - 1].payload_bits;
    if (new_loc) {
      if (locations.size() < n_locs + 1) {
        locations.resize(n_locs + 1);
      }
      auto& loc = locations[n_locs++];
      loc.level = cand.level;
      loc.cce = cand.cce;
      loc.payload_bits = cand.payload_bits;
      loc.first = c;
      loc.count = 1;
      loc.results.clear();
      loc.result_ue.clear();
    } else {
      ++locations[n_locs - 1].count;
    }
  }

  // Hit rate of the shared-location optimization: 1 - locations/candidates
  // (every watcher beyond the first reuses an already-decoded location).
  m_dedupe_candidates_->inc(cands.size());
  m_dedupe_locations_->inc(n_locs);

  if (dci_pool_ && n_locs > 1) {
    dci_pool_->run_batch(n_locs, decode_location_fn_);
  } else {
    // Serial path: the locations are payload-major, so each contiguous
    // run shares a payload size and channel-decodes as one SoA batch —
    // every aggregation level's candidates demapped and rate-recovered in
    // a single batched pass, then each UE's CRC tested against the shared
    // bits.
    PdcchScratch& ps = pdcch_scratch_[0];
    auto& locs = scratch_.batch_locs;
    std::size_t w0 = 0;
    while (w0 < n_locs) {
      const unsigned payload_bits = locations[w0].payload_bits;
      std::size_t w1 = w0;
      locs.clear();
      while (w1 < n_locs && locations[w1].payload_bits == payload_bits) {
        locs.push_back({locations[w1].level, locations[w1].cce});
        ++w1;
      }
      decode_pdcch_batch(cell_.coreset, locs, payload_bits, batch_now_,
                         *batch_grid_, ps);
      const auto& b = ps.batch;
      const unsigned k_bits = payload_bits + kCrc24C.length();
      for (std::size_t j = 0; j < locs.size(); ++j) {
        if (!b.ok[j]) {
          continue;
        }
        auto& loc = locations[w0 + j];
        const std::span<const std::uint8_t> bits(
            b.bits.data() + j * k_bits, k_bits);
        for (std::size_t c = loc.first; c < loc.first + loc.count; ++c) {
          const std::size_t i = scratch_.cands[c].ue_index;
          const auto& ue = ues_[i];
          if (!check_pdcch_crc(bits, ue.rnti)) {
            continue;
          }
          const DciFormat hint = ue.config.dl_format == DciFormat::kDl1_1
                                     ? DciFormat::kDl1_1
                                     : DciFormat::kDl1_0;
          DecodedDci dci;
          dci.slot = slot_index_;
          dci.rnti = ue.rnti;
          dci.dci = Dci::unpack(hint, cell_.n_prb,
                                bits.first(loc.payload_bits));
          dci.grant = translate_dci(dci.dci, ue.rnti, cell_.n_prb,
                                    cell_.pdsch, ue.config.mcs_table,
                                    ue.config.max_mimo_layers);
          dci.agg_level = loc.level;
          dci.cce_start = loc.cce;
          loc.results.push_back(dci);
          loc.result_ue.push_back(i);
        }
      }
      w0 = w1;
    }
  }

  // Serial merge: fold the per-location results into per_ue.
  for (std::size_t w = 0; w < n_locs; ++w) {
    const auto& loc = scratch_.locations[w];
    for (std::size_t r = 0; r < loc.results.size(); ++r) {
      scratch_.per_ue[loc.result_ue[r]].push_back(loc.results[r]);
    }
  }
}

void NrScope::process_grid(const ResourceGrid& grid, SlotResult& result) {
  // Reset the caller's result in place: clears keep the vectors'
  // capacities, so a reused result stops allocating once warmed up.
  result.slot = slot_index_;
  result.dcis.clear();
  result.new_ues.clear();
  result.mib.reset();
  result.sib1_decoded = false;
  result.processing_time_us = 0.0;
  result.degraded = false;
  const auto start = std::chrono::steady_clock::now();
  switch (state_) {
    case State::kSearching:
      m_slots_searching_->inc();
      search(grid, result);
      break;
    case State::kWaitSib1:
      m_slots_wait_sib1_->inc();
      wait_sib1(grid, result);
      // The SSB recurs while waiting; nothing else to decode yet.
      break;
    case State::kTracking:
      m_slots_tracking_->inc();
      track(grid, result);
      break;
    case State::kResync:
      m_slots_resync_->inc();
      resync(grid, result);
      break;
  }
  result.sync_state = state_;
  const auto end = std::chrono::steady_clock::now();
  result.processing_time_us =
      std::chrono::duration<double, std::micro>(end - start).count();
  ++slot_index_;
}

SlotResult NrScope::process_grid(const ResourceGrid& grid) {
  SlotResult result;
  process_grid(grid, result);
  return result;
}

void NrScope::process_slot(std::span<const cf32> samples,
                           SlotResult& result) {
  const auto start = std::chrono::steady_clock::now();
  {
    ScopedTimer demod_timer(*m_demod_us_);
    demodulator_.demodulate_into(samples, rx_grid_);
  }
  process_grid(rx_grid_, result);
  const auto end = std::chrono::steady_clock::now();
  result.processing_time_us =
      std::chrono::duration<double, std::micro>(end - start).count();
}

SlotResult NrScope::process_slot(std::span<const cf32> samples) {
  SlotResult result;
  process_slot(samples, result);
  return result;
}

}  // namespace nrs
