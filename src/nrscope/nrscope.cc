#include "nrscope/nrscope.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <mutex>
#include <stdexcept>

#include "nr/grant.h"
#include "nr/pdsch.h"
#include "nr/rach.h"
#include "nr/sib1.h"
#include "phy/pss.h"
#include "phy/sss.h"

namespace nrs {
namespace {

/// PSS/SSS sit `kSyncScOffset` subcarriers into the 12-PRB SSB window.
constexpr unsigned kSyncScOffset =
    (SsbLocation::kNPrb * kSubcarriersPerPrb - kPssLength) / 2;

PdschAllocation alloc_from_grant(const Grant& grant, std::uint16_t pci) {
  PdschAllocation alloc;
  alloc.rnti = grant.rnti;
  alloc.prb_start = grant.prb_start;
  alloc.prb_len = grant.prb_len;
  alloc.start_symbol = grant.start_symbol;
  alloc.n_symbols = grant.n_symbols;
  alloc.modulation = grant.modulation;
  alloc.n_id = pci;
  return alloc;
}

/// Throw-on-invalid wrapper so the config is checked before any other
/// member (the demodulator in particular) is built from it.
const NrScopeConfig& validated(const NrScopeConfig& config) {
  if (auto error = config.validate()) {
    throw std::invalid_argument("NrScopeConfig: " + *error);
  }
  return config;
}

}  // namespace

std::optional<std::string> NrScopeConfig::validate() const {
  if (n_prb < SsbLocation::kNPrb || n_prb > 275) {
    return "n_prb must be in [12, 275], got " + std::to_string(n_prb);
  }
  if (ssb.prb_start + SsbLocation::kNPrb > n_prb) {
    return "ssb.prb_start " + std::to_string(ssb.prb_start) +
           " leaves no room for the 12-PRB SSB window in " +
           std::to_string(n_prb) + " PRBs";
  }
  if (n_dci_threads < 1) {
    return "n_dci_threads must be >= 1, got " +
           std::to_string(n_dci_threads);
  }
  if (rate_window_slots == 0) {
    return "rate_window_slots must be > 0";
  }
  if (ue_inactivity_slots == 0) {
    return "ue_inactivity_slots must be > 0";
  }
  return std::nullopt;
}

NrScope::NrScope(const NrScopeConfig& config)
    : config_(validated(config)),
      demodulator_(make_ofdm_config(config.n_prb)), rach_(config.rach),
      telemetry_(config.scs, config.rate_window_slots, &metrics_registry_) {
  cell_.n_prb = config_.n_prb;
  cell_.scs = config_.scs;
  if (config_.n_dci_threads > 1) {
    dci_pool_ = std::make_unique<WorkerPool>(config_.n_dci_threads);
  }
  rach_.bind_metrics(metrics_registry_);
  m_slots_searching_ = &metrics_registry_.counter("nrscope.slots_searching");
  m_slots_wait_sib1_ = &metrics_registry_.counter("nrscope.slots_wait_sib1");
  m_slots_tracking_ = &metrics_registry_.counter("nrscope.slots_tracking");
  m_stale_evictions_ =
      &metrics_registry_.counter("nrscope.stale_ue_evictions");
  m_dedupe_candidates_ =
      &metrics_registry_.counter("nrscope.dedupe_candidates");
  m_dedupe_locations_ =
      &metrics_registry_.counter("nrscope.dedupe_locations");
  m_demod_us_ = &metrics_registry_.histogram("nrscope.demod_us");
  m_blind_decode_us_ =
      &metrics_registry_.histogram("nrscope.blind_decode_us");
  for (unsigned level : {1u, 2u, 4u, 8u, 16u}) {
    m_agg_level_us_[agg_level_index(level)] = &metrics_registry_.histogram(
        "nrscope.blind_decode_us.al" + std::to_string(level));
  }
}

NrScope::~NrScope() = default;

SlotPoint NrScope::slot_point() const {
  const unsigned spf = slots_per_frame(cell_.scs);
  SlotPoint point;
  point.scs = cell_.scs;
  if (!phase_locked_) {
    point.sfn = 0;
    point.slot = static_cast<std::uint32_t>(slot_index_ % spf);
    return point;
  }
  const std::int64_t rel =
      static_cast<std::int64_t>(slot_index_) - frame_phase_;
  point.slot = static_cast<std::uint32_t>(((rel % spf) + spf) % spf);
  point.sfn = static_cast<std::uint32_t>(
      ((rel / spf) + (mib_ ? mib_->sfn : 0) + 1024) & 0x3FF);
  return point;
}

unsigned NrScope::data_res_total() const {
  // PDSCH capacity of a downlink TTI: full band over the 12 data symbols.
  const std::uint64_t abs_slot = phase_locked_
                                     ? static_cast<std::uint64_t>(
                                           static_cast<std::int64_t>(
                                               slot_index_) -
                                           frame_phase_)
                                     : slot_index_;
  if (!cell_.tdd.is_downlink(abs_slot)) {
    return 0;
  }
  return cell_.n_prb * kSubcarriersPerPrb * 12u;
}

std::vector<Rnti> NrScope::known_ues() const {
  std::vector<Rnti> rntis;
  rntis.reserve(ues_.size());
  for (const auto& ue : ues_) {
    rntis.push_back(ue.rnti);
  }
  return rntis;
}

void NrScope::add_ue(Rnti rnti, const RrcSetup& config) {
  for (auto& ue : ues_) {
    if (ue.rnti == rnti) {
      ue.config = config;
      return;
    }
  }
  ues_.push_back(UeSearchContext{rnti, config});
  ue_last_seen_.push_back(slot_index_);
  telemetry_.add_ue(rnti, slot_index_);
}

void NrScope::cleanup_stale_ues() {
  for (std::size_t i = 0; i < ues_.size();) {
    if (slot_index_ - ue_last_seen_[i] > config_.ue_inactivity_slots) {
      telemetry_.remove_ue(ues_[i].rnti);
      m_stale_evictions_->inc();
      ues_.erase(ues_.begin() + static_cast<std::ptrdiff_t>(i));
      ue_last_seen_.erase(ue_last_seen_.begin() +
                          static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

void NrScope::search(const ResourceGrid& grid, SlotResult& result) {
  // PSS on some symbol-0 subcarrier offset?
  const auto pss = detect_pss(grid.symbol(SsbLocation::kPssSymbol), 0.45f);
  if (!pss || pss->sc_offset < kSyncScOffset) {
    return;
  }
  const unsigned prb_start = (pss->sc_offset - kSyncScOffset) /
                             kSubcarriersPerPrb;
  // SSS confirms and completes the PCI.
  const unsigned sss_sc =
      prb_start * kSubcarriersPerPrb + kSyncScOffset;
  if (sss_sc + kPssLength > grid.n_subcarriers()) {
    return;
  }
  std::vector<cf32> sss_res(kPssLength);
  for (unsigned n = 0; n < kPssLength; ++n) {
    sss_res[n] = grid.at(SsbLocation::kSssSymbol, sss_sc + n);
  }
  const auto sss = detect_sss(sss_res, pss->nid2, 0.3f);
  if (!sss) {
    return;
  }
  const std::uint16_t pci =
      static_cast<std::uint16_t>(3 * sss->nid1 + pss->nid2);

  const SsbLocation ssb{prb_start};
  const auto mib = decode_mib(pci, ssb, SlotPoint{cell_.scs, 0, 0}, grid);
  if (!mib) {
    return;
  }
  // Synchronized: SSBs are sent in slot 0 of a frame.
  pci_ = pci;
  mib_ = *mib;
  config_.ssb = ssb;
  frame_phase_ = static_cast<std::int64_t>(slot_index_);
  phase_locked_ = true;
  cell_.pci = pci;
  cell_.coreset.rb_start = mib->coreset0_rb_start;
  cell_.coreset.n_prb = mib->coreset0_n_prb6 * 6u;
  cell_.coreset.duration = mib->coreset0_duration;
  cell_.coreset.shift = pci;
  cell_.coreset.n_id = pci;
  cell_.scs = mib->scs_common;
  result.mib = *mib;
  state_ = State::kWaitSib1;
}

void NrScope::wait_sib1(const ResourceGrid& grid, SlotResult& result) {
  const SlotPoint now = slot_point();
  for (unsigned level : cell_.common_ss.agg_levels) {
    for (unsigned cce :
         pdcch_candidates(cell_.coreset, cell_.common_ss, level, now, 0)) {
      const auto dci_result =
          decode_pdcch_candidate(cell_.coreset, level, cce,
                                 DciFormat::kDl1_0, cell_.n_prb, now, grid,
                                 kSiRnti);
      if (!dci_result) {
        continue;
      }
      const Grant grant = translate_dci(dci_result->dci, kSiRnti, cell_);
      const auto payload = decode_pdsch(alloc_from_grant(grant, pci_), now,
                                        grant.tbs, grid);
      if (!payload) {
        continue;
      }
      const auto sib = Sib1::unpack(*payload);
      if (!sib) {
        continue;
      }
      // Learn the full cell configuration; the PCI-derived fields were
      // already set from the MIB and must win over SIB defaults.
      sib->apply_to(cell_);
      rach_.set_cell(cell_);
      result.sib1_decoded = true;
      state_ = State::kTracking;
      DecodedDci out;
      out.slot = slot_index_;
      out.rnti = kSiRnti;
      out.dci = dci_result->dci;
      out.grant = grant;
      out.agg_level = level;
      out.cce_start = cce;
      result.dcis.push_back(out);
      return;
    }
  }
}

void NrScope::track(const ResourceGrid& grid, SlotResult& result) {
  const SlotPoint now = slot_point();

  // RACH thread's work: new-UE discovery in the common search space.
  result.new_ues = rach_.process_slot(grid, now, slot_index_, result.dcis);
  for (const auto& ue : result.new_ues) {
    add_ue(ue.c_rnti, ue.config);
  }

  // DCI threads: the UE list is sharded across the pool (paper section 4).
  std::vector<std::vector<DecodedDci>> per_ue(ues_.size());
  {
    ScopedTimer blind_timer(*m_blind_decode_us_);
    if (config_.dedupe_candidates) {
      decode_dcis_deduped(grid, now, per_ue);
    } else {
      auto decode_one = [&](std::size_t i) {
        per_ue[i] = decode_ue_dcis(grid, now, slot_index_, cell_, ues_[i],
                                   &m_agg_level_us_);
      };
      if (dci_pool_ && ues_.size() > 1) {
        dci_pool_->run_batch(ues_.size(), decode_one);
      } else {
        for (std::size_t i = 0; i < ues_.size(); ++i) {
          decode_one(i);
        }
      }
    }
  }
  for (std::size_t i = 0; i < ues_.size(); ++i) {
    if (!per_ue[i].empty()) {
      ue_last_seen_[i] = slot_index_;
    }
    result.dcis.insert(result.dcis.end(), per_ue[i].begin(),
                       per_ue[i].end());
  }

  // Deduplicate (a DCI can surface via both the RACH scan and a UE scan
  // when search spaces overlap).
  std::sort(result.dcis.begin(), result.dcis.end(),
            [](const DecodedDci& a, const DecodedDci& b) {
              return std::tie(a.rnti, a.cce_start, a.agg_level) <
                     std::tie(b.rnti, b.cce_start, b.agg_level);
            });
  result.dcis.erase(
      std::unique(result.dcis.begin(), result.dcis.end(),
                  [](const DecodedDci& a, const DecodedDci& b) {
                    return a.rnti == b.rnti && a.cce_start == b.cce_start &&
                           a.agg_level == b.agg_level;
                  }),
      result.dcis.end());

  // Telemetry update: per-UE counters for plausible C-RNTIs only (SI/RA
  // broadcasts are not user telemetry).
  std::vector<DecodedDci> user_dcis;
  for (auto& dci : result.dcis) {
    if (is_plausible_crnti(dci.rnti)) {
      user_dcis.push_back(dci);
    }
  }
  telemetry_.observe_slot(slot_index_, user_dcis, data_res_total(),
                          config_.keep_capacity_history);
  // Propagate the retransmission flags back to the result.
  for (auto& dci : result.dcis) {
    for (const auto& u : user_dcis) {
      if (u.rnti == dci.rnti && u.cce_start == dci.cce_start &&
          u.agg_level == dci.agg_level) {
        dci.is_retx = u.is_retx;
      }
    }
  }

  cleanup_stale_ues();
}

void NrScope::decode_dcis_deduped(
    const ResourceGrid& grid, const SlotPoint& now,
    std::vector<std::vector<DecodedDci>>& per_ue) {
  // Group candidate locations across UEs: the polar decode of a location
  // is RNTI-independent, so one channel decode serves every UE that
  // monitors it (only the CRC mask differs per UE).
  struct Location {
    unsigned level;
    unsigned cce;
    unsigned payload_bits;
    std::vector<std::size_t> watchers;  // ue indices
  };
  std::map<std::tuple<unsigned, unsigned, unsigned>, Location> locations;
  for (std::size_t i = 0; i < ues_.size(); ++i) {
    const auto& ue = ues_[i];
    const DciFormat hint = ue.config.dl_format == DciFormat::kDl1_1
                               ? DciFormat::kDl1_1
                               : DciFormat::kDl1_0;
    const unsigned payload_bits = dci_payload_size(hint, cell_.n_prb);
    for (unsigned level : ue.config.ue_ss.agg_levels) {
      for (unsigned cce : pdcch_candidates(cell_.coreset, ue.config.ue_ss,
                                           level, now, ue.rnti)) {
        auto [it, inserted] = locations.try_emplace(
            std::make_tuple(level, cce, payload_bits),
            Location{level, cce, payload_bits, {}});
        it->second.watchers.push_back(i);
      }
    }
  }
  std::vector<Location*> work;
  work.reserve(locations.size());
  std::uint64_t candidates = 0;
  for (auto& [key, loc] : locations) {
    work.push_back(&loc);
    candidates += loc.watchers.size();
  }
  // Hit rate of the shared-location optimization: 1 - locations/candidates
  // (every watcher beyond the first reuses an already-decoded location).
  m_dedupe_candidates_->inc(candidates);
  m_dedupe_locations_->inc(work.size());
  std::mutex merge_mutex;
  auto decode_location = [&](std::size_t w) {
    Location& loc = *work[w];
    std::optional<ScopedTimer> timer;
    if (Histogram* hist = m_agg_level_us_[agg_level_index(loc.level)]) {
      timer.emplace(*hist);
    }
    const auto bits = decode_pdcch_soft_bits(
        cell_.coreset, loc.level, loc.cce, loc.payload_bits, now, grid);
    if (!bits) {
      return;
    }
    for (std::size_t i : loc.watchers) {
      const auto& ue = ues_[i];
      if (!check_pdcch_crc(*bits, ue.rnti)) {
        continue;
      }
      const DciFormat hint = ue.config.dl_format == DciFormat::kDl1_1
                                 ? DciFormat::kDl1_1
                                 : DciFormat::kDl1_0;
      DecodedDci dci;
      dci.slot = slot_index_;
      dci.rnti = ue.rnti;
      dci.dci = Dci::unpack(hint, cell_.n_prb,
                            std::span(bits->data(), loc.payload_bits));
      dci.grant = translate_dci(dci.dci, ue.rnti, cell_.n_prb, cell_.pdsch,
                                ue.config.mcs_table,
                                ue.config.max_mimo_layers);
      dci.agg_level = loc.level;
      dci.cce_start = loc.cce;
      std::lock_guard lock(merge_mutex);
      per_ue[i].push_back(dci);
    }
  };
  if (dci_pool_ && work.size() > 1) {
    dci_pool_->run_batch(work.size(), decode_location);
  } else {
    for (std::size_t w = 0; w < work.size(); ++w) {
      decode_location(w);
    }
  }
}

SlotResult NrScope::process_grid(const ResourceGrid& grid) {
  SlotResult result;
  result.slot = slot_index_;
  const auto start = std::chrono::steady_clock::now();
  switch (state_) {
    case State::kSearching:
      m_slots_searching_->inc();
      search(grid, result);
      break;
    case State::kWaitSib1:
      m_slots_wait_sib1_->inc();
      wait_sib1(grid, result);
      // The SSB recurs while waiting; nothing else to decode yet.
      break;
    case State::kTracking:
      m_slots_tracking_->inc();
      track(grid, result);
      break;
  }
  const auto end = std::chrono::steady_clock::now();
  result.processing_time_us =
      std::chrono::duration<double, std::micro>(end - start).count();
  ++slot_index_;
  return result;
}

SlotResult NrScope::process_slot(std::span<const cf32> samples) {
  const auto start = std::chrono::steady_clock::now();
  std::optional<ResourceGrid> grid;
  {
    ScopedTimer demod_timer(*m_demod_us_);
    grid.emplace(demodulator_.demodulate(samples));
  }
  SlotResult result = process_grid(*grid);
  const auto end = std::chrono::steady_clock::now();
  result.processing_time_us =
      std::chrono::duration<double, std::micro>(end - start).count();
  return result;
}

}  // namespace nrs
