// Passive RACH reconstruction (paper section 3.1.2): watch the common
// search space for the MSG2 / MSG4 DCIs of associating UEs and learn each
// one's C-RNTI without any cooperation.  Two modes, both from the paper:
//
//  kMsg2Assisted — compute the RA-RNTI of each PRACH occasion, decode the
//    MSG2 (RAR) PDSCH to read the TC-RNTI, then CRC-verify the MSG4 DCI
//    against it.  Strongest verification; needs the RAR decode.
//
//  kXorRecovery — the paper's headline trick: for a candidate that decodes
//    but matches no known RNTI, XOR the computed CRC with the received one
//    to recover the masking TC-RNTI, filter for plausibility, and verify
//    by decoding the scheduled RRC Setup PDSCH (whose CRC24A then proves
//    the DCI was real).  Once one RRC Setup has been decoded it is cached
//    and later MSG4 PDSCH decodes are skipped — "the RRC Setup is
//    identical among UEs, thus we can skip decoding the PDSCH".
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/metrics.h"
#include "nr/cell_config.h"
#include "nr/pdcch.h"
#include "nr/rrc.h"
#include "nrscope/telemetry.h"
#include "phy/resource_grid.h"

namespace nrs {

enum class RachTrackMode : std::uint8_t {
  kMsg2Assisted,
  kXorRecovery,
};

struct RachTrackerConfig {
  RachTrackMode mode = RachTrackMode::kXorRecovery;
  /// Verify MSG4 by decoding the RRC Setup PDSCH until one succeeds.
  bool verify_msg4_pdsch = true;
  /// Keep decoding every MSG4 PDSCH even after one is cached (ablation
  /// for the paper's skip optimization; costs 1-2 ms per RACH).
  bool always_decode_msg4_pdsch = false;
};

/// A UE whose C-RNTI was just learned.
struct NewUe {
  Rnti c_rnti = kInvalidRnti;
  std::uint64_t slot = 0;
  RrcSetup config;
  bool verified = false;  ///< RRC Setup PDSCH CRC checked

  [[nodiscard]] bool operator==(const NewUe&) const = default;
};

class RachTracker {
 public:
  explicit RachTracker(const RachTrackerConfig& config) : config_(config) {}

  /// Called once SIB1 is decoded.
  void set_cell(const CellConfig& cell) { cell_ = cell; }

  /// Mirror the tracker's statistics into rach.* counters of `registry`
  /// (msg2/msg4 matches, C-RNTI discoveries, PDSCH decodes, rejections).
  void bind_metrics(MetricsRegistry& registry);

  /// Scan one slot's common search space.  Decoded MSG2/MSG4 DCIs are
  /// appended to `decoded`; returns the UEs that completed association.
  /// Uses `slot_index` as the cell's air clock too — only right when the
  /// sniffer has listened since the cell booted.
  std::vector<NewUe> process_slot(const ResourceGrid& grid,
                                  const SlotPoint& slot,
                                  std::uint64_t slot_index,
                                  std::vector<DecodedDci>& decoded);

  /// Allocation-free variant (the steady-state no-RACH path performs no
  /// heap allocation): completed associations are appended to `new_ues`
  /// and all intermediate buffers live in `scratch` or the tracker.
  /// `slot_index` is the sniffer's feed clock (stamps and bookkeeping);
  /// `air_slot` is the cell's own slot clock, reconstructed from the MIB
  /// SFN and the locked frame phase.  PRACH occasions and RA-RNTIs follow
  /// `air_slot`: after a resync onto a restarted cell the two clocks
  /// diverge, and the gNB derives RA-RNTIs from its own.
  void process_slot(const ResourceGrid& grid, const SlotPoint& slot,
                    std::uint64_t slot_index, std::uint64_t air_slot,
                    PdcchScratch& scratch, std::vector<DecodedDci>& decoded,
                    std::vector<NewUe>& new_ues);

  [[nodiscard]] const std::optional<RrcSetup>& cached_rrc() const {
    return cached_rrc_;
  }

  // Statistics for the ablation benches.
  [[nodiscard]] std::uint64_t msg2_decoded() const { return msg2_decoded_; }
  [[nodiscard]] std::uint64_t msg4_decoded() const { return msg4_decoded_; }
  [[nodiscard]] std::uint64_t pdsch_decodes() const { return pdsch_decodes_; }
  [[nodiscard]] std::uint64_t rejected_recoveries() const {
    return rejected_recoveries_;
  }

 private:
  std::optional<NewUe> handle_msg4(Rnti rnti, const Dci& dci,
                                   const ResourceGrid& grid,
                                   const SlotPoint& slot,
                                   std::uint64_t slot_index);

  void count(Counter* counter) {
    if (counter != nullptr) {
      counter->inc();
    }
  }

  RachTrackerConfig config_;
  CellConfig cell_;
  std::map<Rnti, std::uint64_t> pending_tc_;  ///< TC-RNTI -> MSG2 slot
  std::vector<Rnti> ra_rntis_;  ///< per-slot scratch, reused across slots
  std::optional<RrcSetup> cached_rrc_;
  std::uint64_t msg2_decoded_ = 0;
  std::uint64_t msg4_decoded_ = 0;
  std::uint64_t pdsch_decodes_ = 0;
  std::uint64_t rejected_recoveries_ = 0;
  Counter* metric_msg2_ = nullptr;
  Counter* metric_msg4_ = nullptr;
  Counter* metric_crnti_ = nullptr;
  Counter* metric_pdsch_ = nullptr;
  Counter* metric_rejected_ = nullptr;
};

}  // namespace nrs
