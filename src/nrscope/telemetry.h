// Per-UE and per-cell telemetry state (paper section 3.2): every decoded
// DCI is translated to a grant, its TBS accumulated into a sliding-window
// bit-rate estimate, its HARQ NDI fed to the retransmission tracker, and
// its MCS recorded.  The cell-level tracker turns unused REs into the
// fair-share spare-capacity estimate of section 5.4.1 / Fig. 14.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/timing.h"
#include "common/types.h"
#include "nr/grant.h"
#include "nr/harq.h"

namespace nrs {

/// One decoded DCI as reported by the sniffer.
struct DecodedDci {
  std::uint64_t slot = 0;
  Rnti rnti = kInvalidRnti;
  Dci dci;
  Grant grant;
  unsigned agg_level = 0;
  unsigned cce_start = 0;
  bool is_retx = false;  ///< filled by the telemetry tracker (NDI rule)

  [[nodiscard]] bool operator==(const DecodedDci&) const = default;
};

/// Sliding-window throughput estimator over (slot, bits) samples.
/// Eviction happens on `add` (relative to the newest sample), so all the
/// const queries are genuinely read-only.
///
/// Samples live in a grow-only ring buffer (hot-path memory discipline,
/// DESIGN.md): once the ring has grown to the slot window's worst-case
/// sample count, `add` is allocation-free — unlike the deque it replaces,
/// which allocated a chunk every few hundred samples forever.
class RateWindow {
 public:
  explicit RateWindow(std::uint64_t window_slots = 1000,
                      Counter* evictions = nullptr)
      : window_slots_(window_slots), evictions_(evictions) {}

  void add(std::uint64_t slot, std::uint64_t bits);

  /// Bits per second over the trailing window ending at `now_slot`.
  [[nodiscard]] double rate_bps(std::uint64_t now_slot,
                                double slot_duration_s) const;

  [[nodiscard]] std::uint64_t total_bits() const { return total_bits_; }

 private:
  std::uint64_t window_slots_;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ring_;
  std::size_t head_ = 0;   ///< index of the oldest sample
  std::size_t count_ = 0;  ///< live samples in the ring
  std::uint64_t total_bits_ = 0;
  Counter* evictions_;  ///< optional telemetry.window_evictions hookup
};

/// Everything NR-Scope knows about one UE.
class UeTelemetry {
 public:
  UeTelemetry(Rnti rnti, std::uint64_t first_slot,
              std::uint64_t window_slots,
              Counter* window_evictions = nullptr)
      : rnti_(rnti), first_slot_(first_slot), last_slot_(first_slot),
        dl_rate_(window_slots, window_evictions),
        ul_rate_(window_slots, window_evictions) {}

  /// Feed one decoded DCI; returns true when it was a retransmission.
  bool observe(DecodedDci& dci);

  [[nodiscard]] Rnti rnti() const { return rnti_; }
  [[nodiscard]] std::uint64_t first_slot() const { return first_slot_; }
  [[nodiscard]] std::uint64_t last_slot() const { return last_slot_; }

  [[nodiscard]] std::uint64_t dl_dcis() const { return dl_dcis_; }
  [[nodiscard]] std::uint64_t ul_dcis() const { return ul_dcis_; }

  /// New-data bits only (retransmissions excluded), which is what the
  /// application-layer ground truth (tcpdump) sees.
  [[nodiscard]] std::uint64_t dl_bits() const { return dl_rate_.total_bits(); }
  [[nodiscard]] std::uint64_t ul_bits() const { return ul_rate_.total_bits(); }

  [[nodiscard]] double dl_rate_bps(std::uint64_t now_slot,
                                   double slot_s) const {
    return dl_rate_.rate_bps(now_slot, slot_s);
  }
  [[nodiscard]] double ul_rate_bps(std::uint64_t now_slot,
                                   double slot_s) const {
    return ul_rate_.rate_bps(now_slot, slot_s);
  }

  [[nodiscard]] const HarqTracker& harq() const { return harq_; }
  [[nodiscard]] double retransmission_ratio() const {
    return harq_.retransmission_ratio();
  }

  /// Histogram of observed downlink MCS indices (paper Fig. 15).
  [[nodiscard]] const std::vector<std::uint64_t>& mcs_histogram() const {
    return mcs_histogram_;
  }

  /// Spectral efficiency (bits/RE) of the most recent downlink grant —
  /// used to convert fair-share spare REs into a spare bit rate.
  [[nodiscard]] double last_efficiency() const { return last_efficiency_; }

 private:
  Rnti rnti_;
  std::uint64_t first_slot_;
  std::uint64_t last_slot_;
  std::uint64_t dl_dcis_ = 0;
  std::uint64_t ul_dcis_ = 0;
  RateWindow dl_rate_;
  RateWindow ul_rate_;
  HarqTracker harq_;
  std::vector<std::uint64_t> mcs_histogram_ =
      std::vector<std::uint64_t>(32, 0);
  double last_efficiency_ = 0.0;
};

/// Cell-wide RE accounting per TTI for the spare-capacity use case.
struct SlotCapacity {
  std::uint64_t slot = 0;
  unsigned data_res_total = 0;  ///< PDSCH REs the TTI offers
  unsigned data_res_used = 0;   ///< REs granted to anyone
  /// Per-UE used REs and spare-share bit rates (paper Fig. 14b).
  std::map<Rnti, unsigned> used_res;
  std::map<Rnti, double> spare_bps;
};

class CellTelemetry {
 public:
  /// `registry`, when given, receives telemetry.ue_added /
  /// telemetry.ue_removed / telemetry.window_evictions counters.
  explicit CellTelemetry(Scs scs, std::uint64_t window_slots = 1000,
                         MetricsRegistry* registry = nullptr);

  /// Feed a slot's decoded DCIs; `data_res_total` is the PDSCH capacity of
  /// the TTI (0 for non-DL slots).
  void observe_slot(std::uint64_t slot, std::vector<DecodedDci>& dcis,
                    unsigned data_res_total, bool keep_history);

  [[nodiscard]] const std::map<Rnti, UeTelemetry>& ues() const {
    return ues_;
  }
  [[nodiscard]] UeTelemetry* find(Rnti rnti);
  [[nodiscard]] const UeTelemetry* find(Rnti rnti) const;

  /// Register a UE discovered via the RACH (so it exists even before its
  /// first data DCI).
  void add_ue(Rnti rnti, std::uint64_t slot);
  void remove_ue(Rnti rnti);
  /// The gNB released this C-RNTI and granted it to a *different* UE
  /// (RACH-observed reuse under churn): drop the old UE's telemetry —
  /// HARQ NDI state, rate window, MCS histogram — and start fresh, so the
  /// newcomer's numbers are not polluted by its predecessor's.
  void rebind_ue(Rnti rnti, std::uint64_t slot);

  [[nodiscard]] const std::vector<SlotCapacity>& history() const {
    return history_;
  }

  /// Fair-share spare bit rate for one UE right now (section 5.4.1).
  [[nodiscard]] double spare_bps(Rnti rnti) const;

 private:
  /// Insert-if-absent with the metrics hookups threaded through.
  UeTelemetry& ensure_ue(Rnti rnti, std::uint64_t slot);

  Scs scs_;
  std::uint64_t window_slots_;
  std::map<Rnti, UeTelemetry> ues_;
  std::vector<SlotCapacity> history_;
  double last_spare_res_per_ue_ = 0.0;
  std::map<Rnti, double> last_spare_bps_;
  Counter* ue_added_ = nullptr;
  Counter* ue_removed_ = nullptr;
  Counter* window_evictions_ = nullptr;
};

}  // namespace nrs
