#include "radio/impairments.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numbers>

namespace nrs {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kOutage:
      return "outage";
    case FaultKind::kSampleGap:
      return "sample_gap";
    case FaultKind::kIqGlitch:
      return "iq_glitch";
    case FaultKind::kCfoStep:
      return "cfo_step";
    case FaultKind::kCfoDrift:
      return "cfo_drift";
    case FaultKind::kTimingJump:
      return "timing_jump";
    case FaultKind::kCellRestart:
      return "cell_restart";
    case FaultKind::kSib1Change:
      return "sib1_change";
  }
  return "?";
}

bool is_iq_fault(FaultKind kind) {
  switch (kind) {
    case FaultKind::kOutage:
    case FaultKind::kSampleGap:
    case FaultKind::kIqGlitch:
    case FaultKind::kCfoStep:
    case FaultKind::kCfoDrift:
      return true;
    case FaultKind::kTimingJump:
    case FaultKind::kCellRestart:
    case FaultKind::kSib1Change:
      return false;
  }
  return false;
}

std::optional<std::string> FaultSchedule::validate() const {
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& ev = events[i];
    const std::string where =
        std::string(to_string(ev.kind)) + " event at slot " +
        std::to_string(ev.start_slot);
    if (ev.duration_slots == 0) {
      return where + ": zero-length window (duration_slots must be > 0)";
    }
    if (std::isnan(ev.magnitude)) {
      return where + ": magnitude must not be NaN";
    }
    switch (ev.kind) {
      case FaultKind::kOutage:
        if (ev.magnitude <= 0.0) {
          return where + ": outage depth (dB) must be > 0, got " +
                 std::to_string(ev.magnitude);
        }
        break;
      case FaultKind::kSampleGap:
        if (ev.magnitude <= 0.0 || ev.magnitude > 1.0) {
          return where + ": dropped fraction must be in (0, 1], got " +
                 std::to_string(ev.magnitude);
        }
        break;
      case FaultKind::kIqGlitch:
        if (ev.magnitude <= 0.0) {
          return where + ": glitch amplitude must be > 0, got " +
                 std::to_string(ev.magnitude);
        }
        break;
      case FaultKind::kCfoStep:
      case FaultKind::kCfoDrift:
        break;  // any finite Hz value (including negative) is meaningful
      case FaultKind::kTimingJump:
        if (ev.magnitude < 1.0) {
          return where + ": timing jump must skip >= 1 slot, got " +
                 std::to_string(ev.magnitude);
        }
        break;
      case FaultKind::kCellRestart:
      case FaultKind::kSib1Change:
        break;
    }
    // Overlapping windows of the same kind make the magnitude ambiguous
    // (which event wins?); reject them outright.
    for (std::size_t j = i + 1; j < events.size(); ++j) {
      const FaultEvent& other = events[j];
      if (other.kind != ev.kind) {
        continue;
      }
      if (ev.start_slot < other.end_slot() &&
          other.start_slot < ev.end_slot()) {
        return std::string("overlapping ") + to_string(ev.kind) +
               " windows at slots " + std::to_string(ev.start_slot) +
               " and " + std::to_string(other.start_slot);
      }
    }
  }
  return std::nullopt;
}

FaultSchedule FaultSchedule::random(std::uint64_t seed,
                                    std::uint64_t first_slot,
                                    std::uint64_t horizon_slots,
                                    unsigned n_events) {
  FaultSchedule schedule;
  if (n_events == 0 || horizon_slots <= first_slot) {
    return schedule;
  }
  Rng rng(seed);
  // Slice the horizon into equal spans, one event per span, so windows
  // never overlap regardless of the draws.
  const std::uint64_t span = (horizon_slots - first_slot) / n_events;
  for (unsigned i = 0; i < n_events; ++i) {
    const std::uint64_t base = first_slot + i * span;
    FaultEvent ev;
    const auto max_dur =
        static_cast<std::int64_t>(std::max<std::uint64_t>(1, span / 2));
    ev.duration_slots =
        static_cast<std::uint64_t>(rng.uniform_int(1, max_dur));
    const auto slack = static_cast<std::int64_t>(
        span > ev.duration_slots ? span - ev.duration_slots : 0);
    ev.start_slot =
        base + static_cast<std::uint64_t>(rng.uniform_int(0, slack));
    switch (rng.uniform_int(0, 4)) {
      case 0:
        ev.kind = FaultKind::kOutage;
        ev.magnitude = rng.uniform(25.0, 45.0);
        break;
      case 1:
        ev.kind = FaultKind::kSampleGap;
        ev.magnitude = rng.uniform(0.05, 0.5);
        break;
      case 2:
        ev.kind = FaultKind::kIqGlitch;
        ev.magnitude = rng.uniform(4.0, 12.0);
        break;
      case 3:
        ev.kind = FaultKind::kCfoStep;
        ev.magnitude = rng.uniform(200.0, 2200.0);
        break;
      default:
        ev.kind = FaultKind::kCfoDrift;
        ev.magnitude = rng.uniform(5.0, 55.0);
        break;
    }
    schedule.events.push_back(ev);
  }
  return schedule;
}

const FaultEvent* FaultSchedule::find_active(FaultKind kind,
                                             std::uint64_t slot) const {
  for (const FaultEvent& ev : events) {
    if (ev.kind == kind && ev.active_at(slot)) {
      return &ev;
    }
  }
  return nullptr;
}

bool FaultSchedule::any_iq_active(std::uint64_t slot) const {
  for (const FaultEvent& ev : events) {
    if (is_iq_fault(ev.kind) && ev.active_at(slot)) {
      return true;
    }
  }
  return false;
}

const FaultEvent* FaultSchedule::feeder_event_at(std::uint64_t slot) const {
  for (const FaultEvent& ev : events) {
    if (!is_iq_fault(ev.kind) && ev.start_slot == slot) {
      return &ev;
    }
  }
  return nullptr;
}

ImpairmentInjector::ImpairmentInjector(FaultSchedule schedule,
                                       double sample_rate,
                                       std::uint64_t seed)
    : schedule_(std::move(schedule)), sample_rate_(sample_rate),
      rng_(seed) {}

void ImpairmentInjector::bind_metrics(MetricsRegistry& registry) {
  m_fault_slots_ = &registry.counter("radio.fault_slots");
  m_fault_active_ = &registry.gauge("radio.fault_active");
}

void ImpairmentInjector::apply_outage(const FaultEvent& ev,
                                      IqBuffer& samples) {
  // SNR collapse: attenuate the received waveform (signal *and* its
  // embedded channel noise) by `magnitude` dB and bury it under fresh
  // noise at the pre-fade received power — a blocked path with the
  // interference floor unchanged.  Post-fade SNR ~= -magnitude dB.
  double power = 0.0;
  for (const cf32& s : samples) {
    power += std::norm(s);
  }
  power /= std::max<std::size_t>(1, samples.size());
  const auto g = static_cast<float>(std::pow(10.0, -ev.magnitude / 20.0));
  const double s = std::sqrt(power / 2.0);
  for (cf32& v : samples) {
    v = g * v + cf32(static_cast<float>(rng_.gaussian(0.0, s)),
                     static_cast<float>(rng_.gaussian(0.0, s)));
  }
}

void ImpairmentInjector::apply_sample_gap(const FaultEvent& ev,
                                          IqBuffer& samples) {
  // Drop a contiguous run of samples (an SDR overflow inside the slot):
  // the remainder shifts earlier and the tail zero-pads, so every OFDM
  // symbol after the gap lands misaligned.
  const auto len = samples.size();
  if (len == 0) {
    return;
  }
  const auto dropped = std::min<std::size_t>(
      len, std::max<std::size_t>(
               1, static_cast<std::size_t>(ev.magnitude *
                                           static_cast<double>(len))));
  const auto at = static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(len - dropped)));
  std::memmove(samples.data() + at, samples.data() + at + dropped,
               (len - at - dropped) * sizeof(cf32));
  std::fill(samples.end() - static_cast<std::ptrdiff_t>(dropped),
            samples.end(), cf32{});
}

void ImpairmentInjector::apply_glitch(const FaultEvent& ev,
                                      IqBuffer& samples) {
  // Impulsive interference: overwrite scattered samples with strong
  // random-phase spikes (~1.5% of the slot).
  const std::size_t len = samples.size();
  if (len == 0) {
    return;
  }
  const std::size_t n_spikes = std::max<std::size_t>(8, len / 64);
  const auto amp = static_cast<float>(ev.magnitude);
  for (std::size_t i = 0; i < n_spikes; ++i) {
    const auto at = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(len - 1)));
    const double phi = rng_.uniform(0.0, 2.0 * std::numbers::pi);
    samples[at] = amp * cf32(static_cast<float>(std::cos(phi)),
                             static_cast<float>(std::sin(phi)));
  }
}

void ImpairmentInjector::apply_cfo(double cfo_hz, IqBuffer& samples) {
  const double step = 2.0 * std::numbers::pi * cfo_hz / sample_rate_;
  for (cf32& s : samples) {
    s *= cf32(static_cast<float>(std::cos(cfo_phase_)),
              static_cast<float>(std::sin(cfo_phase_)));
    cfo_phase_ += step;
    if (cfo_phase_ > 2.0 * std::numbers::pi) {
      cfo_phase_ -= 2.0 * std::numbers::pi;
    }
  }
}

void ImpairmentInjector::apply(IqBuffer& samples) {
  const std::uint64_t slot = slot_++;
  const bool active = schedule_.any_iq_active(slot);
  if (m_fault_active_ != nullptr) {
    m_fault_active_->set(active ? 1 : 0);
  }
  if (!active) {
    return;
  }
  if (m_fault_slots_ != nullptr) {
    m_fault_slots_->inc();
  }
  if (const FaultEvent* ev =
          schedule_.find_active(FaultKind::kSampleGap, slot)) {
    apply_sample_gap(*ev, samples);
  }
  if (const FaultEvent* ev =
          schedule_.find_active(FaultKind::kIqGlitch, slot)) {
    apply_glitch(*ev, samples);
  }
  double cfo_hz = 0.0;
  if (const FaultEvent* ev =
          schedule_.find_active(FaultKind::kCfoStep, slot)) {
    cfo_hz += ev->magnitude;
  }
  if (const FaultEvent* ev =
          schedule_.find_active(FaultKind::kCfoDrift, slot)) {
    cfo_hz += ev->magnitude *
              static_cast<double>(slot - ev->start_slot + 1);
  }
  if (cfo_hz != 0.0) {
    apply_cfo(cfo_hz, samples);
  }
  // Outage last: it must bury whatever the other impairments left.
  if (const FaultEvent* ev =
          schedule_.find_active(FaultKind::kOutage, slot)) {
    apply_outage(*ev, samples);
  }
}

}  // namespace nrs
