#include "radio/virtual_radio.h"

namespace nrs {

VirtualRadio::VirtualRadio(const VirtualRadioConfig& config)
    : config_(config), modulator_(make_ofdm_config(config.n_prb)),
      channel_([&] {
        ChannelConfig ch = config.channel;
        ch.fft_size = make_ofdm_config(config.n_prb).fft_size;
        return ch;
      }()),
      agc_(1.0f, 0.25f) {
  if (config_.capture_rate_ratio != 1.0) {
    upsampler_.emplace(config_.capture_rate_ratio);
    downsampler_.emplace(1.0 / config_.capture_rate_ratio);
  }
}

IqBuffer VirtualRadio::capture(const ResourceGrid& tx_grid) {
  IqBuffer samples;
  capture_into(tx_grid, samples);
  return samples;
}

void VirtualRadio::capture_into(const ResourceGrid& tx_grid, IqBuffer& out) {
  modulator_.modulate_into(tx_grid, out);
  channel_.apply(out);
  if (upsampler_) {
    // Capture at the off-nominal rate, then resample back like the paper's
    // TwinRX path (section 4, footnote 5).
    out = downsampler_->process(upsampler_->process(out));
    // Pad the resampler's group-delay shortfall with trailing zeros so a
    // slot stays a slot.
    out.resize(modulator_.config().samples_per_slot(), cf32{});
  }
  if (config_.enable_agc) {
    agc_.process(out);
  }
}

void IqRecorder::record(const IqBuffer& slot_samples) {
  slots_.push_back(slot_samples);
}

}  // namespace nrs
