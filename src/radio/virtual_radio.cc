#include "radio/virtual_radio.h"

#include <algorithm>
#include <stdexcept>

namespace nrs {

VirtualRadio::VirtualRadio(const VirtualRadioConfig& config)
    : config_(config), modulator_(make_ofdm_config(config.n_prb)),
      channel_([&] {
        ChannelConfig ch = config.channel;
        ch.fft_size = make_ofdm_config(config.n_prb).fft_size;
        return ch;
      }()),
      injector_(config.faults, config.channel.sample_rate,
                config.fault_seed),
      agc_(1.0f, 0.25f) {
  if (auto error = config_.faults.validate()) {
    throw std::invalid_argument("FaultSchedule: " + *error);
  }
  if (config_.capture_rate_ratio != 1.0) {
    upsampler_.emplace(config_.capture_rate_ratio);
    downsampler_.emplace(1.0 / config_.capture_rate_ratio);
  }
}

IqBuffer VirtualRadio::capture(const ResourceGrid& tx_grid) {
  IqBuffer samples;
  capture_into(tx_grid, samples);
  return samples;
}

void VirtualRadio::capture_into(const ResourceGrid& tx_grid, IqBuffer& out) {
  modulator_.modulate_into(tx_grid, out);
  channel_.apply(out);
  // Impairments hit the antenna-side waveform, before the front end's
  // resampling and AGC (which then reacts to them, like real hardware).
  injector_.apply(out);
  if (upsampler_) {
    // Capture at the off-nominal rate, then resample back like the paper's
    // TwinRX path (section 4, footnote 5).
    out = downsampler_->process(upsampler_->process(out));
    // Pad the resampler's group-delay shortfall with trailing zeros so a
    // slot stays a slot.
    out.resize(modulator_.config().samples_per_slot(), cf32{});
  }
  if (config_.enable_agc) {
    agc_.process(out);
  }
}

void IqRecorder::record(const IqBuffer& slot_samples) {
  slots_.push_back(slot_samples);
}

void IqRecorder::append(std::span<const cf32> samples,
                        std::size_t slot_len) {
  if (slot_len == 0) {
    throw std::invalid_argument("IqRecorder::append: slot_len must be > 0");
  }
  std::size_t offset = 0;
  // Complete a buffered partial slot first.
  if (!partial_.empty()) {
    const std::size_t need =
        std::min(samples.size(), slot_len - partial_.size());
    partial_.insert(partial_.end(), samples.begin(),
                    samples.begin() + static_cast<std::ptrdiff_t>(need));
    offset = need;
    if (partial_.size() == slot_len) {
      slots_.push_back(std::move(partial_));
      partial_.clear();
    }
  }
  while (samples.size() - offset >= slot_len) {
    slots_.emplace_back(
        samples.begin() + static_cast<std::ptrdiff_t>(offset),
        samples.begin() + static_cast<std::ptrdiff_t>(offset + slot_len));
    offset += slot_len;
  }
  partial_.insert(partial_.end(),
                  samples.begin() + static_cast<std::ptrdiff_t>(offset),
                  samples.end());
}

std::size_t IqRecorder::finalize() {
  const std::size_t dropped = partial_.size();
  if (dropped > 0) {
    // A partial slot cannot be demodulated; skip it rather than feeding
    // the pipeline a short buffer, and make the loss visible.
    ++truncated_;
    if (m_truncated_ != nullptr) {
      m_truncated_->inc();
    }
    partial_.clear();
  }
  return dropped;
}

void IqRecorder::bind_metrics(MetricsRegistry& registry) {
  m_truncated_ = &registry.counter("radio.replay_truncated");
}

}  // namespace nrs
