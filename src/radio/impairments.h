// Deterministic fault injection for the virtual radio (robustness
// harness).  A FaultSchedule scripts transient impairments against the
// slot clock — deep-fade outages, dropped-sample gaps, IQ glitch bursts,
// timing jumps, CFO steps and slow drift, and mid-run gNB events (cell
// restart with a new PCI, SIB1 change).  The ImpairmentInjector applies
// the IQ-level kinds to captured samples inside VirtualRadio; the
// feeder-level kinds (timing jump, gNB events) are consumed by whoever
// drives the gNB simulator (fleet feeder, tests, benches).
//
// Everything is seeded and replayable: the same schedule + seed produces
// bit-identical corrupted captures, so recovery tests are deterministic.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/types.h"

namespace nrs {

enum class FaultKind : std::uint8_t {
  // IQ-level impairments, applied by the ImpairmentInjector.
  kOutage,      ///< deep fade: SNR collapses by `magnitude` dB
  kSampleGap,   ///< `magnitude` fraction of each slot's samples dropped
  kIqGlitch,    ///< impulsive spikes of amplitude `magnitude`
  kCfoStep,     ///< constant CFO of `magnitude` Hz over the window
  kCfoDrift,    ///< CFO ramping by `magnitude` Hz per slot into the window
  // Feeder-level events, consumed by the gNB driver (see feeder_event_at).
  kTimingJump,   ///< receiver loses `magnitude` slots of stream time
  kCellRestart,  ///< gNB restarts with PCI + `magnitude` (same site)
  kSib1Change,   ///< gNB restarts with the same PCI but a changed SIB1
};

const char* to_string(FaultKind kind);

/// Whether the injector handles this kind on the IQ path (vs the feeder).
[[nodiscard]] bool is_iq_fault(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kOutage;
  std::uint64_t start_slot = 0;
  std::uint64_t duration_slots = 1;
  /// Per-kind meaning, see FaultKind.  Feeder events read it as an
  /// integer (slots to skip / PCI delta); kSib1Change ignores it.
  double magnitude = 0.0;

  [[nodiscard]] std::uint64_t end_slot() const {
    return start_slot + duration_slots;
  }
  [[nodiscard]] bool active_at(std::uint64_t slot) const {
    return slot >= start_slot && slot < end_slot();
  }
};

struct FaultSchedule {
  std::vector<FaultEvent> events;

  /// First violated constraint (zero-length events, NaN/out-of-range
  /// magnitudes, overlapping windows of the same kind) as a descriptive
  /// message, or nullopt when usable.
  [[nodiscard]] std::optional<std::string> validate() const;

  /// Seeded random schedule: `n_events` IQ-level faults (outage, gap,
  /// glitch, CFO step, CFO drift) with non-overlapping windows spread over
  /// [first_slot, horizon_slots).  Deterministic in `seed`.
  static FaultSchedule random(std::uint64_t seed, std::uint64_t first_slot,
                              std::uint64_t horizon_slots,
                              unsigned n_events);

  [[nodiscard]] bool empty() const { return events.empty(); }
  /// The event of `kind` active at `slot`, or nullptr.
  [[nodiscard]] const FaultEvent* find_active(FaultKind kind,
                                              std::uint64_t slot) const;
  [[nodiscard]] bool any_iq_active(std::uint64_t slot) const;
  /// The feeder-level event (timing jump / gNB event) starting exactly at
  /// `slot`, or nullptr.  Point events: duration is ignored.
  [[nodiscard]] const FaultEvent* feeder_event_at(std::uint64_t slot) const;
};

/// Applies the IQ-level faults of a schedule to captured slots, in place
/// and allocation-free.  Stateful: CFO phase accumulates across the slots
/// of a window, and the injector keeps its own slot clock (one apply()
/// call == one slot).
class ImpairmentInjector {
 public:
  ImpairmentInjector() = default;
  ImpairmentInjector(FaultSchedule schedule, double sample_rate,
                     std::uint64_t seed = 1);

  /// Mirror fault activity into radio.* metrics: radio.fault_slots
  /// (slots with any IQ fault active) and radio.fault_active (gauge).
  void bind_metrics(MetricsRegistry& registry);

  /// Corrupt one captured slot according to the schedule, then advance
  /// the slot clock.  No-fault slots are untouched (and draw no RNG).
  void apply(IqBuffer& samples);

  [[nodiscard]] std::uint64_t current_slot() const { return slot_; }
  [[nodiscard]] const FaultSchedule& schedule() const { return schedule_; }
  [[nodiscard]] bool any_active() const {
    return schedule_.any_iq_active(slot_);
  }

 private:
  void apply_outage(const FaultEvent& ev, IqBuffer& samples);
  void apply_sample_gap(const FaultEvent& ev, IqBuffer& samples);
  void apply_glitch(const FaultEvent& ev, IqBuffer& samples);
  void apply_cfo(double cfo_hz, IqBuffer& samples);

  FaultSchedule schedule_;
  double sample_rate_ = 30.72e6;
  Rng rng_{1};
  double cfo_phase_ = 0.0;
  std::uint64_t slot_ = 0;
  Counter* m_fault_slots_ = nullptr;
  Gauge* m_fault_active_ = nullptr;
};

}  // namespace nrs
