// The virtual radio: replaces the paper's USRP front end.  It takes the
// gNB's transmitted slot grid, OFDM-modulates it to time-domain IQ,
// applies the sniffer's wireless channel (the gNB->sniffer link — distinct
// from every UE's own link), and optionally resamples and AGCs the result,
// reproducing the "USRP -> Resample and AGC -> NR-Scope" front of Fig. 4.
// IQ capture/replay supports offline processing like a real SDR recording.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/metrics.h"
#include "phy/agc.h"
#include "phy/channel.h"
#include "phy/ofdm.h"
#include "phy/resampler.h"
#include "phy/resource_grid.h"
#include "radio/impairments.h"

namespace nrs {

struct VirtualRadioConfig {
  unsigned n_prb = 51;
  ChannelConfig channel;        ///< gNB -> sniffer link
  bool enable_agc = true;
  /// When != 1.0, samples are produced at ratio * nominal rate and the
  /// radio resamples back — exercising the TwinRX-style resampling path.
  double capture_rate_ratio = 1.0;
  /// Scripted transient impairments (outages, gaps, glitches, CFO) applied
  /// to every capture after the channel.  Empty = transparent.
  FaultSchedule faults;
  std::uint64_t fault_seed = 1;
};

class VirtualRadio {
 public:
  explicit VirtualRadio(const VirtualRadioConfig& config);

  /// One slot: grid -> IQ -> channel -> (resample) -> (AGC).
  IqBuffer capture(const ResourceGrid& tx_grid);

  /// Same, writing into a caller-owned buffer (resized to one slot).  The
  /// nominal-rate path reuses `out`'s capacity and allocates nothing in
  /// steady state; the off-nominal resampling path still allocates inside
  /// the resamplers.  Feeders pair this with
  /// NrScopePipeline::acquire_samples() for the zero-allocation hot path.
  void capture_into(const ResourceGrid& tx_grid, IqBuffer& out);

  /// Current sniffer-side channel (for SNR sweeps in the coverage bench).
  [[nodiscard]] ChannelModel& channel() { return channel_; }
  /// The fault injector (transparent when the schedule is empty).
  [[nodiscard]] ImpairmentInjector& injector() { return injector_; }
  [[nodiscard]] const OfdmConfig& ofdm_config() const {
    return modulator_.config();
  }

 private:
  VirtualRadioConfig config_;
  OfdmModulator modulator_;
  ChannelModel channel_;
  ImpairmentInjector injector_;
  std::optional<Resampler> upsampler_;    ///< to the capture rate
  std::optional<Resampler> downsampler_;  ///< back to the nominal rate
  Agc agc_;
};

/// Simple IQ recorder: keeps captured slots for replay (the "file
/// system" sink of Fig. 4 on the raw-sample side).  Besides exact
/// slot-sized record() calls it accepts a raw sample stream via append(),
/// cutting complete slots out of it — an interrupted capture then leaves a
/// truncated tail which finalize() skips and counts instead of replaying
/// a partial (undecodable) slot.
class IqRecorder {
 public:
  void record(const IqBuffer& slot_samples);
  /// Append raw stream samples; every complete `slot_len`-sample slot is
  /// cut into the replay list, the remainder is buffered for the next
  /// append.  `slot_len` must stay constant across a recording.
  void append(std::span<const cf32> samples, std::size_t slot_len);
  /// End of capture: drop (and count) a buffered partial slot.  Returns
  /// the number of samples discarded.
  std::size_t finalize();
  /// Mirror truncation into `radio.replay_truncated` of `registry`.
  void bind_metrics(MetricsRegistry& registry);

  [[nodiscard]] std::size_t n_slots() const { return slots_.size(); }
  [[nodiscard]] const IqBuffer& slot(std::size_t index) const {
    return slots_.at(index);
  }
  /// Partial final slots dropped by finalize() so far.
  [[nodiscard]] std::uint64_t truncated_slots() const { return truncated_; }
  [[nodiscard]] std::size_t pending_samples() const {
    return partial_.size();
  }

 private:
  std::vector<IqBuffer> slots_;
  IqBuffer partial_;  ///< tail of append() not yet a whole slot
  std::uint64_t truncated_ = 0;
  Counter* m_truncated_ = nullptr;
};

}  // namespace nrs
