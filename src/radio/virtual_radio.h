// The virtual radio: replaces the paper's USRP front end.  It takes the
// gNB's transmitted slot grid, OFDM-modulates it to time-domain IQ,
// applies the sniffer's wireless channel (the gNB->sniffer link — distinct
// from every UE's own link), and optionally resamples and AGCs the result,
// reproducing the "USRP -> Resample and AGC -> NR-Scope" front of Fig. 4.
// IQ capture/replay supports offline processing like a real SDR recording.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "phy/agc.h"
#include "phy/channel.h"
#include "phy/ofdm.h"
#include "phy/resampler.h"
#include "phy/resource_grid.h"

namespace nrs {

struct VirtualRadioConfig {
  unsigned n_prb = 51;
  ChannelConfig channel;        ///< gNB -> sniffer link
  bool enable_agc = true;
  /// When != 1.0, samples are produced at ratio * nominal rate and the
  /// radio resamples back — exercising the TwinRX-style resampling path.
  double capture_rate_ratio = 1.0;
};

class VirtualRadio {
 public:
  explicit VirtualRadio(const VirtualRadioConfig& config);

  /// One slot: grid -> IQ -> channel -> (resample) -> (AGC).
  IqBuffer capture(const ResourceGrid& tx_grid);

  /// Same, writing into a caller-owned buffer (resized to one slot).  The
  /// nominal-rate path reuses `out`'s capacity and allocates nothing in
  /// steady state; the off-nominal resampling path still allocates inside
  /// the resamplers.  Feeders pair this with
  /// NrScopePipeline::acquire_samples() for the zero-allocation hot path.
  void capture_into(const ResourceGrid& tx_grid, IqBuffer& out);

  /// Current sniffer-side channel (for SNR sweeps in the coverage bench).
  [[nodiscard]] ChannelModel& channel() { return channel_; }
  [[nodiscard]] const OfdmConfig& ofdm_config() const {
    return modulator_.config();
  }

 private:
  VirtualRadioConfig config_;
  OfdmModulator modulator_;
  ChannelModel channel_;
  std::optional<Resampler> upsampler_;    ///< to the capture rate
  std::optional<Resampler> downsampler_;  ///< back to the nominal rate
  Agc agc_;
};

/// Simple IQ recorder: keeps captured slots for replay (the "file
/// system" sink of Fig. 4 on the raw-sample side).
class IqRecorder {
 public:
  void record(const IqBuffer& slot_samples);
  [[nodiscard]] std::size_t n_slots() const { return slots_.size(); }
  [[nodiscard]] const IqBuffer& slot(std::size_t index) const {
    return slots_.at(index);
  }

 private:
  std::vector<IqBuffer> slots_;
};

}  // namespace nrs
